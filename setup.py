"""Setup shim for environments whose pip cannot perform PEP 660 editable installs.

The project metadata lives in pyproject.toml; this file only enables the
legacy ``pip install -e . --no-use-pep517`` path on machines without the
``wheel`` package (such as offline evaluation containers).
"""

from setuptools import setup

setup()
