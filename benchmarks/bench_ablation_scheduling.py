"""Ablation — double buffering and memory coalescing (the paper's scheduling options).

The paper's mapping engine uses "double buffering and memory coalesce
technique at each level of the memory hierarchy as scheduling options".  This
ablation disables them one at a time on the CIM-based TPU and measures the
impact on the Fig. 6 decode layer, which is the most memory-sensitive workload.
"""

from __future__ import annotations

import pytest

from _harness import emit_report, percent

from repro.core.designs import cim_tpu_default
from repro.core.simulator import InferenceSimulator, LLMInferenceSettings
from repro.mapping.schedule import ScheduleOptions
from repro.workloads.llm import GPT3_30B

VARIANTS = {
    "full scheduling": ScheduleOptions(double_buffering=True, memory_coalescing=True),
    "no double buffering": ScheduleOptions(double_buffering=False, memory_coalescing=True),
    "no coalescing": ScheduleOptions(double_buffering=True, memory_coalescing=False),
    "neither": ScheduleOptions(double_buffering=False, memory_coalescing=False),
}


@pytest.fixture(scope="module")
def settings():
    return LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                decode_kv_samples=2)


def run_variant(schedule: ScheduleOptions, settings: LLMInferenceSettings):
    config = cim_tpu_default().with_updates(schedule=schedule)
    simulator = InferenceSimulator(config)
    return simulator.simulate_llm_decode_layer(GPT3_30B, settings)


def test_ablation_scheduling_options(benchmark, settings):
    """Time one variant and emit the scheduling ablation table."""
    results = {label: run_variant(schedule, settings) for label, schedule in VARIANTS.items()}
    benchmark(run_variant, VARIANTS["full scheduling"], settings)

    reference = results["full scheduling"].total_seconds
    rows = []
    for label, result in results.items():
        rows.append([label, f"{result.total_seconds * 1e3:.3f} ms",
                     percent((result.total_seconds / reference - 1.0) * 100.0)])
    emit_report("ablation_scheduling",
                ["scheduling", "decode layer latency", "vs full scheduling"],
                rows,
                title="Ablation - double buffering and memory coalescing (CIM TPU, LLM decode)")

    assert results["no double buffering"].total_seconds > reference
    assert results["no coalescing"].total_seconds >= reference
    assert results["neither"].total_seconds >= results["no double buffering"].total_seconds
