"""Gateway service throughput: the perf record of simulation-as-a-service.

Runs a real :class:`~repro.gateway.GatewayServer` (ephemeral port, real
``urllib`` HTTP round-trips) over one persistent result store and pushes
a batch of distinct serving runs through it twice: the cold pass (every
job simulates) and the warm pass (every job is a store lookup).  The
measured walls therefore price the whole service path — JSON decode,
validation, queueing, worker dispatch, engine run or store hit, JSON
encode — not just the engine.

The run writes ``BENCH_gateway.json`` at the repository root, compared
against the committed baseline by ``scripts/check_bench_regression.py``.
Pinned invariants: the warm pass performs **zero** new simulations
(count metric, like the cached re-sweep), its store hit rate is 1.0, and
every warm result envelope is byte-identical to its cold counterpart
outside the accounting header.
"""

from __future__ import annotations

import json
import time
import urllib.request

from _harness import REPORTS_DIR, emit_report

from repro.api import SimulateRequest
from repro.gateway import GatewayServer
from repro.sweep.store import ResultStore

BENCH_PATH = REPORTS_DIR.parent / "BENCH_gateway.json"

#: Distinct serving runs per pass (seeds 0..N-1 over one fast scenario).
NUM_JOBS = 6
NUM_REQUESTS = 120
ARRIVAL_RATE = 16.0
WORKERS = 4
WALL_BUDGET_SECONDS = 30.0

ACCOUNTING = ("served_from_store", "new_simulations",
              "store_hits", "store_misses")


def _payloads():
    return [SimulateRequest(llm="llama2-7b", input_tokens=64,
                            output_tokens=16, rate=ARRIVAL_RATE,
                            requests=NUM_REQUESTS, seed=seed).to_dict()
            for seed in range(NUM_JOBS)]


def _call(url, method="GET", payload=None):
    body = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _run_pass(server, payloads):
    """Submit every payload, wait for all jobs, fetch all results."""
    start = time.perf_counter()
    accepted = [_call(f"{server.url}/v1/simulate", "POST", payload)
                for payload in payloads]
    for entry in accepted:
        server.manager.wait(entry["job_id"], timeout=120)
    results = [_call(f"{server.url}{entry['result_url']}")
               for entry in accepted]
    return results, time.perf_counter() - start


def test_gateway_store_roundtrip(benchmark, tmp_path):
    """Cold vs. warm service passes against one shared persistent store."""
    store = ResultStore(tmp_path / "gateway_store.jsonl")
    payloads = _payloads()
    with GatewayServer(store, port=0, workers=WORKERS) as server:
        cold, cold_wall = _run_pass(server, payloads)
        warm, warm_wall = _run_pass(server, payloads)

        cold_simulations = sum(r["new_simulations"] for r in cold)
        warm_simulations = sum(r["new_simulations"] for r in warm)
        warm_hits = sum(r["store_hits"] for r in warm)
        warm_misses = sum(r["store_misses"] for r in warm)
        warm_hit_rate = warm_hits / max(warm_hits + warm_misses, 1)

        emit_report(
            "gateway_store_roundtrip",
            ["quantity", "cold pass", "warm pass"],
            [["wall-clock", f"{cold_wall:.2f} s", f"{warm_wall:.2f} s"],
             ["jobs", len(cold), len(warm)],
             ["new simulations", cold_simulations, warm_simulations],
             ["store hits", sum(r["store_hits"] for r in cold), warm_hits],
             ["store hit rate", "-", f"{warm_hit_rate:.2f}"]],
            title=f"Gateway service: {NUM_JOBS} jobs x {NUM_REQUESTS} "
                  f"requests over HTTP ({WORKERS} workers)")

        BENCH_PATH.write_text(json.dumps({
            "benchmark": "gateway_store_roundtrip",
            "jobs": NUM_JOBS,
            "requests_per_job": NUM_REQUESTS,
            "arrival_rate": ARRIVAL_RATE,
            "workers": WORKERS,
            "cold_wall_seconds": cold_wall,
            "warm_wall_seconds": warm_wall,
            "cold_simulations": cold_simulations,
            "warm_simulations": warm_simulations,
            "warm_hit_rate": warm_hit_rate,
            "store_entries": len(store),
        }, indent=2) + "\n", encoding="utf-8")
        print(f"wrote gateway benchmark record to {BENCH_PATH}")

        assert cold_wall < WALL_BUDGET_SECONDS
        assert warm_wall < WALL_BUDGET_SECONDS
        # Cold pass simulates every job exactly once; warm is pure lookup.
        assert cold_simulations == NUM_JOBS
        assert warm_simulations == 0
        assert warm_hit_rate == 1.0
        # Warm envelopes match cold ones outside the accounting header.
        for cold_result, warm_result in zip(cold, warm):
            assert {k: v for k, v in warm_result.items()
                    if k not in ACCOUNTING} == \
                   {k: v for k, v in cold_result.items()
                    if k not in ACCOUNTING}

        # Steady-state figure of merit: one fully warm service pass.
        benchmark(lambda: _run_pass(server, payloads)[1])
