"""Fig. 6 — Baseline vs. CIM-based TPU on single-layer generative-model inference.

Regenerates the three panels of Fig. 6: a GPT-3-30B Transformer layer in the
prefill stage (batch 8, 1024 prompt tokens), the same layer in the decode
stage (processing the 256th output token) and one DiT-XL/2 block at 512×512 —
each reported as per-category latency plus total MXU energy, for the TPUv4i
baseline and the default CIM-based TPU.

Paper headline numbers: prefill +2.43 % latency / 9.21× less MXU energy,
decode −29.9 % / 13.4×, DiT block −6.67 % / 10.4×.
"""

from __future__ import annotations

from _harness import emit_report, factor, percent

from repro.analysis.breakdown import compare_graph_results, overall_comparison
from repro.core.results import GraphResult
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import GPT3_30B

PAPER_HEADLINES = {
    "llm_prefill": ("+2.43%", "9.21x"),
    "llm_decode": ("-29.9%", "13.4x"),
    "dit_block": ("-6.67%", "10.4x"),
}


def _emit_panel(name: str, baseline: GraphResult, candidate: GraphResult) -> dict[str, float]:
    headline = overall_comparison(baseline, candidate)
    per_category = compare_graph_results(baseline, candidate)

    rows = []
    for row in per_category:
        rows.append([
            row.category.value,
            f"{row.baseline_seconds * 1e3:.3f} ms",
            f"{row.candidate_seconds * 1e3:.3f} ms",
            percent(row.latency_change_percent),
            factor(row.energy_reduction_factor) if row.baseline_mxu_energy > 0 else "-",
        ])
    paper_latency, paper_energy = PAPER_HEADLINES[name]
    rows.append(["TOTAL",
                 f"{headline['baseline_latency_s'] * 1e3:.3f} ms",
                 f"{headline['candidate_latency_s'] * 1e3:.3f} ms",
                 f"{percent(headline['latency_change_percent'])} (paper {paper_latency})",
                 f"{factor(headline['mxu_energy_reduction_factor'])} (paper {paper_energy})"])
    emit_report(f"fig6_{name}",
                ["layer", "baseline latency", "CIM latency", "latency change", "MXU energy gain"],
                rows,
                title=f"Fig. 6 - {name.replace('_', ' ')} (baseline TPUv4i vs. CIM-based TPU)")
    return headline


def test_fig6_llm_prefill(benchmark, baseline_sim, cim_sim, paper_llm_settings):
    """LLM prefill panel of Fig. 6."""
    baseline = baseline_sim.simulate_llm_prefill_layer(GPT3_30B, paper_llm_settings)
    candidate = benchmark(cim_sim.simulate_llm_prefill_layer, GPT3_30B, paper_llm_settings)
    headline = _emit_panel("llm_prefill", baseline, candidate)
    assert abs(headline["latency_change_percent"]) < 10.0
    assert headline["mxu_energy_reduction_factor"] > 7.0


def test_fig6_llm_decode(benchmark, baseline_sim, cim_sim, paper_llm_settings):
    """LLM decode panel of Fig. 6 (256th output token)."""
    baseline = baseline_sim.simulate_llm_decode_layer(GPT3_30B, paper_llm_settings)
    candidate = benchmark(cim_sim.simulate_llm_decode_layer, GPT3_30B, paper_llm_settings)
    headline = _emit_panel("llm_decode", baseline, candidate)
    assert headline["latency_change_percent"] < -20.0
    assert headline["mxu_energy_reduction_factor"] > 10.0


def test_fig6_dit_block(benchmark, baseline_sim, cim_sim, paper_dit_settings):
    """DiT block panel of Fig. 6."""
    baseline = baseline_sim.simulate_dit_block(DIT_XL_2, paper_dit_settings)
    candidate = benchmark(cim_sim.simulate_dit_block, DIT_XL_2, paper_dit_settings)
    headline = _emit_panel("dit_block", baseline, candidate)
    assert -20.0 < headline["latency_change_percent"] < 5.0
    assert headline["mxu_energy_reduction_factor"] > 7.0
