"""Table IV / Fig. 7 — Architecture exploration of CIM-MXU design choices.

Sweeps the nine Table IV design points (2/4/8 CIM-MXUs × 8×8 / 16×8 / 16×16
CIM-core grids) over end-to-end GPT-3-30B inference (1024 input / 512 output
tokens) and DiT-XL/2 sampling, and reports latency and MXU energy relative to
the TPUv4i baseline — the two panels of Fig. 7.

Paper reference points: for LLM inference, 2×(8×8) costs +38 % latency but
saves 27.3× MXU energy, while 8×(16×16) only improves latency by 2.5 % over
8×(16×8) at ~2× the energy; Design A is 4×(8×8).  For DiT inference, 8×(16×16)
is −33.8 % latency at 3.56× lower MXU power and 2×(8×8) is +100 % latency at
20× lower power; Design B is 8×(16×8).
"""

from __future__ import annotations

import pytest

from _harness import emit_report, factor, percent

from repro.core.explorer import ArchitectureExplorer
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.sweep.engine import SweepEngine


@pytest.fixture(scope="module")
def sweep_engine():
    """One engine for the whole module, so repeated points never re-simulate."""
    return SweepEngine()


@pytest.fixture(scope="module")
def exploration_rows(sweep_engine):
    explorer = ArchitectureExplorer(
        llm_settings=LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                          decode_kv_samples=4),
        dit_settings=DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50),
        engine=sweep_engine)
    return explorer.explore()


def _emit_workload_panel(rows, workload: str) -> None:
    table_rows = []
    for row in rows:
        if row.workload != workload:
            continue
        table_rows.append([
            row.design,
            f"{row.peak_tops:.0f}",
            f"{row.latency_seconds * 1e3:.1f} ms",
            percent(row.latency_change_percent),
            f"{row.mxu_energy_joules:.2f} J",
            factor(row.energy_saving_vs_baseline),
        ])
    emit_report(f"fig7_{workload}_exploration",
                ["design", "peak TOPS", "latency", "vs baseline", "MXU energy", "energy saving"],
                table_rows,
                title=f"Fig. 7 - CIM-MXU design-space exploration ({workload.upper()})")


def test_fig7_exploration(benchmark, exploration_rows):
    """Time one uncached exploration point and emit both Fig. 7 panels."""
    explorer = ArchitectureExplorer(
        llm_settings=LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                          decode_kv_samples=2),
        dit_settings=DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=10))
    first_design_points = explorer.sweep_points()[2:4]  # first non-baseline design
    benchmark(lambda: SweepEngine().sweep(first_design_points))

    _emit_workload_panel(exploration_rows, "llm")
    _emit_workload_panel(exploration_rows, "dit")

    by_key = {(r.design, r.workload): r for r in exploration_rows}

    # Memory-bound LLM: quadrupling peak compute from 8x16x8 to 8x16x16 barely
    # helps latency but costs energy (paper: 2.5 % for +95 % energy).
    llm_mid = by_key[("8 x 16x8", "llm")]
    llm_big = by_key[("8 x 16x16", "llm")]
    assert (llm_mid.latency_seconds - llm_big.latency_seconds) / llm_mid.latency_seconds < 0.10
    assert llm_big.mxu_energy_joules > llm_mid.mxu_energy_joules

    # Small designs maximise LLM energy savings (paper: 27.3× for 2x8x8).
    assert by_key[("2 x 8x8", "llm")].energy_saving_vs_baseline == max(
        r.energy_saving_vs_baseline for r in exploration_rows
        if r.workload == "llm" and r.design != "baseline")

    # Compute-bound DiT: the largest configuration is the fastest, the
    # smallest is slower than the baseline (paper: −33.8 % and +100 %).
    dit_rows = [r for r in exploration_rows if r.workload == "dit" and r.design != "baseline"]
    fastest = min(dit_rows, key=lambda r: r.latency_seconds)
    assert fastest.design in ("8 x 16x16", "8 x 16x8")
    assert by_key[("2 x 8x8", "dit")].latency_vs_baseline > 1.2


def test_fig7_design_a_and_b_selection(benchmark, exploration_rows):
    """The explorer's trade-off rule lands on small grids for LLM and large for DiT."""
    explorer = ArchitectureExplorer()
    best_llm = benchmark(explorer.best_design, exploration_rows, "llm", 0.25)
    best_dit = explorer.best_design(exploration_rows, "dit", max_latency_increase=0.25)

    emit_report("fig7_selected_designs",
                ["workload", "selected design", "latency vs baseline", "MXU energy saving",
                 "paper choice"],
                [["llm", best_llm.design, percent(best_llm.latency_change_percent),
                  factor(best_llm.energy_saving_vs_baseline), "Design A: 4 x 8x8"],
                 ["dit", best_dit.design, percent(best_dit.latency_change_percent),
                  factor(best_dit.energy_saving_vs_baseline), "Design B: 8 x 16x8"]],
                title="Fig. 7 - selected designs (trade-off rule)")

    # LLM (memory-bound): a low-peak-throughput design wins and maximises the
    # energy saving; DiT (compute-bound): a higher-peak design wins.  The
    # specific grid picked can differ from the paper's Design A/B by one
    # neighbouring point because the trade-off window is a modelling choice.
    assert best_llm.peak_tops <= best_dit.peak_tops
    assert best_llm.energy_saving_vs_baseline >= best_dit.energy_saving_vs_baseline
