"""Co-design optimizer throughput: the perf record of `repro-sim optimize`.

Runs the successive-halving Pareto search over a 24-candidate hardware ×
deployment space (3 designs × 2 routers × 4 replica counts) twice against
one persistent result store and measures both sides of the store contract:
the cold search (everything simulated) and the warm search (pure lookup).

Beyond the human-readable table under ``reports/``, the run writes
``BENCH_optimize.json`` at the repository root: the machine-readable record
CI uploads next to the other three and the benchmark-regression gate
(``scripts/check_bench_regression.py``) compares against the committed
baseline.  Pinned invariants: the warm search must perform **zero** new
simulations (gated as a count metric, like the cached re-sweep), the warm
frontier must equal the cold frontier bit for bit, and successive halving
must run strictly fewer full-trace simulations than the candidate count.
"""

from __future__ import annotations

import json
import time

from _harness import REPORTS_DIR, emit_report

from repro.optimize import CodesignOptimizer, DesignSpace, parse_constraint
from repro.serving.metrics import SLO
from repro.sweep.store import ResultStore
from repro.workloads.llm import LLAMA2_7B

BENCH_PATH = REPORTS_DIR.parent / "BENCH_optimize.json"

ARRIVAL_RATE = 48.0
NUM_REQUESTS = 400
SEED = 7
WALL_BUDGET_SECONDS = 30.0

SPACE = DesignSpace(
    designs=("baseline", "design-a", "design-b"),
    routers=("round-robin", "least-outstanding-requests"),
    replica_counts=(2, 3, 4, 6))


def _search(store: ResultStore):
    optimizer = CodesignOptimizer(
        LLAMA2_7B, SPACE,
        objectives=("cost-per-million-tokens", "p99-ttft"),
        constraints=(parse_constraint("slo>=0.9"),),
        strategy="successive-halving",
        arrival_rate=ARRIVAL_RATE, num_requests=NUM_REQUESTS,
        input_tokens=64, output_tokens=32,
        slo=SLO(ttft_s=1.0, tpot_s=0.35), seed=SEED, store=store)
    start = time.perf_counter()
    frontier = optimizer.run()
    return frontier, time.perf_counter() - start


def test_optimizer_store_roundtrip(benchmark, tmp_path):
    """Cold vs. warm co-design search against one persistent store."""
    store_path = tmp_path / "codesign_store.jsonl"
    cold, cold_wall = _search(ResultStore(store_path))
    warm, warm_wall = _search(ResultStore(store_path))
    candidates = len(SPACE)

    emit_report(
        "optimize_store_roundtrip",
        ["quantity", "cold search", "warm search"],
        [["wall-clock", f"{cold_wall:.2f} s", f"{warm_wall:.2f} s"],
         ["short-trace simulations", cold.short_runs, warm.short_runs],
         ["full-trace simulations", cold.full_runs, warm.full_runs],
         ["served from store", cold.store_served, warm.store_served],
         ["capacity-pruned", cold.capacity_pruned, warm.capacity_pruned],
         ["frontier points", len(cold), len(warm)]],
        title=f"Co-design search over {candidates} candidates "
              f"({LLAMA2_7B.name} at {ARRIVAL_RATE:g} req/s, seed {SEED})")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "optimize_store_roundtrip",
        "model": LLAMA2_7B.name,
        "space": {"designs": list(SPACE.designs), "routers": list(SPACE.routers),
                  "replica_counts": list(SPACE.replica_counts),
                  "candidates": candidates},
        "strategy": "successive-halving",
        "arrival_rate": ARRIVAL_RATE,
        "num_requests": NUM_REQUESTS,
        "seed": SEED,
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "cold_simulations": cold.short_runs + cold.full_runs,
        "cold_full_simulations": cold.full_runs,
        "warm_simulations": warm.short_runs + warm.full_runs,
        "warm_store_served": warm.store_served,
        "frontier_points": len(cold),
        "frontier_equal": warm.signature() == cold.signature(),
    }, indent=2) + "\n", encoding="utf-8")
    print(f"wrote optimizer benchmark record to {BENCH_PATH}")

    assert cold_wall < WALL_BUDGET_SECONDS
    assert warm_wall < WALL_BUDGET_SECONDS
    # The warm search is pure lookup: zero new simulations, identical frontier.
    assert warm.short_runs + warm.full_runs == 0
    assert warm.store_served > 0
    assert warm.signature() == cold.signature()
    assert warm.points == cold.points
    # Successive halving must beat exhaustive full-fidelity pricing.
    assert cold.full_runs < candidates

    # Steady-state figure of merit: one fully warm search.
    benchmark(lambda: _search(ResultStore(store_path))[0])
