"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it computes the
rows/series with the simulator, renders them as a plain-text table, prints the
table and also writes it under ``reports/`` so the regenerated artefacts are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run (whose stdout
capture would otherwise hide them).
"""

from __future__ import annotations

import pathlib

from repro.analysis.report import format_table

#: Directory (relative to the repository root) where regenerated tables land.
REPORTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "reports"


def emit_report(name: str, headers: list[str], rows: list[list[object]], title: str) -> str:
    """Render a table, print it and persist it under ``reports/<name>.txt``."""
    table = format_table(headers, rows, title=title)
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
    print("\n" + table)
    return table


def percent(value: float) -> str:
    """Format a latency change as a signed percentage."""
    return f"{value:+.1f}%"


def factor(value: float) -> str:
    """Format an energy/power ratio as a factor."""
    return f"{value:.2f}x"
