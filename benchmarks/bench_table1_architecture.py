"""Table I — Architecture parameters for the baseline TPUv4i and the CIM-based TPU."""

from __future__ import annotations

from _harness import emit_report

from repro.core.designs import cim_tpu_default, tpuv4i_baseline
from repro.core.tpu import TPUModel


def build_table1() -> list[list[object]]:
    """Side-by-side Table I rows for the two chip configurations."""
    baseline = dict(tpuv4i_baseline().table_rows())
    cim = dict(cim_tpu_default().table_rows())
    rows = []
    for key in baseline:
        rows.append([key, baseline[key], cim[key]])
    return rows


def test_table1_architecture_parameters(benchmark):
    """Time chip-model construction and emit the Table I comparison."""
    models = benchmark(lambda: (TPUModel(tpuv4i_baseline()), TPUModel(cim_tpu_default())))
    baseline_model, cim_model = models

    rows = build_table1()
    rows.append(["Total MXU area",
                 f"{baseline_model.mxu_area_mm2:.1f} mm2 (22 nm)",
                 f"{cim_model.mxu_area_mm2:.1f} mm2 (22 nm)"])
    emit_report("table1_architecture",
                ["parameter", "TPUv4i baseline", "CIM-based TPU"],
                rows,
                title="Table I - architecture parameters")

    # Both chips expose the same peak MACs/cycle and the same memory system.
    assert baseline_model.config.peak_macs_per_cycle == cim_model.config.peak_macs_per_cycle
    assert cim_model.mxu_area_mm2 < baseline_model.mxu_area_mm2
