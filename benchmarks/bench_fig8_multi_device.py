"""Fig. 8 — Multi-TPU inference throughput (1, 2 and 4 devices in a ring).

Regenerates the Fig. 8 bars: GPT-3-30B and DiT-XL/2 inference throughput for
the baseline TPUv4i, Design A and Design B with pipeline parallelism over the
ICI ring, plus the MXU energy reduction of the optimised designs.

Paper reference: Design A averages ~+28 % LLM throughput at 24.2× lower MXU
energy; Design B reaches ~+33 % DiT throughput at 6.34× lower MXU energy.
"""

from __future__ import annotations

import pytest

from _harness import emit_report, factor

from repro.core.designs import design_a, design_b, tpuv4i_baseline
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.parallel.multi_device import MultiTPUSystem
from repro.sweep.engine import SweepEngine
from repro.sweep.grid import SweepPoint
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import GPT3_30B

DEVICE_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def sweep_engine():
    """One engine for both panels: per-layer graphs are shared across device
    counts and workload panels through its content-addressed cache."""
    return SweepEngine()


@pytest.fixture(scope="module")
def llm_settings():
    return LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                decode_kv_samples=2)


@pytest.fixture(scope="module")
def dit_settings():
    return DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50)


def _sweep(engine, configs, model, settings):
    results = {}
    for label, config in configs.items():
        points = [SweepPoint(design=label, config=config, model=model,
                             settings=settings, devices=n) for n in DEVICE_COUNTS]
        results[label] = engine.sweep(points)
    return results


def test_fig8_llm_throughput(benchmark, sweep_engine, llm_settings):
    """LLM panel of Fig. 8: tokens/s for baseline, Design A and Design B."""
    configs = {"baseline": tpuv4i_baseline(), "design-a": design_a(), "design-b": design_b()}
    results = _sweep(sweep_engine, configs, GPT3_30B, llm_settings)
    benchmark(lambda: MultiTPUSystem(design_a(), 4).simulate_llm(GPT3_30B, llm_settings))

    rows = []
    for label, series in results.items():
        for n, result in zip(DEVICE_COUNTS, series):
            rows.append([label, n, f"{result.throughput:.1f} tokens/s",
                         f"{results['baseline'][DEVICE_COUNTS.index(n)].throughput:.1f}",
                         factor(result.throughput
                                / results["baseline"][DEVICE_COUNTS.index(n)].throughput),
                         factor(results["baseline"][DEVICE_COUNTS.index(n)].mxu_energy_joules
                                / result.mxu_energy_joules)])
    emit_report("fig8_llm_throughput",
                ["design", "TPUs", "throughput", "baseline tokens/s", "speedup", "MXU energy saving"],
                rows,
                title="Fig. 8 - GPT-3-30B multi-TPU inference throughput")

    for index in range(len(DEVICE_COUNTS)):
        assert results["design-a"][index].throughput > results["baseline"][index].throughput
        assert results["baseline"][index].mxu_energy_joules \
            > 10 * results["design-a"][index].mxu_energy_joules
    # Throughput scales with the device count for every design.
    for series in results.values():
        assert series[2].throughput > series[1].throughput > series[0].throughput


def test_fig8_dit_throughput(benchmark, sweep_engine, dit_settings):
    """DiT panel of Fig. 8: images/s for baseline, Design A and Design B."""
    configs = {"baseline": tpuv4i_baseline(), "design-a": design_a(), "design-b": design_b()}
    results = _sweep(sweep_engine, configs, DIT_XL_2, dit_settings)
    benchmark(lambda: MultiTPUSystem(design_b(), 4).simulate_dit(DIT_XL_2, dit_settings))

    rows = []
    for label, series in results.items():
        for n, result in zip(DEVICE_COUNTS, series):
            baseline_result = results["baseline"][DEVICE_COUNTS.index(n)]
            rows.append([label, n, f"{result.throughput:.3f} images/s",
                         factor(result.throughput / baseline_result.throughput),
                         factor(baseline_result.mxu_energy_joules / result.mxu_energy_joules)])
    emit_report("fig8_dit_throughput",
                ["design", "TPUs", "throughput", "speedup vs baseline", "MXU energy saving"],
                rows,
                title="Fig. 8 - DiT-XL/2 multi-TPU inference throughput")

    for index in range(len(DEVICE_COUNTS)):
        assert results["design-b"][index].throughput > results["baseline"][index].throughput
        assert results["baseline"][index].mxu_energy_joules \
            > 3 * results["design-b"][index].mxu_energy_joules
