#!/usr/bin/env python
"""Profile the serving event core over a large trace.

The profiling harness behind the heap-core optimisation work: replays a
configurable Poisson trace through :class:`~repro.serving.simulator.
ServingSimulator` under ``cProfile``, prints the top functions by
cumulative and by total (self) time, and dumps the raw ``.pstats``
artifact for interactive digging::

    PYTHONPATH=src python benchmarks/profile_serving.py --requests 100000
    python -m pstats serving_profile.pstats

The trace is generated and the step-cost memo warmed *outside* the
profiled region, so the profile shows the event loop itself — the thing
the day-scale gate in ``bench_serving_scale.py`` times — not trace
construction or first-touch analytical pricing.  ``repro-sim serve
--profile`` wraps the same machinery around a one-off CLI run instead.
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.designs import PREDEFINED_DESIGNS  # noqa: E402
from repro.serving.metrics import SLO  # noqa: E402
from repro.serving.simulator import ServingSimulator  # noqa: E402
from repro.serving.trace import generate_trace  # noqa: E402
from repro.workloads.chat import DEFAULT_REQUEST_MIX  # noqa: E402
from repro.workloads.llm import GPT3_30B  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the serving event core over a Poisson trace")
    parser.add_argument("--design", default="design-a",
                        choices=sorted(PREDEFINED_DESIGNS))
    parser.add_argument("--requests", type=int, default=100_000,
                        help="trace length (default 100000)")
    parser.add_argument("--rate", type=float, default=32.0,
                        help="arrival rate in requests/s (default 32)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--bucket", type=int, default=512,
                        help="step-cost context bucket in tokens (default 512)")
    parser.add_argument("--shards", type=int, default=1,
                        help="profile the sharded path instead (default 1)")
    parser.add_argument("--collect-requests", action="store_true",
                        help="keep per-request metric rows (default: "
                             "aggregate-only, the day-scale configuration)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows per ranking printed (default 25)")
    parser.add_argument("--out", default="serving_profile.pstats",
                        help="where the .pstats artifact lands "
                             "(default serving_profile.pstats)")
    args = parser.parse_args(argv)

    trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, args.rate,
                           args.requests, args.seed)
    simulator = ServingSimulator(GPT3_30B, PREDEFINED_DESIGNS[args.design],
                                 bucket_tokens=args.bucket)
    # Warm the memo and pin the deployment: the profile should be the
    # event loop, not one-time pricing or the deployment-planning scan.
    warm = min(2000, args.requests)
    simulator.run(trace[:warm], collect_requests=False)
    devices = simulator.plan_devices(trace)

    profiler = cProfile.Profile()
    profiler.enable()
    report = simulator.run(trace, slo=SLO(ttft_s=1.0, tpot_s=0.1),
                           devices=devices, shards=args.shards,
                           collect_requests=args.collect_requests)
    profiler.disable()

    print(f"simulated {report.completed} requests "
          f"({report.prefill_steps + report.decode_steps} scheduler steps, "
          f"makespan {report.makespan_s:.0f} s simulated)")
    stats = pstats.Stats(profiler)
    print("\n=== top functions by cumulative time ===")
    stats.sort_stats("cumulative").print_stats(args.top)
    print("\n=== top functions by self time ===")
    stats.sort_stats("tottime").print_stats(args.top)
    stats.dump_stats(args.out)
    print(f"wrote profile data to {args.out} (inspect with `python -m pstats`)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
