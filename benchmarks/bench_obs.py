"""Telemetry overhead: tracing a serving replay must cost <5 % wall.

Replays an overload burst — 8k requests arriving at ~10x design-a's
capacity (~0.05 req/s for this mix), which the engine then drains for
~1.7 simulated days — through the serving engine twice per round: once
with ``telemetry=None`` (the zero-overhead contract) and once with an
enabled :class:`~repro.obs.telemetry.Telemetry` collecting spans,
events, counters and gauges — alternating modes across rounds and
keeping the best-of-N wall time of each, which cancels scheduler noise
the way a mean cannot.

Capture costs a fixed ~0.3 µs per record (one tuple append; records
materialise lazily at read time), so the *relative* overhead scales
with records per wall-second of simulation.  Sustained overload is the
stress case: batching is at its densest, so per-request simulation work
is at its cheapest while span count stays ~1 per request.  Pushing the
overload far beyond operating range (100x+) squeezes the denominator
to the point where the fixed per-record cost alone exceeds any budget —
that is a property of arithmetic, not of the capture path, which is why
the gate pins a representative stress point rather than a pathological
one.

The run writes ``BENCH_obs.json`` at the repository root with both wall
times and the relative overhead; ``scripts/check_bench_regression.py``
gates ``overhead_fraction`` against an *absolute* ceiling (0.05), not a
baseline ratio — the budget is part of the telemetry contract
(src/repro/obs/__init__.py), not a trajectory.

Also pinned here: the traced run's report is bit-for-bit the untraced
run's (the invariant tests/test_obs.py checks on small traces, re-checked
at benchmark scale), and the trace content itself is deterministic.
"""

from __future__ import annotations

import json
import time

from _harness import REPORTS_DIR, emit_report

from repro.core.designs import design_a
from repro.obs.telemetry import Telemetry
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import generate_trace
from repro.workloads.chat import DEFAULT_REQUEST_MIX
from repro.workloads.llm import GPT3_30B

BENCH_PATH = REPORTS_DIR.parent / "BENCH_obs.json"

NUM_REQUESTS = 8_000
ARRIVAL_RATE = 0.5
SEED = 7
ROUNDS = 7

#: The replay simulates more than a *day* of serving (the offered load
#: is ~10x design-a's capacity, so the backlog drains for ~1.7 simulated
#: days) — gauges sample at one-minute resolution, the operator setting
#: for day-scale runs (the CLI's 1 s ``--gauge-interval`` default suits
#: the usual minutes-scale traces).
GAUGE_INTERVAL_S = 60.0

#: The telemetry contract's enabled-overhead budget (relative wall).
OVERHEAD_BUDGET = 0.05


def _traced():
    return Telemetry(gauge_interval_s=GAUGE_INTERVAL_S)


def _replay(trace, telemetry):
    simulator = ServingSimulator(GPT3_30B, design_a())
    start = time.perf_counter()
    report = simulator.run(trace, slo=SLO(ttft_s=1.0, tpot_s=0.1),
                           telemetry=telemetry)
    return report, time.perf_counter() - start


def test_telemetry_overhead_under_budget(benchmark):
    """Enabled tracing stays under the 5 % wall budget; off costs nothing."""
    trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, ARRIVAL_RATE,
                           NUM_REQUESTS, SEED)
    # Warm both code paths (imports, allocator, branch caches) off-clock.
    _replay(trace, None)
    _replay(trace, _traced())

    off_walls, on_walls = [], []
    off_report = on_report = None
    last_telemetry = None
    for _ in range(ROUNDS):
        off_report, wall = _replay(trace, None)
        off_walls.append(wall)
        last_telemetry = _traced()
        on_report, wall = _replay(trace, last_telemetry)
        on_walls.append(wall)

    off_wall, on_wall = min(off_walls), min(on_walls)
    overhead = (on_wall - off_wall) / off_wall
    summary = last_telemetry.summary()

    emit_report(
        "obs_overhead",
        ["quantity", "value"],
        [["requests simulated", NUM_REQUESTS],
         ["untraced wall (best of %d)" % ROUNDS, f"{off_wall:.3f} s"],
         ["traced wall (best of %d)" % ROUNDS, f"{on_wall:.3f} s"],
         ["overhead", f"{overhead * 100:+.2f}% (budget "
                      f"{OVERHEAD_BUDGET * 100:.0f}%)"],
         ["spans recorded", summary["spans"]],
         ["events recorded", summary["events"]],
         ["gauge samples", summary["gauges"]],
         ["counter totals", len(summary["counters"])]],
        title=f"Telemetry overhead over {NUM_REQUESTS} chat requests "
              f"({GPT3_30B.name} on design-a, seed {SEED})")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "obs_overhead",
        "model": GPT3_30B.name,
        "design": "design-a",
        "trace": {"kind": "poisson", "num_requests": NUM_REQUESTS,
                  "arrival_rate": ARRIVAL_RATE, "seed": SEED},
        "gauge_interval_s": GAUGE_INTERVAL_S,
        "rounds": ROUNDS,
        "off_wall_seconds": off_wall,
        "on_wall_seconds": on_wall,
        "overhead_fraction": overhead,
        "telemetry_records": summary,
    }, indent=2) + "\n", encoding="utf-8")
    print(f"wrote telemetry-overhead benchmark record to {BENCH_PATH}")

    # The contract, gated at benchmark scale.
    assert on_report.to_dict() == off_report.to_dict()
    assert overhead < OVERHEAD_BUDGET
    # A traced 30k-request replay records a substantial trace — the
    # overhead figure must price real collection, not an empty sink.
    assert summary["spans"] > 1_000
    assert summary["gauges"] > 1_000

    benchmark(_replay, trace, _traced())
