"""Ablation — systolic dataflow choice for the baseline MXU.

DESIGN.md calls out the modeling choice that layer-weight GEMMs use the
double-buffered weight-stationary dataflow while low-reuse attention operands
use the plain SCALE-Sim weight-stationary model.  This ablation quantifies the
impact of that choice on the GEMM and GEMV shapes of the evaluated workloads.
"""

from __future__ import annotations

from _harness import emit_report

from repro.systolic.dataflows import Dataflow, systolic_gemm_cycles

SHAPES = {
    "prefill GEMM (8192x7168x21504)": (8192, 7168, 21504),
    "decode GEMV (8x7168x21504)": (8, 7168, 21504),
    "decode attention (1x128x1280)": (1, 128, 1280),
    "DiT attention (1024x72x1024)": (1024, 72, 1024),
}


def sweep_dataflows() -> dict[str, dict[str, int]]:
    """Cycle counts of every shape under every dataflow on a 128×128 array."""
    results: dict[str, dict[str, int]] = {}
    for label, (m, k, n) in SHAPES.items():
        results[label] = {
            dataflow.value: systolic_gemm_cycles(m, k, n, 128, 128, dataflow).total_cycles
            for dataflow in Dataflow
        }
    return results


def test_ablation_dataflow(benchmark):
    """Time the sweep and emit the dataflow-choice ablation table."""
    results = benchmark(sweep_dataflows)

    rows = []
    for label, cycles in results.items():
        ws = cycles[Dataflow.WEIGHT_STATIONARY.value]
        ws_db = cycles[Dataflow.WEIGHT_STATIONARY_DB.value]
        os_ = cycles[Dataflow.OUTPUT_STATIONARY.value]
        rows.append([label, ws, ws_db, os_, f"{ws / ws_db:.2f}x"])
    emit_report("ablation_dataflow",
                ["GEMM shape", "WS (SCALE-Sim)", "WS + weight FIFO", "output-stationary",
                 "FIFO benefit"],
                rows,
                title="Ablation - baseline systolic dataflow choice")

    # The weight FIFO matters most for GEMV-shaped work.
    gemv = results["decode GEMV (8x7168x21504)"]
    gemm = results["prefill GEMM (8192x7168x21504)"]
    gemv_gain = gemv[Dataflow.WEIGHT_STATIONARY.value] / gemv[Dataflow.WEIGHT_STATIONARY_DB.value]
    gemm_gain = gemm[Dataflow.WEIGHT_STATIONARY.value] / gemm[Dataflow.WEIGHT_STATIONARY_DB.value]
    assert gemv_gain > gemm_gain
