"""Table II — Comparison between the digital MXU and the CIM-MXU.

Paper reference: both deliver 16384 MACs/cycle; the CIM-MXU reaches
7.26 TOPS/W (9.43× better) and 1.31 TOPS/mm² (2.02× better), and the paper's
text adds that it needs only ~50 % of the digital MXU's area.
"""

from __future__ import annotations

from _harness import emit_report, factor

from repro.cim.energy import compare_mxus
from repro.cim.mxu import CIMMXU
from repro.systolic.systolic_array import DigitalMXU


def test_table2_mxu_comparison(benchmark):
    """Time the MXU comparison and emit the Table II rows."""
    comparison = benchmark(compare_mxus, DigitalMXU(), CIMMXU())

    rows = [
        ["MACs per cycle", f"{int(comparison['digital_macs_per_cycle'])}",
         f"{int(comparison['cim_macs_per_cycle'])}", "1x (paper: 1x)"],
        ["Energy efficiency", f"{comparison['digital_tops_per_watt']:.2f} TOPS/W",
         f"{comparison['cim_tops_per_watt']:.2f} TOPS/W",
         f"{factor(comparison['energy_efficiency_gain'])} (paper: 9.43x)"],
        ["Area efficiency", f"{comparison['digital_tops_per_mm2']:.3f} TOPS/mm2",
         f"{comparison['cim_tops_per_mm2']:.3f} TOPS/mm2",
         f"{factor(comparison['area_efficiency_gain'])} (paper: 2.02x)"],
        ["MXU area ratio (CIM/digital)", "-", "-",
         f"{comparison['cim_area_ratio']:.2f} (paper: ~0.5)"],
    ]
    emit_report("table2_mxu_comparison",
                ["metric", "digital MXU", "CIM-MXU", "gain"],
                rows,
                title="Table II - digital MXU vs. CIM-MXU (22 nm, 1.05 GHz)")

    assert comparison["energy_efficiency_gain"] > 9.0
    assert comparison["area_efficiency_gain"] > 1.9
