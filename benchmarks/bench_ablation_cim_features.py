"""Ablation — the CIM-MXU's architectural features.

Two features distinguish the paper's CIM-MXU from a naive grid of CIM macros:
the dedicated weight I/O that lets weight updates overlap computation
(following [24]) and the ability to pack small independent matmul instances
onto disjoint cores.  This ablation turns the overlap off and compares packed
against sequential execution of the attention matmuls, quantifying how much
each feature contributes to the Fig. 6 attention speedups.
"""

from __future__ import annotations

from _harness import emit_report, factor

from repro.cim.mxu import CIMMXU, CIMMXUConfig

ATTENTION_SHAPES = {
    "LLM decode attention (1x128x1280, 448 inst.)": (1, 128, 1280, 448),
    "DiT attention (1024x72x1024, 128 inst.)": (1024, 72, 1024, 128),
    "LLM prefill attention (1024x128x1024, 448 inst.)": (1024, 128, 1024, 448),
}


def run_feature_sweep() -> dict[str, dict[str, int]]:
    """Cycles for each attention shape with features enabled/disabled."""
    overlapped = CIMMXU(config=CIMMXUConfig(overlap_weight_update=True))
    serialised = CIMMXU(config=CIMMXUConfig(overlap_weight_update=False))
    results: dict[str, dict[str, int]] = {}
    for label, (m, k, n, instances) in ATTENTION_SHAPES.items():
        packed = overlapped.gemm_cycles(m, k, n, instances=instances).total_cycles
        sequential = sum(overlapped.gemm_cycles(m, k, n, instances=1).total_cycles
                         for _ in range(1)) * instances
        no_overlap = serialised.gemm_cycles(m, k, n, instances=instances).total_cycles
        results[label] = {"packed": packed, "sequential": sequential, "no_overlap": no_overlap}
    return results


def test_ablation_cim_features(benchmark):
    """Time the sweep and emit the CIM feature ablation table."""
    results = benchmark(run_feature_sweep)

    rows = []
    for label, cycles in results.items():
        rows.append([label, cycles["packed"], cycles["sequential"], cycles["no_overlap"],
                     factor(cycles["sequential"] / cycles["packed"]),
                     factor(cycles["no_overlap"] / cycles["packed"])])
    emit_report("ablation_cim_features",
                ["attention workload", "packed+overlap", "sequential", "no weight overlap",
                 "packing gain", "overlap gain"],
                rows,
                title="Ablation - CIM-MXU weight-update overlap and instance packing")

    for cycles in results.values():
        assert cycles["packed"] <= cycles["sequential"]
        assert cycles["packed"] <= cycles["no_overlap"]
