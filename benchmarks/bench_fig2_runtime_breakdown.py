"""Fig. 2d — Inference latency breakdown of generative models on a GPU.

Regenerates the motivating breakdown: the share of inference latency spent in
the Transformer layers / DiT blocks versus the pre- and post-processing layers
for Llama2-13B and DiT-XL/2, using the A100-like roofline device model (the
documented substitution for the paper's CUDA profiling run).

Paper reference values: Llama2-13B 0.70 % / 98.35 % / 0.95 %,
DiT-XL/2 0.35 % / 99.31 % / 0.34 %.
"""

from __future__ import annotations

from _harness import emit_report

from repro.data.gpu_profile import A100_PCIE_40GB, profile_model_breakdown
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import LLAMA2_13B

PAPER_REFERENCE = {
    "llama2-13b": (0.70, 98.35, 0.95),
    "dit-xl-2": (0.35, 99.31, 0.34),
}


def run_fig2_breakdowns() -> dict[str, dict[str, float]]:
    """Profile both models on the A100-like device."""
    return {
        "llama2-13b": profile_model_breakdown(LLAMA2_13B, A100_PCIE_40GB, batch=1, seq_len=512),
        "dit-xl-2": profile_model_breakdown(DIT_XL_2, A100_PCIE_40GB, batch=1,
                                            image_resolution=512),
    }


def test_fig2_runtime_breakdown(benchmark):
    """Time the profiling pass and emit the Fig. 2d rows."""
    breakdowns = benchmark(run_fig2_breakdowns)

    rows = []
    for model, breakdown in breakdowns.items():
        paper_pre, paper_core, paper_post = PAPER_REFERENCE[model]
        rows.append([model, "pre-process",
                     f"{breakdown['pre_process_fraction'] * 100:.2f}%", f"{paper_pre:.2f}%"])
        rows.append([model, "transformer / DiT blocks",
                     f"{breakdown['core_layers_fraction'] * 100:.2f}%", f"{paper_core:.2f}%"])
        rows.append([model, "post-process",
                     f"{breakdown['post_process_fraction'] * 100:.2f}%", f"{paper_post:.2f}%"])
    emit_report("fig2_runtime_breakdown",
                ["model", "layer group", "measured share", "paper share"],
                rows,
                title="Fig. 2d - inference latency breakdown (A100-like roofline substitute)")

    for breakdown in breakdowns.values():
        assert breakdown["core_layers_fraction"] > 0.95
