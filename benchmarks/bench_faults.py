"""Chaos-run throughput: the perf-trajectory record for fault injection.

Routes a 2k-request bursty chat trace — compressed by a flash-crowd
overlay — across a four-replica fleet under two seeded fault sources (a
recurring replica crash and a slow node) with the forecasting autoscaler,
and measures *simulator* performance: requests simulated per wall-clock
second and the fleet step-cost cache hit rate.  Fault handling rides the
routing pre-pass, so chaos must not meaningfully slow the simulator down.

Beyond the human-readable table under ``reports/``, the run writes
``BENCH_faults.json`` at the repository root: the machine-readable record
CI uploads next to ``BENCH_cluster.json`` and the benchmark-regression
gate (``scripts/check_bench_regression.py``) compares against the
committed baseline.  Pinned invariants: the 2k-request chaos run must
finish in under 15 s, the fleet cache hit rate must stay above 95 %
(2k requests amortise fewer cold state misses than the clean 5k bench,
and crash re-routing diversifies batch compositions), the
run must conserve requests (completed + rejected + shed == trace length)
and two identical runs must agree bit for bit.
"""

from __future__ import annotations

import json
import time

from _harness import REPORTS_DIR, emit_report

from repro.core.designs import design_a
from repro.serving.cluster import ClusterSimulator
from repro.serving.faults import FaultSpec
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import OverlaySpec, apply_overlay, generate_trace
from repro.sweep.cache import CachingInferenceSimulator
from repro.workloads.chat import DEFAULT_REQUEST_MIX
from repro.workloads.llm import GPT3_30B

BENCH_PATH = REPORTS_DIR.parent / "BENCH_faults.json"

NUM_REQUESTS = 2_000
ARRIVAL_RATE = 64.0
REPLICAS = 4
SEED = 7
WALL_BUDGET_SECONDS = 15.0

FAULTS = (FaultSpec("replica-crash", mttf_s=8.0, duration_s=2.0, seed=3,
                    replica=1),
          FaultSpec("slow-node", mttf_s=10.0, duration_s=4.0, magnitude=2.0,
                    seed=2, replica=2))
OVERLAY = OverlaySpec("flash-crowd", start_s=5.0, duration_s=10.0,
                      magnitude=3.0)


def _run():
    trace = apply_overlay(
        generate_trace("bursty", DEFAULT_REQUEST_MIX, ARRIVAL_RATE,
                       NUM_REQUESTS, SEED), OVERLAY)
    shared = CachingInferenceSimulator(design_a())
    replicas = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
                for _ in range(REPLICAS)]
    cluster = ClusterSimulator(replicas, router="least-outstanding-requests",
                               autoscaler="forecasting", faults=FAULTS)
    start = time.perf_counter()
    report = cluster.run(trace, slo=SLO(ttft_s=1.0, tpot_s=0.1))
    return report, time.perf_counter() - start


def test_chaos_simulator_throughput(benchmark):
    """2k overlaid chat requests under seeded faults: wall-clock, determinism."""
    report, wall = _run()
    repeat, repeat_wall = _run()
    resilience = report.resilience

    emit_report(
        "chaos_throughput",
        ["quantity", "value"],
        [["requests routed", NUM_REQUESTS],
         ["replicas (configured)", report.fleet_size],
         ["fault events / crashes",
          f"{resilience.fault_count} / {resilience.crash_count}"],
         ["disrupted / shed requests",
          f"{resilience.disrupted_requests} / {report.shed}"],
         ["availability", f"{resilience.availability:.4f}"],
         ["recovery to SLO", f"{resilience.recovery_s:.1f} s"],
         ["wall-clock", f"{wall:.2f} s"],
         ["requests/s simulated", f"{NUM_REQUESTS / wall:.0f}"],
         ["fleet step-cost cache hit rate",
          f"{report.cost_cache_hit_rate * 100:.2f}%"],
         ["goodput under failure",
          f"{resilience.goodput_under_failure_tokens_per_second:.0f} tok/s"],
         ["p99 e2e", f"{report.e2e.p99_s:.3f} s"]],
        title=f"Chaos fleet over {NUM_REQUESTS} chat requests "
              f"({GPT3_30B.name} on {REPLICAS}x design-a, seed {SEED})")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "fault_injection",
        "model": GPT3_30B.name,
        "design": "design-a",
        "fleet": {"replicas": REPLICAS, "router": "least-outstanding-requests",
                  "autoscaler": "forecasting"},
        "faults": [spec.summary() for spec in FAULTS],
        "overlay": OVERLAY.summary(),
        "trace": {"kind": "bursty", "num_requests": NUM_REQUESTS,
                  "arrival_rate": ARRIVAL_RATE, "seed": SEED},
        "wall_seconds": wall,
        "requests_per_wall_second": NUM_REQUESTS / wall,
        "cache_hit_rate": report.cost_cache_hit_rate,
        "shed_requests": report.shed,
        "report": report.to_dict(include_requests=False),
    }, indent=2) + "\n", encoding="utf-8")
    print(f"wrote chaos benchmark record to {BENCH_PATH}")

    # Acceptance budget: the chaos run must stay as cheap as a clean one.
    assert wall < WALL_BUDGET_SECONDS
    assert report.completed + report.rejected + report.shed == NUM_REQUESTS
    assert report.shed == 0
    assert resilience.crash_count >= 1
    assert resilience.availability < 1.0
    assert report.cost_cache_hit_rate > 0.95
    # Bit-for-bit reproducibility of the chaos outcome.
    assert repeat.to_dict() == report.to_dict()
    assert repeat_wall < WALL_BUDGET_SECONDS

    # Steady-state figure of merit: a 500-request chaos replay on a warm
    # shared graph cache.
    small_trace = apply_overlay(
        generate_trace("bursty", DEFAULT_REQUEST_MIX, ARRIVAL_RATE, 500, SEED),
        OVERLAY)
    shared = CachingInferenceSimulator(design_a())
    warm = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
            for _ in range(REPLICAS)]
    ClusterSimulator(warm, router="least-outstanding-requests",
                     autoscaler="forecasting", faults=FAULTS).run(small_trace)

    def replay():
        fresh = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
                 for _ in range(REPLICAS)]
        return ClusterSimulator(fresh, router="least-outstanding-requests",
                                autoscaler="forecasting",
                                faults=FAULTS).run(small_trace)

    benchmark(replay)


def test_every_fault_model_completes_the_trace():
    """Each built-in fault model conserves a contended fleet trace."""
    from repro.serving.faults import FAULT_REGISTRY

    trace = generate_trace("bursty", DEFAULT_REQUEST_MIX, 32.0, 600, SEED)
    shared = CachingInferenceSimulator(design_a())
    for kind in sorted(FAULT_REGISTRY):
        replicas = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
                    for _ in range(3)]
        report = ClusterSimulator(
            replicas, faults=(FaultSpec(kind, mttf_s=6.0, duration_s=2.0),),
        ).run(trace)
        assert report.completed + report.rejected + report.shed == 600
        assert report.shed == 0
