"""Ablation — INT8 vs BF16 operation of the CIM-based TPU.

The paper's CIM-MXU supports both INT8 and BF16 (through the pre/post-
processing pipeline).  The evaluation uses INT8; this ablation quantifies what
BF16 costs on the same workloads: double the operand traffic (which matters in
the memory-bound decode stage) and a higher per-MAC energy.
"""

from __future__ import annotations

import pytest

from _harness import emit_report, factor

from repro.common import Precision
from repro.core.simulator import LLMInferenceSettings
from repro.workloads.llm import GPT3_30B


@pytest.fixture(scope="module")
def settings_by_precision():
    return {
        precision: LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                        precision=precision, decode_kv_samples=2)
        for precision in (Precision.INT8, Precision.BF16)
    }


def test_ablation_precision(benchmark, cim_sim, settings_by_precision):
    """Time the BF16 decode layer and emit the precision ablation."""
    results = {}
    for precision, settings in settings_by_precision.items():
        results[precision] = {
            "prefill": cim_sim.simulate_llm_prefill_layer(GPT3_30B, settings),
            "decode": cim_sim.simulate_llm_decode_layer(GPT3_30B, settings),
        }
    benchmark(cim_sim.simulate_llm_decode_layer, GPT3_30B,
              settings_by_precision[Precision.BF16])

    rows = []
    for stage in ("prefill", "decode"):
        int8 = results[Precision.INT8][stage]
        bf16 = results[Precision.BF16][stage]
        rows.append([stage,
                     f"{int8.total_seconds * 1e3:.3f} ms", f"{bf16.total_seconds * 1e3:.3f} ms",
                     factor(bf16.total_seconds / int8.total_seconds),
                     factor(bf16.mxu_energy / int8.mxu_energy)])
    emit_report("ablation_precision",
                ["stage", "INT8 latency", "BF16 latency", "BF16 slowdown", "BF16 MXU energy"],
                rows,
                title="Ablation - INT8 vs BF16 on the CIM-based TPU (GPT-3-30B layer)")

    # BF16 doubles the weight traffic: the memory-bound decode stage slows
    # down by roughly 2×, while energy per layer rises in both stages.
    decode_slowdown = (results[Precision.BF16]["decode"].total_seconds
                       / results[Precision.INT8]["decode"].total_seconds)
    assert 1.5 < decode_slowdown < 2.5
    assert results[Precision.BF16]["prefill"].mxu_energy \
        > results[Precision.INT8]["prefill"].mxu_energy
