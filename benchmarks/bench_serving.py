"""Serving-simulator throughput: the perf-trajectory record for serving.

Replays a 10k-request Poisson trace of the default chat mix through the
continuous-batching engine and measures *simulator* performance — requests
simulated per wall-clock second and the step-cost cache hit rate that makes
it possible (repeated (phase, batch, context-bucket) states are dictionary
lookups; only distinct states touch the analytical model).

Beyond the human-readable table under ``reports/``, the run writes
``BENCH_serving.json`` at the repository root: the machine-readable record
CI uploads next to ``BENCH_sweep.json``, so the serving-performance
trajectory accumulates across revisions.  Pinned invariants: the 10k-request
trace must finish in under 10 s (the acceptance budget), the cache hit rate
must stay above 99 %, and two identical runs must agree bit for bit.
"""

from __future__ import annotations

import json
import time

import pytest

from _harness import REPORTS_DIR, emit_report

from repro.core.designs import design_a
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import generate_trace
from repro.workloads.chat import DEFAULT_REQUEST_MIX
from repro.workloads.llm import GPT3_30B

BENCH_PATH = REPORTS_DIR.parent / "BENCH_serving.json"

NUM_REQUESTS = 10_000
ARRIVAL_RATE = 32.0
SEED = 7
WALL_BUDGET_SECONDS = 10.0

#: Rate 32 oversaturates a single deployment by ~600x (capacity is about
#: 0.054 req/s for this model/chip), which is exactly what a *throughput*
#: benchmark wants — maximal queue pressure — but it drives SLO attainment
#: to ~0 and makes the latency distribution all queueing delay.  The
#: near-capacity run probes the regime the latency metrics are meant for.
NEAR_CAPACITY_RATE = 0.048
NEAR_CAPACITY_REQUESTS = 400


def _run():
    trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, ARRIVAL_RATE,
                           NUM_REQUESTS, SEED)
    simulator = ServingSimulator(GPT3_30B, design_a())
    start = time.perf_counter()
    report = simulator.run(trace, slo=SLO(ttft_s=1.0, tpot_s=0.1))
    return report, time.perf_counter() - start, simulator.costs.distinct_states


def test_serving_simulator_throughput(benchmark):
    """10k chat requests: wall-clock, cache behaviour and reproducibility."""
    report, wall, distinct_states = _run()
    repeat, repeat_wall, _ = _run()

    emit_report(
        "serving_throughput",
        ["quantity", "value"],
        [["requests simulated", NUM_REQUESTS],
         ["wall-clock", f"{wall:.2f} s"],
         ["requests/s simulated", f"{NUM_REQUESTS / wall:.0f}"],
         ["simulated makespan", f"{report.makespan_s:.0f} s"],
         ["scheduler steps", report.prefill_steps + report.decode_steps],
         ["step-cost cache hit rate", f"{report.cost_cache_hit_rate * 100:.2f}%"],
         ["distinct (phase, batch, bucket) states", distinct_states],
         ["p99 TTFT", f"{report.ttft.p99_s:.3f} s"],
         ["p99 e2e", f"{report.e2e.p99_s:.3f} s"],
         ["devices (auto-planned)", report.devices]],
        title=f"Serving simulator over {NUM_REQUESTS} chat requests "
              f"({GPT3_30B.name} on design-a, seed {SEED})")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "serving_simulator",
        "model": GPT3_30B.name,
        "design": "design-a",
        "trace": {"kind": "poisson", "num_requests": NUM_REQUESTS,
                  "arrival_rate": ARRIVAL_RATE, "seed": SEED},
        "wall_seconds": wall,
        "requests_per_wall_second": NUM_REQUESTS / wall,
        "cache_hit_rate": report.cost_cache_hit_rate,
        "distinct_cost_states": distinct_states,
        "scheduler_steps": report.prefill_steps + report.decode_steps,
        "report": report.to_dict(include_requests=False),
    }, indent=2) + "\n", encoding="utf-8")
    print(f"wrote serving benchmark record to {BENCH_PATH}")

    # Acceptance budget: 10k requests in under 10 s, by hitting the memo.
    assert wall < WALL_BUDGET_SECONDS
    assert report.completed == NUM_REQUESTS
    assert report.cost_cache_hit_rate > 0.99
    # Bit-for-bit reproducibility of the simulated outcome.
    assert repeat.to_dict() == report.to_dict()
    assert repeat_wall < WALL_BUDGET_SECONDS

    # Steady-state figure of merit for pytest-benchmark comparisons: a
    # 1k-request replay on a warm simulator-shaped pipeline.
    small_trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, ARRIVAL_RATE,
                                 1000, SEED)
    warm = ServingSimulator(GPT3_30B, design_a())
    warm.run(small_trace)

    benchmark(warm.run, small_trace)


def test_near_capacity_latency_regime():
    """Near-capacity replay: SLO attainment is measured, not saturated away.

    At rate 32 every request queues for hours of simulated time and
    attainment collapses to ~0 — fine for the throughput record above,
    useless as a latency benchmark.  At ~89 % of single-deployment capacity
    the queue breathes: TTFT spans both SLO-met and SLO-missed requests,
    so the attainment figure actually discriminates between revisions.
    """
    trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, NEAR_CAPACITY_RATE,
                           NEAR_CAPACITY_REQUESTS, SEED)
    report = ServingSimulator(GPT3_30B, design_a()).run(
        trace, slo=SLO(ttft_s=1.0, tpot_s=0.1))

    emit_report(
        "serving_near_capacity",
        ["quantity", "value"],
        [["arrival rate", f"{NEAR_CAPACITY_RATE} req/s (~89% of capacity)"],
         ["requests", NEAR_CAPACITY_REQUESTS],
         ["SLO attainment", f"{report.slo_attainment * 100:.1f}%"],
         ["mean TTFT", f"{report.ttft.mean_s:.2f} s"],
         ["p99 TTFT", f"{report.ttft.p99_s:.2f} s"],
         ["p99 TPOT", f"{report.tpot.p99_s * 1e3:.1f} ms"],
         ["goodput", f"{report.goodput_tokens_per_second:.1f} tokens/s"],
         ["utilisation", f"{report.utilisation * 100:.1f}%"]],
        title=f"Near-capacity serving: {NEAR_CAPACITY_REQUESTS} chat requests "
              f"at {NEAR_CAPACITY_RATE} req/s ({GPT3_30B.name} on design-a)")

    assert report.completed == NEAR_CAPACITY_REQUESTS
    # The whole point of this rate: attainment must be a *measurement*,
    # strictly inside (0, 1), not pinned to either saturation endpoint.
    assert 0.0 < report.slo_attainment < 1.0
    assert report.utilisation > 0.5


@pytest.mark.parametrize("scheduler", ["fcfs", "shortest-prompt-first",
                                       "decode-priority"])
def test_scheduler_policies_complete_the_trace(scheduler):
    """Every built-in policy finishes a contended 1k-request trace."""
    trace = generate_trace("bursty", DEFAULT_REQUEST_MIX, 16.0, 1000, SEED)
    report = ServingSimulator(GPT3_30B, design_a(), scheduler=scheduler).run(trace)
    assert report.completed + report.rejected == 1000
    assert report.rejected == 0
