"""Scenario-pipeline report: the registered scenarios on baseline vs. Design A.

Exercises the generic scenario path end to end — the paper's two workloads
plus the MoE (Mixtral-8x7B) and chat-serving scenarios the registry opened up
— on the TPUv4i baseline and the LLM-optimised CIM design, and reports the
per-scenario latency, steady-state throughput and MXU energy saving.  The
table lands in ``reports/scenario_pipeline.txt``.
"""

from __future__ import annotations

import pytest

from _harness import emit_report, factor

from repro.core.designs import design_a, tpuv4i_baseline
from repro.sweep.engine import SweepEngine
from repro.sweep.grid import make_point
from repro.workloads.registry import get_model

#: (model, scenario) pairs covering every registered scenario family.
SCENARIO_MATRIX: list[tuple[str, str]] = [
    ("gpt3-30b", "llm-serving"),
    ("dit-xl-2", "dit-sampling"),
    ("mixtral-8x7b", "moe-serving"),
    ("llama2-7b", "chat-serving"),
]


@pytest.fixture(scope="module")
def scenario_points():
    designs = [("baseline", tpuv4i_baseline()), ("design-a", design_a())]
    return [make_point(label, config, get_model(model), scenario=scenario)
            for label, config in designs
            for model, scenario in SCENARIO_MATRIX]


def test_scenario_pipeline_report(benchmark, scenario_points):
    """Every registered scenario runs through the one generic pipeline."""
    engine = SweepEngine()
    rows = engine.sweep(scenario_points)

    baselines = {(row.workload, row.scenario): row for row in rows
                 if row.design == "baseline"}
    table = []
    for row in rows:
        base = baselines[(row.workload, row.scenario)]
        table.append([
            row.design, row.workload, row.scenario, row.settings_summary,
            f"{row.latency_seconds * 1e3:.1f} ms",
            f"{row.throughput:.2f} {row.item_unit}s/s",
            factor(base.mxu_energy_joules / row.mxu_energy_joules
                   if row.mxu_energy_joules else 0.0)])
    emit_report(
        "scenario_pipeline",
        ["design", "model", "scenario", "settings", "latency", "throughput",
         "MXU energy saving"],
        table,
        title="Registered scenarios on baseline TPUv4i vs. Design A")

    # Every scenario family produced a row on both designs.
    assert len(rows) == 2 * len(SCENARIO_MATRIX)
    assert all(row.latency_seconds > 0 and row.mxu_energy_joules > 0 for row in rows)
    # The CIM design must save MXU energy on every scenario, as in Fig. 7.
    for row in rows:
        if row.design != "baseline":
            base = baselines[(row.workload, row.scenario)]
            assert row.mxu_energy_joules < base.mxu_energy_joules

    # Steady-state figure of merit: one fully cached re-sweep of the matrix.
    benchmark(engine.sweep, scenario_points)
