"""Day-scale serving throughput: the 10x perf gate for the optimised core.

Replays a 250k-request Poisson trace (a day of traffic at 32 requests/s)
through the heap-based event core and records requests simulated per
wall-clock second against the committed pre-optimisation figure of
28,242.6 req/s (``benchmarks/baselines/BENCH_serving.json``).  The run is
configured the way a day-scale replay should be: aggregate-only metrics
(``collect_requests=False``), coarse 512-token cost buckets, a warm step
memo and GC paused across the timed region, best of five walls.

The same spec is then priced with the closed-form fluid estimator
(:mod:`repro.serving.fluid`) — whose cost is independent of trace length —
and re-run sharded at quiescence boundaries to prove the split/merge path
reproduces the serial report bit for bit.

``BENCH_serving_scale.json`` lands at the repository root for CI's
regression gate (wall, requests/wall-second, cache hit rate) and artifact
upload.  Pinned invariants: >=10x requests/wall-second over the committed
baseline, fluid >=100x faster than the exact wall, sharded == serial.
"""

from __future__ import annotations

import gc
import json
import time
from types import SimpleNamespace

from _harness import REPORTS_DIR, emit_report

from repro.common import Precision
from repro.core.designs import design_a
from repro.serving.fluid import estimate_serving
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.spec import ServingSpec
from repro.serving.trace import generate_trace
from repro.workloads.chat import DEFAULT_REQUEST_MIX
from repro.workloads.llm import GPT3_30B

BENCH_PATH = REPORTS_DIR.parent / "BENCH_serving_scale.json"

NUM_REQUESTS = 250_000
ARRIVAL_RATE = 32.0
SEED = 7
BUCKET_TOKENS = 512
SHARDS = 8
#: requests_per_wall_second of the pre-optimisation event core
#: (benchmarks/baselines/BENCH_serving.json at the time the heap core
#: landed); the acceptance gate is >= 10x this figure.
COMMITTED_BASELINE_REQ_PER_S = 28_242.6
SCALE_GATE = 10.0
FLUID_SPEEDUP_GATE = 100.0
SLO_SPEC = SLO(ttft_s=1.0, tpot_s=0.1)


#: Step-cost cache counters are cumulative on the shared memo, so two runs
#: of the same trace snapshot different totals depending on what ran before
#: them.  The determinism comparison ignores exactly those bookkeeping
#: fields; every simulated outcome must still match bit for bit.  (The
#: regression tests in tests/test_serving_shards.py compare *fresh* engines,
#: where the counters match too.)
_CACHE_COUNTER_KEYS = ("cost_cache_hits", "cost_cache_misses",
                       "cost_cache_hit_rate")


def _outcome(report) -> dict:
    """A report's dict with run-order-dependent cache counters removed."""
    payload = report.to_dict()
    for key in _CACHE_COUNTER_KEYS:
        payload.pop(key, None)
    return payload


def _timed(function, repeats: int = 5):
    """Best-of-N wall time with GC paused; returns (result, wall, walls).

    Five repeats, not three: the gate is a ratio against a wall-clock
    baseline, and shared runners drift enough between seconds that the
    minimum of a longer window is what reflects the code, not the machine.
    """
    walls = []
    result = None
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            result = function()
            walls.append(time.perf_counter() - start)
    finally:
        if enabled:
            gc.enable()
    return result, min(walls), walls


def test_day_scale_throughput_gate(benchmark):
    """250k requests: 10x exact gate, 100x fluid gate, sharded == serial."""
    trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, ARRIVAL_RATE,
                           NUM_REQUESTS, SEED)
    simulator = ServingSimulator(GPT3_30B, design_a(),
                                 bucket_tokens=BUCKET_TOKENS)
    # Warm the step-cost memo on a short prefix so the timed region
    # measures the event core, not first-touch analytical pricing, and pin
    # the auto-planned deployment so the timed runs skip the trace scan.
    simulator.run(trace[:2000], slo=SLO_SPEC, collect_requests=False)
    devices = simulator.plan_devices(trace)

    report, wall, walls = _timed(
        lambda: simulator.run(trace, slo=SLO_SPEC, devices=devices,
                              collect_requests=False))
    requests_per_wall_second = NUM_REQUESTS / wall
    scale = requests_per_wall_second / COMMITTED_BASELINE_REQ_PER_S

    sharded, sharded_wall, _ = _timed(
        lambda: simulator.run(trace, slo=SLO_SPEC, devices=devices,
                              shards=SHARDS, collect_requests=False),
        repeats=1)

    spec = ServingSpec(trace="poisson", arrival_rate=ARRIVAL_RATE,
                       num_requests=NUM_REQUESTS, seed=SEED,
                       bucket_tokens=BUCKET_TOKENS, slo=SLO_SPEC,
                       fidelity="fluid")
    settings = SimpleNamespace(request_classes=DEFAULT_REQUEST_MIX,
                               precision=Precision.INT8)
    fluid, fluid_wall, _ = _timed(
        lambda: estimate_serving(GPT3_30B, design_a(), spec, settings,
                                 simulator=simulator.costs.simulator))
    fluid_speedup = wall / fluid_wall

    emit_report(
        "serving_scale",
        ["quantity", "value"],
        [["requests simulated", NUM_REQUESTS],
         ["exact wall (best of 5)", f"{wall:.3f} s"],
         ["requests/wall-second", f"{requests_per_wall_second:,.0f}"],
         ["vs committed 28,242.6/s", f"{scale:.1f}x"],
         ["step-cost cache hit rate", f"{report.cost_cache_hit_rate * 100:.2f}%"],
         [f"sharded wall (--shards {SHARDS})", f"{sharded_wall:.3f} s"],
         ["sharded == serial", _outcome(sharded) == _outcome(report)],
         ["fluid estimate wall", f"{fluid_wall * 1e3:.2f} ms"],
         ["fluid speedup vs exact", f"{fluid_speedup:,.0f}x"],
         ["fluid tokens/s rel error",
          f"{abs(fluid.tokens_per_second - report.tokens_per_second) / report.tokens_per_second:.3f}"]],
        title=f"Day-scale serving: {NUM_REQUESTS:,} chat requests "
              f"({GPT3_30B.name} on design-a, seed {SEED})")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "serving_scale",
        "model": GPT3_30B.name,
        "design": "design-a",
        "trace": {"kind": "poisson", "num_requests": NUM_REQUESTS,
                  "arrival_rate": ARRIVAL_RATE, "seed": SEED,
                  "bucket_tokens": BUCKET_TOKENS},
        "committed_baseline_requests_per_wall_second": COMMITTED_BASELINE_REQ_PER_S,
        "exact": {
            "wall_seconds": wall,
            "wall_seconds_all": walls,
            "requests_per_wall_second": requests_per_wall_second,
            "scale_vs_committed_baseline": scale,
            "cache_hit_rate": report.cost_cache_hit_rate,
            "completed": report.completed,
            "tokens_per_second": report.tokens_per_second,
        },
        "sharded": {
            "shards": SHARDS,
            "wall_seconds": sharded_wall,
            "identical_to_serial": _outcome(sharded) == _outcome(report),
        },
        "fluid": {
            "wall_seconds": fluid_wall,
            "speedup_vs_exact": fluid_speedup,
            "tokens_per_second": fluid.tokens_per_second,
            "tokens_per_second_rel_error": (
                abs(fluid.tokens_per_second - report.tokens_per_second)
                / report.tokens_per_second),
        },
    }, indent=2) + "\n", encoding="utf-8")
    print(f"wrote day-scale benchmark record to {BENCH_PATH}")

    # The acceptance gates of the optimisation work, pinned.
    assert report.completed == NUM_REQUESTS
    assert scale >= SCALE_GATE, (
        f"day-scale throughput {requests_per_wall_second:,.0f} req/s is only "
        f"{scale:.1f}x the committed baseline (gate: {SCALE_GATE}x)")
    assert fluid_speedup >= FLUID_SPEEDUP_GATE, (
        f"fluid estimate is only {fluid_speedup:.0f}x faster than the exact "
        f"wall (gate: {FLUID_SPEEDUP_GATE}x)")
    assert _outcome(sharded) == _outcome(report), (
        "sharded replay diverged from the serial report")

    # Steady-state figure of merit for pytest-benchmark comparisons: the
    # warm 250k replay itself (aggregate-only, memo already hot).
    benchmark(lambda: simulator.run(trace, slo=SLO_SPEC,
                                    collect_requests=False))
