"""Cluster-simulator throughput: the perf-trajectory record for the fleet.

Routes a 5k-request bursty trace of the default chat mix across a
four-replica fleet (least-outstanding-requests router, queue-depth
autoscaler) and measures *simulator* performance — requests simulated per
wall-clock second and the fleet-wide step-cost cache hit rate the shared
graph cache makes possible.

Beyond the human-readable table under ``reports/``, the run writes
``BENCH_cluster.json`` at the repository root: the machine-readable record
CI uploads next to ``BENCH_sweep.json`` / ``BENCH_serving.json`` and the
benchmark-regression gate (``scripts/check_bench_regression.py``) compares
against the committed baseline.  Pinned invariants: the 5k-request fleet
must finish in under 15 s, the fleet cache hit rate must stay above 98 %
(each replica's step-cost memo pays its own first lookup per state, so the
fleet rate sits slightly below the single-replica 99 %), and two identical
runs must agree bit for bit.
"""

from __future__ import annotations

import json
import time

from _harness import REPORTS_DIR, emit_report

from repro.core.designs import design_a
from repro.serving.cluster import ClusterSimulator
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import generate_trace
from repro.sweep.cache import CachingInferenceSimulator
from repro.workloads.chat import DEFAULT_REQUEST_MIX
from repro.workloads.llm import GPT3_30B

BENCH_PATH = REPORTS_DIR.parent / "BENCH_cluster.json"

NUM_REQUESTS = 5_000
ARRIVAL_RATE = 64.0
REPLICAS = 4
SEED = 7
WALL_BUDGET_SECONDS = 15.0


def _run():
    trace = generate_trace("bursty", DEFAULT_REQUEST_MIX, ARRIVAL_RATE,
                           NUM_REQUESTS, SEED)
    shared = CachingInferenceSimulator(design_a())
    replicas = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
                for _ in range(REPLICAS)]
    cluster = ClusterSimulator(replicas, router="least-outstanding-requests",
                               autoscaler="queue-depth")
    start = time.perf_counter()
    report = cluster.run(trace, slo=SLO(ttft_s=1.0, tpot_s=0.1))
    return report, time.perf_counter() - start


def test_cluster_simulator_throughput(benchmark):
    """5k chat requests over 4 replicas: wall-clock, caching, reproducibility."""
    report, wall = _run()
    repeat, repeat_wall = _run()

    emit_report(
        "cluster_throughput",
        ["quantity", "value"],
        [["requests routed", NUM_REQUESTS],
         ["replicas (configured)", report.fleet_size],
         ["replicas (peak / mean active)",
          f"{report.peak_active_replicas} / {report.mean_active_replicas:.2f}"],
         ["wall-clock", f"{wall:.2f} s"],
         ["requests/s simulated", f"{NUM_REQUESTS / wall:.0f}"],
         ["simulated makespan", f"{report.makespan_s:.0f} s"],
         ["fleet step-cost cache hit rate",
          f"{report.cost_cache_hit_rate * 100:.2f}%"],
         ["distinct states priced (fleet)", report.cost_cache_misses],
         ["p99 TTFT", f"{report.ttft.p99_s:.3f} s"],
         ["p99 e2e", f"{report.e2e.p99_s:.3f} s"],
         ["cost per million tokens", f"${report.cost_per_million_tokens_dollars:.3f}"]],
        title=f"Cluster simulator over {NUM_REQUESTS} chat requests "
              f"({GPT3_30B.name} on {REPLICAS}x design-a, seed {SEED})")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "cluster_simulator",
        "model": GPT3_30B.name,
        "design": "design-a",
        "fleet": {"replicas": REPLICAS, "router": "least-outstanding-requests",
                  "autoscaler": "queue-depth"},
        "trace": {"kind": "bursty", "num_requests": NUM_REQUESTS,
                  "arrival_rate": ARRIVAL_RATE, "seed": SEED},
        "wall_seconds": wall,
        "requests_per_wall_second": NUM_REQUESTS / wall,
        "cache_hit_rate": report.cost_cache_hit_rate,
        "distinct_cost_states": report.cost_cache_misses,
        "report": report.to_dict(include_requests=False),
    }, indent=2) + "\n", encoding="utf-8")
    print(f"wrote cluster benchmark record to {BENCH_PATH}")

    # Acceptance budget: 5k requests across the fleet in under 15 s.
    assert wall < WALL_BUDGET_SECONDS
    assert report.completed == NUM_REQUESTS
    assert report.cost_cache_hit_rate > 0.98
    # Bit-for-bit reproducibility of the simulated fleet outcome.
    assert repeat.to_dict() == report.to_dict()
    assert repeat_wall < WALL_BUDGET_SECONDS

    # Steady-state figure of merit for pytest-benchmark comparisons: a
    # 1k-request fleet replay on a warm shared graph cache.
    small_trace = generate_trace("bursty", DEFAULT_REQUEST_MIX, ARRIVAL_RATE,
                                 1000, SEED)
    shared = CachingInferenceSimulator(design_a())
    replicas = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
                for _ in range(REPLICAS)]
    warm = ClusterSimulator(replicas, router="least-outstanding-requests")
    warm.run(small_trace)

    def replay():
        fresh = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
                 for _ in range(REPLICAS)]
        return ClusterSimulator(fresh, router="least-outstanding-requests").run(small_trace)

    benchmark(replay)


def test_routers_complete_the_trace():
    """Every built-in router finishes a contended fleet trace."""
    from repro.serving.router import ROUTER_REGISTRY

    trace = generate_trace("bursty", DEFAULT_REQUEST_MIX, 32.0, 800, SEED)
    shared = CachingInferenceSimulator(design_a())
    for router in sorted(ROUTER_REGISTRY):
        replicas = [ServingSimulator(GPT3_30B, design_a(), simulator=shared)
                    for _ in range(3)]
        report = ClusterSimulator(replicas, router=router).run(trace)
        assert report.completed + report.rejected == 800
        assert report.rejected == 0
