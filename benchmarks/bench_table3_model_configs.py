"""Table III — Configurations of the evaluated generative models."""

from __future__ import annotations

from _harness import emit_report

from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import GPT3_30B
from repro.workloads.registry import MODEL_REGISTRY


def build_table3() -> list[list[object]]:
    """Table III rows plus derived quantities used by the simulator."""
    rows = [
        ["GPT3-30B", GPT3_30B.num_layers, GPT3_30B.num_heads, GPT3_30B.d_model,
         f"{GPT3_30B.approximate_parameters / 1e9:.1f} B params"],
        ["DiT-XL/2", DIT_XL_2.depth, DIT_XL_2.num_heads, DIT_XL_2.d_model,
         f"{DIT_XL_2.tokens_for_resolution(512)} tokens @ 512x512"],
    ]
    return rows


def test_table3_model_configurations(benchmark):
    """Time workload-registry access and emit the Table III rows."""
    registry = benchmark(lambda: dict(MODEL_REGISTRY))
    assert "gpt3-30b" in registry and "dit-xl-2" in registry

    emit_report("table3_model_configs",
                ["generative model", "# layers", "# heads", "d_model", "derived"],
                build_table3(),
                title="Table III - evaluated generative model configurations")

    # The paper's Table III values.
    assert (GPT3_30B.num_layers, GPT3_30B.num_heads, GPT3_30B.d_model) == (48, 56, 7168)
    assert (DIT_XL_2.depth, DIT_XL_2.num_heads, DIT_XL_2.d_model) == (28, 16, 1152)
