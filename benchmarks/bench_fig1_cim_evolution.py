"""Fig. 1 — Evolution of the computing performance of CIM-based designs.

Regenerates the survey series plotted in Fig. 1: peak performance of published
CIM designs over time, compared against the NVIDIA A100 and Google TPUv4, plus
the >100 TOPS operating point of the paper's CIM-based TPU (the default
configuration of this reproduction).
"""

from __future__ import annotations

from _harness import emit_report

from repro.core.designs import cim_tpu_default
from repro.data.cim_survey import CIM_DESIGN_SURVEY, performance_evolution, performance_gap_to_accelerators


def build_fig1_rows() -> list[list[object]]:
    """Survey rows sorted chronologically, with the CIM-TPU appended."""
    rows: list[list[object]] = []
    for record in sorted(CIM_DESIGN_SURVEY, key=lambda r: (r.year, r.name)):
        rows.append([
            f"{record.venue}'{record.year % 100:02d}",
            record.name,
            f"{record.peak_tops:.4g} TOPS",
            f"{record.area_mm2:.4g} mm2",
            f"{record.technology_nm} nm",
            "CIM" if record.is_cim else "digital",
            "INT/FP" if record.supports_floating_point else "INT",
        ])
    cim_tpu = cim_tpu_default()
    rows.append(["this work", "CIM-based TPU (4 x 16x8 CIM-MXUs)",
                 f"{cim_tpu.peak_tops:.4g} TOPS", "-", "22 nm", "CIM", "INT/FP"])
    return rows


def test_fig1_cim_evolution(benchmark):
    """Time the survey aggregation and emit the Fig. 1 series."""
    series = benchmark(performance_evolution, False)
    assert len(series) == len(CIM_DESIGN_SURVEY)

    rows = build_fig1_rows()
    emit_report("fig1_cim_evolution",
                ["venue", "design", "peak perf", "area", "node", "type", "precision"],
                rows,
                title="Fig. 1 - Evolution of CIM-based designs (survey data)")

    gap = performance_gap_to_accelerators()
    emit_report("fig1_performance_gap",
                ["quantity", "value"],
                [["best accelerator / best CIM chip (peak TOPS)", f"{gap:.1f}x"],
                 ["CIM-TPU target", "> 100 TOPS"]],
                title="Fig. 1 - performance gap CIM chips vs. accelerators")
