"""Sweep-engine wall-time: serial vs. parallel fan-out vs. cached re-sweep.

Times the Table IV exploration grid (baseline + nine design points on LLM and
DiT inference, 20 points) through the three execution modes of the
:class:`~repro.sweep.engine.SweepEngine` and reports the wall-clock of each,
plus the cache statistics that explain them.  The cached re-sweep must do
zero new graph simulations and the parallel rows must equal the serial rows
bit-for-bit — the same invariants the tier-1 tests pin, asserted here on the
paper-sized grid.

Beyond the human-readable table under ``reports/``, the run writes
``BENCH_sweep.json`` at the repository root: the machine-readable wall-time
record the benchmark-regression gate (``scripts/check_bench_regression.py``)
compares against the committed baseline.
"""

from __future__ import annotations

import json
import time

import pytest

from _harness import REPORTS_DIR, emit_report, factor

from repro.core.explorer import ArchitectureExplorer
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.sweep.engine import SweepEngine

BENCH_PATH = REPORTS_DIR.parent / "BENCH_sweep.json"

PARALLEL_WORKERS = 4


@pytest.fixture(scope="module")
def sweep_points():
    explorer = ArchitectureExplorer(
        llm_settings=LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                          decode_kv_samples=4),
        dit_settings=DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50))
    return explorer.sweep_points()


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_sweep_engine_modes(benchmark, sweep_points):
    """Compare serial, parallel and cached sweeps over the Table IV grid."""
    serial_engine = SweepEngine()
    serial_rows, serial_seconds = _timed(lambda: serial_engine.sweep(sweep_points))
    serial_sims = serial_engine.stats.simulations

    parallel_engine = SweepEngine()
    parallel_rows, parallel_seconds = _timed(
        lambda: parallel_engine.sweep(sweep_points, workers=PARALLEL_WORKERS))

    cached_rows, cached_seconds = _timed(lambda: serial_engine.sweep(sweep_points))

    emit_report(
        "sweep_engine_modes",
        ["mode", "wall time", "graph simulations", "vs serial"],
        [["serial", f"{serial_seconds * 1e3:.1f} ms", serial_sims, factor(1.0)],
         [f"parallel (workers={PARALLEL_WORKERS})", f"{parallel_seconds * 1e3:.1f} ms",
          parallel_engine.stats.simulations,
          factor(serial_seconds / parallel_seconds if parallel_seconds else 0.0)],
         ["cached re-sweep", f"{cached_seconds * 1e3:.1f} ms", 0,
          factor(serial_seconds / cached_seconds if cached_seconds else 0.0)]],
        title=f"Sweep engine wall-time over {len(sweep_points)} Table IV points")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "sweep_engine_modes",
        "points": len(sweep_points),
        "serial_wall_seconds": serial_seconds,
        "parallel_wall_seconds": parallel_seconds,
        "parallel_workers": PARALLEL_WORKERS,
        "cached_wall_seconds": cached_seconds,
        "graph_simulations": serial_sims,
        "cached_resweep_simulations": serial_engine.stats.simulations - serial_sims,
        "parallel_equals_serial": parallel_rows == serial_rows,
    }, indent=2) + "\n", encoding="utf-8")
    print(f"wrote sweep benchmark record to {BENCH_PATH}")

    # Parallel fan-out returns the exact serial rows, in order.
    assert parallel_rows == serial_rows
    # The cached re-sweep returns the same rows with zero new simulations.
    assert cached_rows == serial_rows
    assert serial_engine.stats.simulations == serial_sims
    assert serial_engine.stats.point_hits >= len(sweep_points)
    # Serving a full sweep from cache must beat simulating it comfortably.
    assert cached_seconds < serial_seconds / 5

    # Steady-state figure of merit: one fully cached re-sweep.
    benchmark(serial_engine.sweep, sweep_points)
