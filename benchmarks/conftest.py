"""Shared fixtures for the benchmark harness (paper evaluation settings)."""

from __future__ import annotations

import pytest

from repro.core.designs import cim_tpu_default, design_a, design_b, tpuv4i_baseline
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings


@pytest.fixture(scope="session")
def paper_llm_settings():
    """Fig. 6/7 LLM setting: batch 8, 1024 input tokens, 512 output tokens."""
    return LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                decode_kv_samples=4)


@pytest.fixture(scope="session")
def paper_dit_settings():
    """Fig. 6/7 DiT setting: batch 8, 512×512 images."""
    return DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50)


@pytest.fixture(scope="session")
def baseline_sim():
    """Simulator for the TPUv4i baseline."""
    return InferenceSimulator(tpuv4i_baseline())


@pytest.fixture(scope="session")
def cim_sim():
    """Simulator for the default CIM-based TPU."""
    return InferenceSimulator(cim_tpu_default())


@pytest.fixture(scope="session")
def design_a_sim():
    """Simulator for Design A."""
    return InferenceSimulator(design_a())


@pytest.fixture(scope="session")
def design_b_sim():
    """Simulator for Design B."""
    return InferenceSimulator(design_b())
