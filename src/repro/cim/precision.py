"""Pre- and post-processing pipeline for floating-point CIM operation.

The paper's CIM-MXU supports BF16 in addition to INT8: the weight mantissas
are stored in the CIM macros, and a pre-processing unit aligns exponents and
shifts input mantissas before they enter the bit-serial datapath, while a
post-processing unit performs the remaining shift-and-accumulate and rounding.
In INT8 mode both units are bypassed.

The pipeline is fully pipelined in hardware, so its effect on throughput is a
fixed pipeline-fill latency rather than a per-element slowdown; its main cost
is energy (modelled via ``CalibrationConstants.bf16_energy_overhead``) and a
small amount of area.  This module makes those costs explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision
from repro.hw.calibration import CalibrationConstants, PAPER_CALIBRATION


@dataclass(frozen=True)
class PrecisionPipeline:
    """Pre/post-processing pipeline of a CIM core's FP mode.

    Attributes
    ----------
    pre_stage_cycles:
        Pipeline depth of the exponent-alignment / mantissa-shift stage.
    post_stage_cycles:
        Pipeline depth of the shift-accumulate / rounding stage.
    calibration:
        Source of the BF16 energy overhead factor.
    """

    pre_stage_cycles: int = 2
    post_stage_cycles: int = 3
    calibration: CalibrationConstants = PAPER_CALIBRATION

    def __post_init__(self) -> None:
        if self.pre_stage_cycles < 0 or self.post_stage_cycles < 0:
            raise ValueError("pipeline depths must be non-negative")

    def pipeline_fill_cycles(self, precision: Precision) -> int:
        """Extra latency cycles before the first result emerges."""
        if precision is Precision.INT8:
            return 0
        return self.pre_stage_cycles + self.post_stage_cycles

    def is_bypassed(self, precision: Precision) -> bool:
        """Whether the FP pipeline is bypassed for the given precision."""
        return precision is Precision.INT8

    def energy_factor(self, precision: Precision) -> float:
        """Multiplicative dynamic-energy factor relative to INT8 operation."""
        if precision is Precision.INT8:
            return 1.0
        return self.calibration.bf16_energy_overhead

    def throughput_factor(self, precision: Precision) -> float:
        """Relative MACs/cycle compared to INT8 (1.0 in the paper's design)."""
        if precision is Precision.INT8:
            return 1.0
        return self.calibration.bf16_throughput_factor

    def mantissa_bits_loaded(self, precision: Precision) -> int:
        """Weight bits per element that are stored in the CIM array."""
        return precision.mantissa_bits
