"""Macro-level energy accounting for the CIM-MXU (Table II reproduction).

While :mod:`repro.hw.energy` exposes the calibrated per-MAC energies, the
paper's Table II compares the two MXU flavours at full utilisation.  This
module computes that comparison — sustained TOPS/W and TOPS/mm² for a digital
MXU and a CIM-MXU of arbitrary geometry — and breaks the CIM-MXU power down
into its architectural contributors (MAC arrays, weight I/O, leakage), which
is useful for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision
from repro.cim.mxu import CIMMXU
from repro.systolic.systolic_array import DigitalMXU


@dataclass(frozen=True)
class CIMEnergyReport:
    """Sustained full-utilisation operating point of one MXU."""

    name: str
    macs_per_cycle: int
    peak_tops: float
    dynamic_power_w: float
    leakage_power_w: float
    area_mm2: float

    @property
    def total_power_w(self) -> float:
        """Total power at full utilisation."""
        return self.dynamic_power_w + self.leakage_power_w

    @property
    def tops_per_watt(self) -> float:
        """Sustained energy efficiency."""
        return self.peak_tops / self.total_power_w

    @property
    def tops_per_mm2(self) -> float:
        """Area efficiency."""
        return self.peak_tops / self.area_mm2


def macro_energy_report(mxu: DigitalMXU | CIMMXU,
                        precision: Precision = Precision.INT8) -> CIMEnergyReport:
    """Build the full-utilisation operating point of a matrix unit."""
    macs_per_second = mxu.macs_per_cycle * mxu.config.frequency_ghz * 1e9
    if isinstance(mxu, CIMMXU):
        mac_energy = mxu.energy_model.cim_mac_energy(precision.bits)
    else:
        mac_energy = mxu.energy_model.digital_mac_energy(precision.bits)
    dynamic_power = mac_energy * macs_per_second
    peak_tops = 2.0 * macs_per_second / 1e12
    return CIMEnergyReport(
        name=mxu.name,
        macs_per_cycle=mxu.macs_per_cycle,
        peak_tops=peak_tops,
        dynamic_power_w=dynamic_power,
        leakage_power_w=mxu.leakage_power_w,
        area_mm2=mxu.area_mm2,
    )


def compare_mxus(digital: DigitalMXU, cim: CIMMXU,
                 precision: Precision = Precision.INT8) -> dict[str, float]:
    """Reproduce the Table II comparison between a digital MXU and a CIM-MXU.

    Returns a dictionary with the paper's three rows plus the area ratio the
    paper quotes in the text (CIM-MXU delivers the baseline peak in ~50 % of
    the area).
    """
    digital_report = macro_energy_report(digital, precision)
    cim_report = macro_energy_report(cim, precision)
    return {
        "digital_macs_per_cycle": float(digital_report.macs_per_cycle),
        "cim_macs_per_cycle": float(cim_report.macs_per_cycle),
        "digital_tops_per_watt": digital_report.tops_per_watt,
        "cim_tops_per_watt": cim_report.tops_per_watt,
        "energy_efficiency_gain": cim_report.tops_per_watt / digital_report.tops_per_watt,
        "digital_tops_per_mm2": digital_report.tops_per_mm2,
        "cim_tops_per_mm2": cim_report.tops_per_mm2,
        "area_efficiency_gain": cim_report.tops_per_mm2 / digital_report.tops_per_mm2,
        "cim_area_ratio": cim_report.area_mm2 / digital_report.area_mm2,
    }
