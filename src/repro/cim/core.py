"""CIM core: one macro plus its peripheral accumulation and driver logic.

A CIM core is the tile replicated across the CIM-MXU grid.  It owns a CIM
macro, the word-line/input drivers, the shift-accumulator that recombines
bit-serial partial sums, a partial-sum (PSUM) buffer and a slice of the
control logic.  At the modeling granularity of this simulator the core's
timing is the macro's timing; what the core adds is the energy/area/leakage
accounting and the PSUM storage needed by the output-stationary grid dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import Precision
from repro.cim.macro import CIMMacro, CIMMacroConfig
from repro.hw.area import AreaModel
from repro.hw.energy import EnergyModel


@dataclass
class CIMCore:
    """One CIM core of the CIM-MXU grid."""

    macro: CIMMacro = field(default_factory=CIMMacro)
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    area_model: AreaModel = field(default_factory=AreaModel)
    #: Partial-sum buffer entries (one 32-bit accumulator per output channel,
    #: double buffered to support the output-stationary wave dataflow).
    psum_entries_per_channel: int = 2

    @property
    def config(self) -> CIMMacroConfig:
        """Geometry of the underlying macro."""
        return self.macro.config

    @property
    def macs_per_cycle(self) -> int:
        """Net MAC throughput of the core."""
        return self.config.macs_per_cycle

    @property
    def weight_capacity_bytes(self) -> int:
        """Weight storage of the core in bytes."""
        return self.config.weight_capacity_bits // 8

    @property
    def psum_buffer_bytes(self) -> int:
        """Partial-sum buffer capacity in bytes."""
        return self.config.output_channels * self.psum_entries_per_channel * 4

    @property
    def area_mm2(self) -> float:
        """Silicon area of one core (macro + periphery), from calibration."""
        return self.area_model.cim_core_area()

    @property
    def leakage_power_w(self) -> float:
        """Static power of one core."""
        return self.energy_model.cim_core_leakage_power()

    def mac_energy(self, macs: int, precision: Precision = Precision.INT8) -> float:
        """Dynamic energy (J) of performing ``macs`` MAC operations."""
        if macs < 0:
            raise ValueError("macs must be non-negative")
        return macs * self.energy_model.cim_mac_energy(precision.bits)

    def weight_write_energy(self, num_bytes: int) -> float:
        """Dynamic energy (J) of writing ``num_bytes`` of weights into the macro."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.energy_model.cim_weight_write_energy(num_bytes)

    def leakage_energy(self, seconds: float) -> float:
        """Static energy (J) burned over ``seconds`` (busy or idle)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.leakage_power_w * seconds
