"""CIM-MXU: a systolic grid of CIM cores replacing the digital MXU.

The CIM-MXU (Fig. 4 of the paper) arranges ``grid_rows × grid_cols`` CIM
cores in a two-dimensional systolic array.  Rows of the grid cover the GEMM
reduction dimension (each core stores ``input_channels`` weight rows), columns
of the grid cover the output dimension (each core produces
``output_channels`` outputs).  Inputs propagate systolically along the grid
rows; weights propagate along the grid columns through the cores' dedicated
weight I/O ports, concurrently with computation; outputs are accumulated in
an output-stationary fashion wave by wave.

Compared with the digital systolic array the model captures the two effects
the paper attributes the CIM benefits to:

* inside a core, the input vector is broadcast to all output channels, so a
  GEMV does not pay the ``R + C − 2`` array-traversal skew of a MAC-grid
  systolic array — only the much smaller grid-level skew; and
* weight updates stream through the weight I/O concurrently with computation,
  so low-reuse operands (attention score/value matrices) do not stall the
  array; the visible cost per fold is ``max(compute, weight-write)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import Precision, ceil_div
from repro.cim.core import CIMCore
from repro.cim.macro import CIMMacro, CIMMacroConfig
from repro.hw.area import AreaModel
from repro.hw.energy import EnergyBudget, EnergyModel
from repro.systolic.systolic_array import MXUComputeResult
from repro.workloads.operators import MatMulOp


@dataclass(frozen=True)
class CIMCycleBreakdown:
    """Cycle breakdown of one (possibly batched) GEMM executed on a CIM-MXU."""

    total_cycles: int
    compute_cycles: int
    weight_write_cycles: int
    hidden_weight_write_cycles: int
    grid_fill_cycles: int
    k_folds: int
    n_folds: int
    instances: int
    packed_instances: int
    macs: int
    utilization: float


@dataclass(frozen=True)
class CIMMXUConfig:
    """Static configuration of one CIM-MXU.

    Attributes
    ----------
    grid_rows, grid_cols:
        Dimensions of the CIM-core grid.  The paper's default is 16×8; the
        design-space exploration (Table IV) also uses 8×8 and 16×16.
    core:
        Geometry of each CIM core (default 128×256).
    frequency_ghz:
        Clock frequency (matched to the baseline TPU for fair comparison).
    overlap_weight_update:
        Whether weight writes overlap computation (the paper's design point).
        Disabling it serialises compute and weight update for ablation.
    """

    grid_rows: int = 16
    grid_cols: int = 8
    core: CIMMacroConfig = field(default_factory=CIMMacroConfig)
    frequency_ghz: float = 1.05
    overlap_weight_update: bool = True

    def __post_init__(self) -> None:
        if self.grid_rows <= 0 or self.grid_cols <= 0:
            raise ValueError("CIM grid dimensions must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def core_count(self) -> int:
        """Number of CIM cores in the grid."""
        return self.grid_rows * self.grid_cols

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput of the whole CIM-MXU."""
        return self.core_count * self.core.macs_per_cycle

    @property
    def k_extent(self) -> int:
        """Reduction-dimension coverage of one weight load (grid rows × core rows)."""
        return self.grid_rows * self.core.input_channels

    @property
    def n_extent(self) -> int:
        """Output-dimension coverage of one weight load (grid cols × core cols)."""
        return self.grid_cols * self.core.output_channels

    @property
    def weight_capacity_bytes(self) -> int:
        """Total weight storage across the grid, in bytes."""
        return self.core_count * self.core.weight_capacity_bits // 8

    @property
    def peak_tops(self) -> float:
        """Peak INT8 TOPS of the CIM-MXU."""
        return 2.0 * self.macs_per_cycle * self.frequency_ghz * 1e9 / 1e12


@dataclass
class CIMMXU:
    """A CIM-based matrix multiply unit (drop-in replacement for DigitalMXU)."""

    config: CIMMXUConfig = field(default_factory=CIMMXUConfig)
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    area_model: AreaModel = field(default_factory=AreaModel)

    def __post_init__(self) -> None:
        macro = CIMMacro(self.config.core)
        self._core = CIMCore(macro=macro, energy_model=self.energy_model,
                             area_model=self.area_model)

    @property
    def name(self) -> str:
        """Short descriptor used in reports."""
        return f"cim-{self.config.grid_rows}x{self.config.grid_cols}"

    @property
    def core(self) -> CIMCore:
        """The CIM core replicated across the grid."""
        return self._core

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput of this MXU."""
        return self.config.macs_per_cycle

    @staticmethod
    def supported_operator_types() -> tuple[type, ...]:
        """Capability declaration consumed by the execution-unit registry."""
        return (MatMulOp,)

    @property
    def area_mm2(self) -> float:
        """Silicon area of this MXU."""
        return self.area_model.cim_mxu_area(self.config.grid_rows, self.config.grid_cols)

    @property
    def leakage_power_w(self) -> float:
        """Static power of this MXU (per-core leakage × core count)."""
        return self._core.leakage_power_w * self.config.core_count

    # ------------------------------------------------------------------ timing
    def _fold_geometry(self, k: int, n: int) -> tuple[int, int]:
        return ceil_div(k, self.config.k_extent), ceil_div(n, self.config.n_extent)

    def instance_packing(self, k: int, n: int) -> int:
        """How many independent GEMM instances fit on the grid concurrently.

        When an instance's reduction dimension fits in a subset of the grid
        rows and its output dimension in a subset of the grid columns (the
        attention matmuls of both LLM decode and DiT), the remaining cores can
        host further instances: every grid row has its own systolic input port
        and every core its own weight I/O, so instances mapped to disjoint
        cores proceed in parallel.  This is the "better DiT mapping" effect
        the paper attributes part of the CIM attention speedup to.
        """
        cfg = self.config
        rows_needed = ceil_div(k, cfg.core.input_channels)
        cols_needed = ceil_div(n, cfg.core.output_channels)
        if rows_needed > cfg.grid_rows or cols_needed > cfg.grid_cols:
            return 1
        return (cfg.grid_rows // rows_needed) * (cfg.grid_cols // cols_needed)

    def gemm_cycles(self, m: int, k: int, n: int, precision: Precision = Precision.INT8,
                    weights_resident: bool = False, instances: int = 1) -> CIMCycleBreakdown:
        """Cycle count for ``instances`` independent ``[M,K]×[K,N]`` GEMMs.

        ``weights_resident`` marks folds whose weights are already stored in
        the CIM macros (e.g. when a higher-level mapping re-visits the same
        weight tile for successive M tiles), in which case no weight-write
        cycles are charged.  Small instances are packed onto disjoint cores of
        the grid (see :meth:`instance_packing`).
        """
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError(f"GEMM dimensions must be positive, got M={m}, K={k}, N={n}")
        if instances <= 0:
            raise ValueError("instances must be positive")
        cfg = self.config
        core_cfg = cfg.core
        packing = min(instances, self.instance_packing(k, n)) if instances > 1 else 1
        groups = ceil_div(instances, packing)

        # When several instances are packed onto the grid, each instance only
        # occupies the cores it needs (its "region"); a single instance is
        # spread over the whole grid to minimise its latency.
        if packing > 1:
            region_rows = ceil_div(k, core_cfg.input_channels)
            region_cols = ceil_div(n, core_cfg.output_channels)
        else:
            region_rows = cfg.grid_rows
            region_cols = cfg.grid_cols
        k_region_extent = region_rows * core_cfg.input_channels
        n_region_extent = region_cols * core_cfg.output_channels
        k_folds = ceil_div(k, k_region_extent)
        n_folds = ceil_div(n, n_region_extent)

        total_compute = 0
        total_weight_write = 0
        hidden_weight_write = 0
        visible = 0
        previous_compute = 0

        for n_fold in range(n_folds):
            n_extent = min(n - n_fold * n_region_extent, n_region_extent)
            cols_per_core = min(core_cfg.output_channels, ceil_div(n_extent, region_cols))
            for k_fold in range(k_folds):
                k_extent = min(k - k_fold * k_region_extent, k_region_extent)
                rows_per_core = min(core_cfg.input_channels, ceil_div(k_extent, region_rows))
                fold_compute = self._core.macro.compute_cycles(
                    m, cols_per_core, precision, used_input_channels=rows_per_core)
                fold_write = 0
                if not weights_resident:
                    fold_write = self._core.macro.weight_write_cycles(
                        rows_per_core, cols_per_core, precision)
                total_compute += fold_compute
                total_weight_write += fold_write
                if cfg.overlap_weight_update:
                    # The fold's weight write is hidden behind the previous
                    # fold's computation; any excess becomes visible.
                    hidden = min(fold_write, previous_compute)
                    hidden_weight_write += hidden
                    visible += fold_compute + (fold_write - hidden)
                else:
                    visible += fold_compute + fold_write
                previous_compute = fold_compute

        # Systolic propagation across the grid: inputs skew across grid
        # columns, outputs/partial sums across grid rows, paid once per GEMM.
        grid_fill = cfg.grid_rows + cfg.grid_cols - 2
        total = groups * visible + grid_fill

        if packing > 1:
            # Packing instances onto disjoint core regions competes with
            # spreading each instance over the whole grid and running the
            # batch sequentially; the mapping engine takes whichever wins
            # (spreading writes a smaller weight slice per core, which can be
            # cheaper when the weight write dominates).
            single = self.gemm_cycles(m, k, n, precision, weights_resident, instances=1)
            sequential_total = (single.total_cycles - single.grid_fill_cycles) * instances + grid_fill
            if sequential_total < total:
                return CIMCycleBreakdown(
                    total_cycles=int(sequential_total),
                    compute_cycles=int(single.compute_cycles * instances),
                    weight_write_cycles=int(single.weight_write_cycles * instances),
                    hidden_weight_write_cycles=int(single.hidden_weight_write_cycles * instances),
                    grid_fill_cycles=int(grid_fill),
                    k_folds=single.k_folds,
                    n_folds=single.n_folds,
                    instances=instances,
                    packed_instances=1,
                    macs=instances * m * k * n,
                    utilization=min(1.0, instances * m * k * n
                                    / (sequential_total * cfg.macs_per_cycle)),
                )

        macs = instances * m * k * n
        utilization = macs / (total * cfg.macs_per_cycle) if total > 0 else 0.0
        return CIMCycleBreakdown(
            total_cycles=int(total),
            compute_cycles=int(groups * total_compute),
            weight_write_cycles=int(groups * total_weight_write),
            hidden_weight_write_cycles=int(groups * hidden_weight_write),
            grid_fill_cycles=int(grid_fill),
            k_folds=k_folds,
            n_folds=n_folds,
            instances=instances,
            packed_instances=packing,
            macs=macs,
            utilization=min(1.0, utilization),
        )

    # ------------------------------------------------------------------ energy
    def gemm(self, m: int, k: int, n: int, precision: Precision = Precision.INT8,
             stationary_weights: bool = True, weights_resident: bool = False,
             instances: int = 1) -> MXUComputeResult:
        """Execute ``instances`` GEMM tiles and return cycles, energy and traffic.

        ``stationary_weights`` is accepted for interface parity with
        :class:`repro.systolic.systolic_array.DigitalMXU`; the CIM-MXU handles
        stationary and dynamic operands identically because weight updates
        always stream through the dedicated weight I/O.
        """
        del stationary_weights  # identical handling on the CIM-MXU
        breakdown = self.gemm_cycles(m, k, n, precision, weights_resident, instances)

        energy = EnergyBudget()
        energy.add_dynamic("mxu", self._core.mac_energy(breakdown.macs, precision))
        weight_bytes = 0 if weights_resident else instances * k * n * precision.bytes
        if weight_bytes:
            energy.add_dynamic("mxu", self._core.weight_write_energy(weight_bytes))
        seconds = breakdown.total_cycles / (self.config.frequency_ghz * 1e9)
        energy.add_leakage("mxu", self.leakage_power_w * seconds)

        input_bytes = instances * m * k * precision.bytes
        output_bytes = instances * m * n * precision.accumulator_bytes
        return MXUComputeResult(
            cycles=breakdown.total_cycles,
            macs=breakdown.macs,
            utilization=breakdown.utilization,
            energy=energy,
            input_bytes=input_bytes,
            weight_bytes=instances * k * n * precision.bytes,
            output_bytes=output_bytes,
            breakdown=None,
        )

    def idle_energy(self, cycles: float) -> EnergyBudget:
        """Leakage energy burned while the CIM-MXU sits idle for ``cycles``."""
        if cycles < 0:
            raise ValueError("idle cycles must be non-negative")
        budget = EnergyBudget()
        seconds = cycles / (self.config.frequency_ghz * 1e9)
        budget.add_leakage("mxu", self.leakage_power_w * seconds)
        return budget

    def energy_efficiency_tops_per_watt(self, precision: Precision = Precision.INT8) -> float:
        """Sustained TOPS/W at full utilisation (reproduces Table II)."""
        macs_per_second = self.macs_per_cycle * self.config.frequency_ghz * 1e9
        dynamic_power = self.energy_model.cim_mac_energy(precision.bits) * macs_per_second
        total_power = dynamic_power + self.leakage_power_w
        return (2.0 * macs_per_second / 1e12) / total_power

    def area_efficiency_tops_per_mm2(self) -> float:
        """Peak TOPS per mm² (reproduces Table II)."""
        return self.config.peak_tops / self.area_mm2
