"""Digital compute-in-memory (CIM) macro, core and CIM-MXU models.

This package implements the paper's primary hardware contribution: a matrix
multiply unit built from a two-dimensional systolic grid of digital SRAM CIM
cores (Fig. 4 of the paper).  The hierarchy is:

* :class:`repro.cim.macro.CIMMacro` — one digital SRAM CIM macro: banks of
  bitcell sub-arrays with local readout/compute circuits, an adder tree per
  bank, bit-serial input broadcast and a dedicated weight I/O port that allows
  weight updates to proceed concurrently with computation.
* :class:`repro.cim.core.CIMCore` — a macro plus shift-accumulator, partial-sum
  buffer and input drivers; the unit replicated across the CIM-MXU grid.
* :class:`repro.cim.mxu.CIMMXU` — the grid of CIM cores with systolic input
  propagation (row dimension) and weight propagation (column dimension),
  exposing the same GEMM interface as the baseline digital MXU.
"""

from repro.cim.macro import CIMMacroConfig, CIMMacro
from repro.cim.core import CIMCore
from repro.cim.mxu import CIMMXUConfig, CIMMXU, CIMCycleBreakdown
from repro.cim.precision import PrecisionPipeline
from repro.cim.energy import CIMEnergyReport, macro_energy_report

__all__ = [
    "CIMMacroConfig",
    "CIMMacro",
    "CIMCore",
    "CIMMXUConfig",
    "CIMMXU",
    "CIMCycleBreakdown",
    "PrecisionPipeline",
    "CIMEnergyReport",
    "macro_energy_report",
]
