"""Digital SRAM CIM macro model.

The macro follows the organisation in Fig. 4 of the paper: the bitcell array
is split into banks, each bank into sub-arrays with a local readout-and-compute
circuit per column pair, and an adder tree reduces the per-sub-array products
into one partial sum per output channel.  Input activations are broadcast to
all output channels in a bit-serial manner; a shift-accumulator outside the
array recombines the bit-plane partial sums.  A dedicated weight I/O port
allows SRAM writes (weight updates) to be interleaved with computation, the
property the CIM-MXU relies on to sustain systolic weight propagation.

The model is analytical: it exposes cycle counts for computing a batch of
input vectors against the stored weight block and for writing a new weight
block, plus storage/geometry book-keeping used by the grid-level model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision, ceil_div


@dataclass(frozen=True)
class CIMMacroConfig:
    """Geometry and throughput parameters of one digital CIM macro.

    The defaults describe the paper's 128×256 CIM core: 128 input channels,
    256 output channels, 128 effective MAC operations per cycle (the net
    throughput after bit-serial input processing), a 32-bit systolic input
    port and a 256-bit weight I/O port that supports writes concurrent with
    computation.

    Attributes
    ----------
    input_channels:
        Number of weight rows stored in the macro (reduction dimension).
    output_channels:
        Number of weight columns / output channels.
    macs_per_cycle:
        Net MAC throughput of the macro, already accounting for bit-serial
        input processing at the reference precision (INT8).
    banks:
        Number of banks (each producing a group of output channels).
    subarrays_per_bank:
        Bitcell sub-arrays per bank, each handling one input-channel group.
    input_port_bits:
        Width of the systolic input port (activations enter 32 b per cycle).
    weight_io_bits:
        Width of the dedicated weight read/write port.
    concurrent_weight_update:
        Whether weight writes can overlap computation (the paper's macro,
        following [24], supports this; setting it to ``False`` is used for
        ablation).
    weight_bits_per_cell:
        Stored weight bits per bitcell column group (8 for INT8 weights or
        BF16 mantissas).
    """

    input_channels: int = 128
    output_channels: int = 256
    macs_per_cycle: int = 128
    banks: int = 32
    subarrays_per_bank: int = 32
    input_port_bits: int = 32
    weight_io_bits: int = 256
    concurrent_weight_update: bool = True
    weight_bits_per_cell: int = 8

    def __post_init__(self) -> None:
        positive = (
            "input_channels", "output_channels", "macs_per_cycle", "banks",
            "subarrays_per_bank", "input_port_bits", "weight_io_bits", "weight_bits_per_cell",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.macs_per_cycle > self.input_channels * self.output_channels:
            raise ValueError("macs_per_cycle cannot exceed the stored weight count")

    @property
    def weight_capacity(self) -> int:
        """Number of weight elements stored in the macro."""
        return self.input_channels * self.output_channels

    @property
    def weight_capacity_bits(self) -> int:
        """Storage capacity of the macro in bits."""
        return self.weight_capacity * self.weight_bits_per_cell

    @property
    def columns_per_bank(self) -> int:
        """Output channels handled by one bank."""
        return ceil_div(self.output_channels, self.banks)


@dataclass
class CIMMacro:
    """Analytical behaviour model of one digital CIM macro."""

    config: CIMMacroConfig

    def __init__(self, config: CIMMacroConfig | None = None) -> None:
        self.config = config if config is not None else CIMMacroConfig()

    def cycles_per_input_vector(self, used_output_channels: int | None = None,
                                precision: Precision = Precision.INT8,
                                used_input_channels: int | None = None) -> int:
        """Cycles to multiply one input vector against the stored weights.

        One input vector touches every stored weight cell that is in use:
        ``used_input_channels × used_output_channels`` MAC operations at the
        macro's net throughput.  Unused output channels and unused sub-arrays
        (input-channel groups) are clock-gated and skipped, so a partially
        filled macro finishes proportionally faster — the behaviour the
        chip-level mapping relies on when an operand does not align with the
        128×256 macro geometry.
        """
        cfg = self.config
        if used_output_channels is None:
            used_output_channels = cfg.output_channels
        if used_input_channels is None:
            used_input_channels = cfg.input_channels
        if not 0 < used_output_channels <= cfg.output_channels:
            raise ValueError(
                f"used_output_channels must be in (0, {cfg.output_channels}], got {used_output_channels}")
        if not 0 < used_input_channels <= cfg.input_channels:
            raise ValueError(
                f"used_input_channels must be in (0, {cfg.input_channels}], got {used_input_channels}")
        macs = used_input_channels * used_output_channels
        cycles = ceil_div(macs, cfg.macs_per_cycle)
        if precision is Precision.BF16:
            # BF16 keeps the same MACs/cycle in the paper's design; the
            # pre/post-processing pipeline adds a fixed alignment latency that
            # is amortised over the vector and modelled as one extra cycle.
            cycles += 1
        return cycles

    def compute_cycles(self, num_input_vectors: int, used_output_channels: int | None = None,
                       precision: Precision = Precision.INT8,
                       used_input_channels: int | None = None) -> int:
        """Cycles to stream ``num_input_vectors`` through the macro."""
        if num_input_vectors < 0:
            raise ValueError("num_input_vectors must be non-negative")
        if num_input_vectors == 0:
            return 0
        return num_input_vectors * self.cycles_per_input_vector(
            used_output_channels, precision, used_input_channels)

    def weight_write_cycles(self, rows: int | None = None, cols: int | None = None,
                            precision: Precision = Precision.INT8) -> int:
        """Cycles to write an ``rows × cols`` weight block through the weight I/O."""
        cfg = self.config
        rows = cfg.input_channels if rows is None else rows
        cols = cfg.output_channels if cols is None else cols
        if not 0 <= rows <= cfg.input_channels:
            raise ValueError(f"rows must be in [0, {cfg.input_channels}], got {rows}")
        if not 0 <= cols <= cfg.output_channels:
            raise ValueError(f"cols must be in [0, {cfg.output_channels}], got {cols}")
        bits = rows * cols * precision.mantissa_bits
        return ceil_div(bits, cfg.weight_io_bits) if bits > 0 else 0

    def input_delivery_cycles(self, num_input_vectors: int,
                              precision: Precision = Precision.INT8) -> int:
        """Cycles needed to deliver the input vectors through the 32 b port."""
        if num_input_vectors < 0:
            raise ValueError("num_input_vectors must be non-negative")
        bits = num_input_vectors * self.config.input_channels * precision.bits
        return ceil_div(bits, self.config.input_port_bits) if bits > 0 else 0

    def macs_for(self, num_input_vectors: int, used_rows: int | None = None,
                 used_cols: int | None = None) -> int:
        """Useful MACs performed for the given workload slice."""
        cfg = self.config
        used_rows = cfg.input_channels if used_rows is None else used_rows
        used_cols = cfg.output_channels if used_cols is None else used_cols
        return num_input_vectors * used_rows * used_cols
