"""Command-line interface for the CIM-TPU simulator.

Four subcommands cover the everyday uses of the library without writing any
Python:

``repro-sim compare``
    Fig. 6-style comparison of the baseline TPUv4i and a CIM design on one
    LLM layer (prefill + decode) and one DiT block.
``repro-sim explore``
    The Table IV / Fig. 7 design-space sweep.
``repro-sim multi-device``
    Fig. 8-style multi-TPU throughput scaling.
``repro-sim models``
    List the registered model configurations and their memory footprints.

Run ``python -m repro.cli --help`` (or ``repro-sim --help`` once installed)
for the full option set.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.breakdown import overall_comparison
from repro.analysis.capacity import dit_footprint, llm_footprint, plan_capacity
from repro.analysis.report import format_table
from repro.core.designs import PREDEFINED_DESIGNS, tpuv4i_baseline
from repro.core.explorer import ArchitectureExplorer
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.parallel.multi_device import MultiTPUSystem
from repro.workloads.dit import DIT_XL_2, DiTConfig
from repro.workloads.llm import GPT3_30B, LLMConfig
from repro.workloads.registry import MODEL_REGISTRY, get_model


def _design_config(name: str):
    try:
        return PREDEFINED_DESIGNS[name]
    except KeyError:
        known = ", ".join(sorted(PREDEFINED_DESIGNS))
        raise SystemExit(f"unknown design '{name}'; choose one of: {known}")


def _llm_settings(args: argparse.Namespace) -> LLMInferenceSettings:
    return LLMInferenceSettings(batch=args.batch, input_tokens=args.input_tokens,
                                output_tokens=args.output_tokens, decode_kv_samples=2)


def _dit_settings(args: argparse.Namespace) -> DiTInferenceSettings:
    return DiTInferenceSettings(batch=args.batch, image_resolution=args.resolution,
                                sampling_steps=args.steps)


# ---------------------------------------------------------------- subcommands
def cmd_compare(args: argparse.Namespace) -> int:
    """Compare the baseline against a CIM design on Fig. 6 workloads."""
    baseline = InferenceSimulator(tpuv4i_baseline())
    candidate = InferenceSimulator(_design_config(args.design))
    llm = get_model(args.llm)
    if not isinstance(llm, LLMConfig):
        raise SystemExit(f"'{args.llm}' is not an LLM")
    llm_settings = _llm_settings(args)
    dit_settings = _dit_settings(args)

    panels = {
        f"{llm.name} prefill layer": (
            baseline.simulate_llm_prefill_layer(llm, llm_settings),
            candidate.simulate_llm_prefill_layer(llm, llm_settings)),
        f"{llm.name} decode layer": (
            baseline.simulate_llm_decode_layer(llm, llm_settings),
            candidate.simulate_llm_decode_layer(llm, llm_settings)),
        "dit-xl-2 block": (
            baseline.simulate_dit_block(DIT_XL_2, dit_settings),
            candidate.simulate_dit_block(DIT_XL_2, dit_settings)),
    }
    rows = []
    for name, (base, cand) in panels.items():
        headline = overall_comparison(base, cand)
        rows.append([name,
                     f"{headline['baseline_latency_s'] * 1e3:.2f} ms",
                     f"{headline['candidate_latency_s'] * 1e3:.2f} ms",
                     f"{headline['latency_change_percent']:+.1f}%",
                     f"{headline['mxu_energy_reduction_factor']:.1f}x"])
    print(format_table(["workload", "baseline", args.design, "latency change", "MXU energy saving"],
                       rows, title=f"Baseline TPUv4i vs. {args.design}"))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Run the Table IV / Fig. 7 design-space exploration."""
    explorer = ArchitectureExplorer(llm_settings=_llm_settings(args),
                                    dit_settings=_dit_settings(args))
    rows = explorer.explore()
    table_rows = [[row.design, row.workload, f"{row.peak_tops:.0f}",
                   f"{row.latency_seconds * 1e3:.1f} ms",
                   f"{row.latency_change_percent:+.1f}%",
                   f"{row.energy_saving_vs_baseline:.1f}x"] for row in rows]
    print(format_table(["design", "workload", "peak TOPS", "latency", "vs baseline",
                        "MXU energy saving"],
                       table_rows, title="CIM-MXU design-space exploration"))
    return 0


def cmd_multi_device(args: argparse.Namespace) -> int:
    """Simulate multi-TPU serving throughput."""
    config = _design_config(args.design)
    llm = get_model(args.llm)
    if not isinstance(llm, LLMConfig):
        raise SystemExit(f"'{args.llm}' is not an LLM")
    settings = _llm_settings(args)
    rows = []
    for devices in args.devices:
        system = MultiTPUSystem(config, devices, parallelism=args.parallelism)
        result = system.simulate_llm(llm, settings)
        rows.append([devices, f"{result.throughput:.1f} tokens/s",
                     f"{result.communication_seconds * 1e3:.1f} ms",
                     f"{result.energy_per_item * 1e3:.2f} mJ/token"])
    print(format_table(["TPUs", "throughput", "ICI time per group", "MXU energy"],
                       rows, title=f"{llm.name} on {args.design} ({args.parallelism} parallel)"))
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """List registered models with their footprints and capacity plans."""
    tpu = tpuv4i_baseline()
    rows = []
    for name in sorted(MODEL_REGISTRY):
        model = MODEL_REGISTRY[name]
        if isinstance(model, LLMConfig):
            footprint = llm_footprint(model, batch=args.batch,
                                      context_tokens=args.input_tokens + args.output_tokens)
            kind = "LLM"
        elif isinstance(model, DiTConfig):
            footprint = dit_footprint(model, batch=args.batch, image_resolution=args.resolution)
            kind = "DiT"
        else:  # pragma: no cover - registry only holds the two kinds
            continue
        plan = plan_capacity(footprint, tpu)
        rows.append([name, kind, f"{footprint.total_gib:.1f} GiB",
                     plan.min_devices, plan.suggested_parallelism])
    print(format_table(["model", "kind", "footprint", "min TPUs", "suggested parallelism"],
                       rows, title="Registered models (batch "
                                   f"{args.batch}, {args.input_tokens}+{args.output_tokens} tokens)"))
    return 0


# -------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(prog="repro-sim",
                                     description="CIM-TPU architecture simulator")
    parser.add_argument("--batch", type=int, default=8, help="batch size (default 8)")
    parser.add_argument("--input-tokens", type=int, default=1024, dest="input_tokens",
                        help="prompt length for LLM workloads")
    parser.add_argument("--output-tokens", type=int, default=512, dest="output_tokens",
                        help="generated tokens for LLM workloads")
    parser.add_argument("--resolution", type=int, default=512, help="DiT image resolution")
    parser.add_argument("--steps", type=int, default=50, help="DiT sampling steps")
    parser.add_argument("--llm", default=GPT3_30B.name, help="LLM model name")

    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="baseline vs. CIM design on Fig. 6 workloads")
    compare.add_argument("--design", default="cim-default",
                         help="one of: " + ", ".join(sorted(PREDEFINED_DESIGNS)))
    compare.set_defaults(func=cmd_compare)

    explore = subparsers.add_parser("explore", help="Table IV / Fig. 7 design-space sweep")
    explore.set_defaults(func=cmd_explore)

    multi = subparsers.add_parser("multi-device", help="Fig. 8 multi-TPU throughput")
    multi.add_argument("--design", default="design-a")
    multi.add_argument("--devices", type=int, nargs="+", default=[1, 2, 4])
    multi.add_argument("--parallelism", choices=("pipeline", "tensor"), default="pipeline")
    multi.set_defaults(func=cmd_multi_device)

    models = subparsers.add_parser("models", help="list models and capacity plans")
    models.set_defaults(func=cmd_models)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
