"""Command-line interface for the CIM-TPU simulator.

Five subcommands cover the everyday uses of the library without writing any
Python:

``repro-sim compare``
    Fig. 6-style comparison of the baseline TPUv4i and a CIM design on one
    LLM layer (prefill + decode) and one DiT block.
``repro-sim explore``
    The Table IV / Fig. 7 design-space sweep (a thin client of the sweep
    engine; honours the global ``--llm`` model selection).
``repro-sim multi-device``
    Fig. 8-style multi-TPU throughput scaling.
``repro-sim sweep``
    Free-form scenario sweeps over the full grid of (design × model ×
    scenario × precision × batch × device count) points, powered by the
    memoised :class:`~repro.sweep.engine.SweepEngine`.  Supports
    ``--scenarios`` to pick registered scenarios (default: each model's
    own), ``--workers`` for multiprocessing fan-out and ``--json`` /
    ``--csv`` structured export; by default it widens the paper's Table IV
    grid to every registered model (GPT-3-30B/175B, Llama-2-7B/13B,
    Mixtral-8x7B, DiT-XL/2).
``repro-sim serve``
    Discrete-event serving simulation: replay a seeded request trace
    (Poisson/bursty/diurnal arrivals over the scenario's request mix, or a
    JSONL file) through the continuous-batching scheduler and report
    TTFT/TPOT/e2e percentiles, SLO goodput, utilisation and energy per
    token.  ``--replicas N`` lifts the run to a fleet: the trace is routed
    across N replicas by a registered ``--router`` policy under a
    registered ``--autoscaler`` policy, and the report adds per-replica
    breakdowns, the replica-count timeline and cost per million tokens.
    ``--check-determinism`` runs the simulation twice and fails unless the
    reports agree bit-for-bit (the CI reproducibility gate).
``repro-sim fleet``
    Fleet sizing: the smallest replica count whose SLO attainment reaches
    a target at a given request rate, with per-fleet goodput and cost.
``repro-sim optimize``
    Pareto co-design search over the joint (design × precision ×
    scheduler × router × autoscaler × replica count) space under declared
    objectives (cost per million tokens, p99 TTFT/TPOT, energy per token,
    chip-hours) and constraints (``slo>=0.95``, ``fit``, objective
    bounds).  ``--strategy successive-halving`` prunes dominated
    candidates on cheap short traces before re-scoring survivors on the
    full trace; ``--store PATH`` persists every priced point so repeated
    searches perform zero new simulations.
``repro-sim gateway``
    Simulation as a service: serve every engine over HTTP.  ``POST`` a
    JSON request to ``/v1/simulate``, ``/v1/fleet``, ``/v1/sweep``,
    ``/v1/optimize`` or ``/v1/autoconfig-preview``, poll
    ``GET /v1/jobs/<id>`` and fetch ``GET /v1/jobs/<id>/result``.  All
    jobs share one persistent ``--store``, so any request any client has
    run before is served with zero new simulations.
``repro-sim report``
    Text dashboard rendered from a ``--trace-out`` Chrome trace or
    ``--metrics-out`` JSONL file: gauge sparklines (queue depth, batch
    occupancy, KV utilisation, SLO attainment over time), the
    autoscaler/fault action log, span totals and counters.
``repro-sim lint``
    The repro-lint contract checker: AST rules that machine-enforce the
    repo's determinism, fingerprint-bump, frozen-dataclass, registry-sync,
    error-contract and telemetry-discipline invariants, with structured
    ``file:line`` findings and ``--json`` export.  ``--diff-base REF``
    additionally checks that any change to fingerprinted definitions
    relative to the merge base bumped the matching version string.
``repro-sim models``
    List the registered model configurations and their memory footprints.
``repro-sim scenarios``
    List the registered inference scenarios and their capabilities.

Global options (``--batch``, ``--input-tokens``, ``--output-tokens``,
``--resolution``, ``--steps``, ``--llm``, ``--seed``) set the workload
scenario; ``-v``/``-vv`` raises diagnostic logging on stderr (results
always stay on stdout); each subcommand adds its own switches.
``serve``, ``sweep`` and ``optimize`` accept ``--trace-out`` (Chrome
trace-event JSON for Perfetto) and ``--metrics-out`` (time-series JSONL);
serving traces are stamped in simulated time, search traces in wall time.  Run
``python -m repro.cli --help`` (or ``repro-sim --help`` once installed) for
the full option set.

``serve``, ``fleet``, ``sweep`` and ``optimize`` are thin clients of the
unified :mod:`repro.api` facade: each builds a frozen request from its
flags, runs it through the same handler the HTTP gateway dispatches to,
and prints from the response envelope — so the CLI, the gateway and
direct Python calls produce byte-identical results for the same spec.
Their shared ``--store PATH`` flag points every surface at the same
persistent result cache.

**Determinism guarantee:** every subcommand is a pure function of its flags.
The simulator itself is analytical (RNG-free); the only randomness anywhere
is the serving-trace generator, which draws from an explicit
``random.Random`` seeded by the global ``--seed`` flag — so two invocations
with identical flags produce bit-for-bit identical output, tables and
exports included.
"""

from __future__ import annotations

import argparse
import json
import logging
import pathlib
import sys
from collections.abc import Sequence

from repro import api as repro_api
from repro.analysis.breakdown import overall_comparison
from repro.log import configure_logging
from repro.obs import (
    Telemetry,
    load_trace_file,
    render_report,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.analysis.capacity import dit_footprint, llm_footprint, plan_capacity
from repro.analysis.report import format_table
from repro.common import Precision
from repro.core.designs import PREDEFINED_DESIGNS, tpuv4i_baseline
from repro.core.explorer import ArchitectureExplorer
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.optimize import (
    OBJECTIVE_REGISTRY,
    SEARCH_REGISTRY,
    get_objective,
)
from repro.optimize.pareto import frontier_fieldnames
from repro.serving.autoscaler import AUTOSCALER_REGISTRY
from repro.serving.cluster import ClusterSimulator, ReplicaSummary
from repro.serving.faults import FAULT_REGISTRY, parse_fault
from repro.serving.metrics import SLO, RequestMetrics
from repro.serving.router import ROUTER_REGISTRY
from repro.serving.scheduler import SCHEDULER_REGISTRY
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import (
    OVERLAY_REGISTRY,
    TRACE_REGISTRY,
    apply_overlay,
    load_trace_jsonl,
    parse_overlay,
)
from repro.sweep.cache import CachingInferenceSimulator
from repro.sweep.engine import SweepEngine
from repro.sweep.export import fieldnames_of, write_csv, write_json
from repro.sweep.grid import SweepPoint
from repro.workloads.dit import DIT_XL_2, DiTConfig
from repro.workloads.llm import GPT3_30B, LLMConfig
from repro.workloads.moe import MoEConfig
from repro.workloads.registry import (
    MODEL_REGISTRY,
    SCENARIO_REGISTRY,
    get_model,
    get_scenario,
    scenario_for,
)
from repro.workloads.scenario import ScenarioKnobs

logger = logging.getLogger(__name__)


def _telemetry_from_args(args: argparse.Namespace) -> Telemetry | None:
    """An enabled telemetry sink when the run asked for exports, else None.

    ``None`` (not a disabled instance) keeps instrumented hot paths on
    their zero-overhead branch; interval validation errors surface as
    usage errors, not tracebacks.
    """
    if not (getattr(args, "trace_out", None) or getattr(args, "metrics_out", None)):
        return None
    try:
        return Telemetry(gauge_interval_s=getattr(args, "gauge_interval", 1.0))
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _export_telemetry(telemetry: Telemetry | None, args: argparse.Namespace,
                      *, time_domain: str) -> None:
    """Write the run's telemetry to the requested trace/metrics files."""
    if telemetry is None:
        return
    try:
        if getattr(args, "trace_out", None):
            path = write_chrome_trace(telemetry, args.trace_out,
                                      time_domain=time_domain)
            print(f"wrote Chrome trace to {path} "
                  "(open in Perfetto / chrome://tracing)")
        if getattr(args, "metrics_out", None):
            path = write_metrics_jsonl(telemetry, args.metrics_out,
                                       time_domain=time_domain)
            print(f"wrote metrics JSONL to {path}")
    except OSError as error:
        raise SystemExit(f"cannot write telemetry: {error}") from None


def _open_store(path: str | None, telemetry: Telemetry | None = None):
    """A validated persistent ResultStore, or ``None`` when no path given.

    The engines only append mid-run, so writability is probed up front: a
    bad ``--store`` path is a clean usage error now, not an engine error
    halfway through a search.
    """
    if not path:
        return None
    from repro.sweep.store import ResultStore

    try:
        store = ResultStore(path, telemetry=telemetry)
        with open(store.path, "ab"):
            pass
    except OSError as error:
        raise SystemExit(f"cannot use result store '{path}': {error}") from None
    return store


def _design_config(name: str):
    try:
        return PREDEFINED_DESIGNS[name]
    except KeyError:
        known = ", ".join(sorted(PREDEFINED_DESIGNS))
        raise SystemExit(f"unknown design '{name}'; choose one of: {known}") from None


def _llm_settings(args: argparse.Namespace) -> LLMInferenceSettings:
    return LLMInferenceSettings(batch=args.batch, input_tokens=args.input_tokens,
                                output_tokens=args.output_tokens, decode_kv_samples=2)


def _dit_settings(args: argparse.Namespace) -> DiTInferenceSettings:
    return DiTInferenceSettings(batch=args.batch, image_resolution=args.resolution,
                                sampling_steps=args.steps)


# ---------------------------------------------------------------- subcommands
def cmd_compare(args: argparse.Namespace) -> int:
    """Compare the baseline against a CIM design on Fig. 6 workloads."""
    baseline = InferenceSimulator(tpuv4i_baseline())
    candidate = InferenceSimulator(_design_config(args.design))
    llm = get_model(args.llm)
    if not isinstance(llm, LLMConfig):
        raise SystemExit(f"'{args.llm}' is not an LLM")
    llm_settings = _llm_settings(args)
    dit_settings = _dit_settings(args)

    panels = {
        f"{llm.name} prefill layer": (
            baseline.simulate_llm_prefill_layer(llm, llm_settings),
            candidate.simulate_llm_prefill_layer(llm, llm_settings)),
        f"{llm.name} decode layer": (
            baseline.simulate_llm_decode_layer(llm, llm_settings),
            candidate.simulate_llm_decode_layer(llm, llm_settings)),
        "dit-xl-2 block": (
            baseline.simulate_dit_block(DIT_XL_2, dit_settings),
            candidate.simulate_dit_block(DIT_XL_2, dit_settings)),
    }
    rows = []
    for name, (base, cand) in panels.items():
        headline = overall_comparison(base, cand)
        rows.append([name,
                     f"{headline['baseline_latency_s'] * 1e3:.2f} ms",
                     f"{headline['candidate_latency_s'] * 1e3:.2f} ms",
                     f"{headline['latency_change_percent']:+.1f}%",
                     f"{headline['mxu_energy_reduction_factor']:.1f}x"])
    print(format_table(["workload", "baseline", args.design, "latency change", "MXU energy saving"],
                       rows, title=f"Baseline TPUv4i vs. {args.design}"))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Run the Table IV / Fig. 7 design-space exploration."""
    llm = get_model(args.llm)
    if not isinstance(llm, LLMConfig):
        raise SystemExit(f"'{args.llm}' is not an LLM")
    explorer = ArchitectureExplorer(llm=llm,
                                    llm_settings=_llm_settings(args),
                                    dit_settings=_dit_settings(args),
                                    workers=args.workers)
    rows = explorer.explore()
    table_rows = [[row.design, row.workload, f"{row.peak_tops:.0f}",
                   f"{row.latency_seconds * 1e3:.1f} ms",
                   f"{row.latency_change_percent:+.1f}%",
                   f"{row.energy_saving_vs_baseline:.1f}x"] for row in rows]
    print(format_table(["design", "workload", "peak TOPS", "latency", "vs baseline",
                        "MXU energy saving"],
                       table_rows, title="CIM-MXU design-space exploration"))
    return 0


def cmd_multi_device(args: argparse.Namespace) -> int:
    """Simulate multi-TPU serving throughput (a sweep over the device axis)."""
    config = _design_config(args.design)
    llm = get_model(args.llm)
    if not isinstance(llm, LLMConfig):
        raise SystemExit(f"'{args.llm}' is not an LLM")
    settings = _llm_settings(args)
    engine = SweepEngine()
    points = [SweepPoint(design=args.design, config=config, model=llm, settings=settings,
                         devices=devices, parallelism=args.parallelism)
              for devices in args.devices]
    results = engine.sweep(points, workers=args.workers)
    rows = [[result.devices, f"{result.throughput:.1f} tokens/s",
             f"{result.communication_seconds * 1e3:.1f} ms",
             f"{result.energy_per_item * 1e3:.2f} mJ/token"] for result in results]
    print(format_table(["TPUs", "throughput", "ICI time per group", "MXU energy"],
                       rows, title=f"{llm.name} on {args.design} ({args.parallelism} parallel)"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep the generalized scenario grid and optionally export the rows."""
    for name in args.designs:
        _design_config(name)  # fail fast with the CLI's exact wording
    models = list(args.models)
    resolved = {}
    for name in models:
        try:
            resolved[name] = get_model(name)
        except KeyError as error:
            raise SystemExit(error.args[0]) from None
    scenarios = list(args.scenarios) if args.scenarios else None
    if args.parallelism == "tensor" and max(args.devices) > 1:
        # Tensor parallelism needs a scenario with a sharding model; drop
        # incompatible models/scenarios up front instead of aborting
        # mid-sweep on the first incompatible point.
        if scenarios is not None:
            scenarios = [name for name in scenarios
                         if get_scenario(name).tensor_parallel is not None]

        max_devices = max(args.devices)

        def tensor_capable(name: str) -> bool:
            model = resolved[name]
            specs = ([scenario_for(model)] if scenarios is None
                     else [get_scenario(s) for s in scenarios if get_scenario(s).supports(model)])
            for spec in specs:
                if spec.tensor_parallel is None:
                    continue
                try:
                    spec.tensor_parallel.shard(model, max_devices)
                except ValueError:
                    continue
                return True
            return False

        dropped = [name for name in models if not tensor_capable(name)]
        models = [name for name in models if name not in dropped]
        dropped_dit = [name for name in dropped if isinstance(resolved[name], DiTConfig)]
        dropped_other = [name for name in dropped if name not in dropped_dit]
        # A dropped model the user explicitly asked for is part of the
        # command's answer, not progress narration — it stays on stdout.
        if dropped_dit:
            print("skipping DiT models under tensor parallelism "
                  f"({', '.join(dropped_dit)}); only LLM sharding is modelled")
        if dropped_other:
            print("skipping models without a tensor-parallel scenario "
                  f"({', '.join(dropped_other)})")
        if not models:
            raise SystemExit("tensor parallelism is only modelled for LLM workloads; "
                             "add an LLM model or use --parallelism pipeline")
    schedulers = tuple(args.schedulers or ())
    arrival_rates = tuple(args.arrival_rates or ())
    if schedulers:
        serving_capable = [name for name in models
                           if isinstance(resolved[name], LLMConfig)]
        skipped = [name for name in models if name not in serving_capable]
        if skipped:
            print("skipping non-LLM models "
                  f"({', '.join(skipped)}); serving is modelled for LLM workloads")
        models = serving_capable
        if not models:
            raise SystemExit("serving sweeps are only modelled for LLM workloads; "
                             "add an LLM model or drop --schedulers")
    telemetry = _telemetry_from_args(args)
    store = _open_store(args.store, telemetry)
    try:
        request = repro_api.SweepRequest(
            designs=tuple(args.designs), models=tuple(models),
            scenarios=tuple(scenarios) if scenarios is not None else None,
            precisions=tuple(args.precisions), batches=tuple(args.batches),
            device_counts=tuple(args.devices), parallelism=args.parallelism,
            input_tokens=args.input_tokens, output_tokens=args.output_tokens,
            resolution=args.resolution, steps=args.steps,
            schedulers=schedulers, arrival_rates=arrival_rates,
            trace=args.trace, trace_requests=args.trace_requests,
            routers=tuple(args.routers or ()),
            replica_counts=tuple(args.replica_counts or ()),
            autoscaler=args.autoscaler, seed=args.seed, workers=args.workers)
        response = repro_api.sweep(request, store=store, telemetry=telemetry)
    except repro_api.ApiRequestError as error:
        raise SystemExit(error.error.render()) from None
    results = response.row_objects()

    table_rows = [[result.design, result.workload, result.scenario, result.precision,
                   result.batch, result.devices, result.settings_summary,
                   f"{result.latency_seconds * 1e3:.1f} ms",
                   f"{result.throughput:.2f} {result.item_unit}s/s",
                   f"{result.mxu_energy_joules:.2f} J"] for result in results]
    print(format_table(["design", "model", "scenario", "precision", "batch", "TPUs",
                        "settings", "latency", "throughput", "MXU energy"],
                       table_rows, title="Scenario sweep"))
    stats = response.stats
    print(f"{len(results)} points evaluated with {stats['simulations']} graph simulations "
          f"({stats['graph_hits']} graph-cache hits, {stats['point_hits']} repeated points)")
    if store is not None:
        print(f"new simulations: {response.new_simulations}; "
              f"served from store: {response.store_hits}")
        print(f"persistent store: {store.path} ({len(store)} entries)")
    _export_telemetry(telemetry, args, time_domain="wall")
    try:
        if args.json:
            print(f"wrote JSON rows to {write_json(results, args.json)}")
        if args.csv:
            print(f"wrote CSV rows to {write_csv(results, args.csv)}")
    except OSError as error:
        raise SystemExit(f"cannot write results: {error}") from None
    return 0


def _percentile_table(report, title: str) -> str:
    """The TTFT/TPOT/e2e percentile grid shared by serve and cluster runs."""
    def row(name: str, summary) -> list[str]:
        return [name, f"{summary.mean_s * 1e3:.2f} ms", f"{summary.p50_s * 1e3:.2f} ms",
                f"{summary.p95_s * 1e3:.2f} ms", f"{summary.p99_s * 1e3:.2f} ms",
                f"{summary.max_s * 1e3:.2f} ms"]

    return format_table(
        ["metric", "mean", "p50", "p95", "p99", "max"],
        [row("TTFT", report.ttft), row("TPOT", report.tpot), row("e2e", report.e2e)],
        title=title)


def _print_serving_report(report, args: argparse.Namespace, model) -> None:
    """Human-readable output of a single-deployment serving run."""
    print(_percentile_table(
        report,
        title=f"{model.name} on {args.design} x{report.devices} "
              f"({report.scheduler}, {args.trace_file or args.trace} trace, "
              f"seed {args.seed})"))
    print(f"requests: {report.completed}/{report.num_requests} completed, "
          f"{report.rejected} rejected; makespan {report.makespan_s:.1f} s, "
          f"utilisation {report.utilisation * 100:.1f}%")
    print(f"throughput: {report.tokens_per_second:.1f} tokens/s "
          f"({report.requests_per_second:.2f} requests/s); "
          f"energy {report.energy_per_token_joules * 1e3:.3f} mJ/token")
    print(f"SLO ({report.slo.summary()}): {report.slo_attainment * 100:.1f}% attained, "
          f"goodput {report.goodput_tokens_per_second:.1f} tokens/s "
          f"({report.goodput_requests_per_second:.2f} requests/s)")
    print(f"step-cost cache: {report.cost_cache_hit_rate * 100:.2f}% hit rate "
          f"({report.cost_cache_misses} distinct (phase, batch, context-bucket) "
          f"states priced over {report.prefill_steps + report.decode_steps} steps)")


def _parse_chaos(args: argparse.Namespace):
    """Resolve the ``--faults`` / ``--overlay`` flags into spec objects."""
    try:
        faults = tuple(parse_fault(text)
                       for text in (getattr(args, "faults", None) or ()))
        overlay = (parse_overlay(args.overlay)
                   if getattr(args, "overlay", None) else None)
    except (KeyError, ValueError) as error:
        raise SystemExit(str(error).strip('"')) from None
    return faults, overlay


def _print_resilience(report) -> None:
    """Chaos outcome lines of a fleet run under injected faults."""
    resilience = report.resilience
    recovery = ("n/a (no crash)" if resilience.crash_count == 0
                else "never" if resilience.recovery_s == float("inf")
                else f"{resilience.recovery_s:.1f} s")
    print(f"faults: {resilience.fault_count} injected "
          f"({resilience.crash_count} crashes); "
          f"{resilience.disrupted_requests} requests disrupted, "
          f"{resilience.shed_requests} shed")
    print(f"resilience: availability {resilience.availability * 100:.2f}% "
          f"({resilience.downtime_replica_s:.1f} replica-s down), "
          f"recovery to SLO {recovery}, "
          f"SLO debt {resilience.slo_debt_s:.2f} s")
    print(f"goodput under failure: "
          f"{resilience.goodput_under_failure_tokens_per_second:.1f} tokens/s "
          f"({resilience.goodput_under_failure_requests_per_second:.2f} "
          "requests/s, undisrupted SLO-met requests only)")


def _print_cluster_report(report, args: argparse.Namespace, model) -> None:
    """Human-readable output of a fleet run."""
    print(_percentile_table(
        report,
        title=f"{model.name} on {args.design} x{report.fleet_size} replicas "
              f"({report.router} router, {report.autoscaler} autoscaler, "
              f"{args.trace_file or args.trace} trace, seed {args.seed})"))
    replica_rows = [[r.index, r.tpu_name, r.devices, r.requests_routed, r.completed,
                     r.rejected, f"{r.active_s:.1f} s",
                     f"{r.utilisation * 100:.1f}%",
                     f"{r.tokens_per_second:.1f} tokens/s"]
                    for r in report.replicas]
    print(format_table(
        ["replica", "design", "TPUs", "routed", "completed", "rejected",
         "active", "utilisation", "throughput"],
        replica_rows, title="Per-replica breakdown"))
    print(f"requests: {report.completed}/{report.num_requests} completed, "
          f"{report.rejected} rejected; makespan {report.makespan_s:.1f} s, "
          f"fleet utilisation {report.utilisation * 100:.1f}%")
    print(f"replicas: {report.fleet_size} configured, "
          f"peak {report.peak_active_replicas} / mean "
          f"{report.mean_active_replicas:.2f} active "
          f"({len(report.replica_timeline) - 1} scaling events); "
          f"total devices {report.total_devices}")
    print(f"throughput: {report.tokens_per_second:.1f} tokens/s "
          f"({report.requests_per_second:.2f} requests/s); "
          f"energy {report.energy_per_token_joules * 1e3:.3f} mJ/token")
    print(f"SLO ({report.slo.summary()}): {report.slo_attainment * 100:.1f}% attained, "
          f"goodput {report.goodput_tokens_per_second:.1f} tokens/s "
          f"({report.goodput_requests_per_second:.2f} requests/s)")
    print(f"cost: {report.chip_hours:.3f} chip-hours -> "
          f"${report.cost_per_million_tokens_dollars:.3f} per million tokens")
    print(f"step-cost cache: {report.cost_cache_hit_rate * 100:.2f}% hit rate "
          f"across the fleet ({report.cost_cache_misses} distinct states priced)")
    if getattr(args, "faults", None) or report.fault_events:
        _print_resilience(report)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the discrete-event serving simulator (one deployment or a fleet)."""
    config = _design_config(args.design)
    model = get_model(args.llm)
    if not isinstance(model, LLMConfig):
        raise SystemExit(f"'{args.llm}' is not an LLM; serving is modelled "
                         "for LLM workloads")
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as error:
        raise SystemExit(error.args[0]) from None
    if not scenario.supports(model):
        raise SystemExit(f"scenario '{args.scenario}' does not support "
                         f"model '{model.name}'")
    if args.replicas < 1:
        raise SystemExit("--replicas must be positive")
    faults, overlay = _parse_chaos(args)
    if args.replicas == 1 and not faults and (args.router != "round-robin"
                                              or args.autoscaler != "fixed"
                                              or args.min_replicas != 1):
        logger.warning("--router/--autoscaler/--min-replicas apply only with "
                       "--replicas > 1 (or --faults); running a single "
                       "deployment")
    precision = Precision(args.precision)
    settings = scenario.make_settings(ScenarioKnobs(
        batch=args.batch, precision=precision, input_tokens=args.input_tokens,
        output_tokens=args.output_tokens))
    slo = SLO(ttft_s=args.slo_ttft, tpot_s=args.slo_tpot)
    # Fault injection lives at the routing layer, so a faulted run goes
    # through the cluster simulator even at --replicas 1.
    fleet_run = args.replicas > 1 or bool(faults)
    if args.shards < 1:
        raise SystemExit("--shards must be positive")
    if args.fidelity == "fluid":
        if args.trace_file:
            raise SystemExit("--fidelity fluid prices the scenario's request "
                             "mix; it cannot replay --trace-file (run exact)")
        if faults or overlay is not None:
            raise SystemExit("--fidelity fluid cannot replay --faults or "
                             "--overlay; chaos runs need the exact event loop")
        if args.shards > 1:
            raise SystemExit("--shards splits the exact event loop; fluid "
                             "fidelity has no trace to shard")
    elif args.shards > 1 and fleet_run:
        raise SystemExit("--shards applies to single-deployment runs; the "
                         "cluster path already interleaves replicas")

    telemetry = _telemetry_from_args(args)
    if args.trace_file and args.store:
        raise SystemExit("--store caches generated-trace runs keyed by their "
                         "spec; --trace-file replays are not stored")
    store = _open_store(args.store, telemetry)

    def run_direct(tel: Telemetry | None = None):
        """JSONL replay: a local trace file is not part of the API schema."""
        trace = load_trace_jsonl(args.trace_file)
        if overlay is not None:
            trace = apply_overlay(trace, overlay)
        if fleet_run:
            shared = CachingInferenceSimulator(config)
            replicas = [ServingSimulator(
                model, config, scheduler=args.scheduler, precision=precision,
                max_batch=args.max_batch, bucket_tokens=args.bucket,
                devices=args.devices, simulator=shared)
                for _ in range(args.replicas)]
            cluster = ClusterSimulator(replicas, router=args.router,
                                       autoscaler=args.autoscaler,
                                       min_replicas=args.min_replicas,
                                       faults=faults)
            return cluster.run(trace, slo=slo, telemetry=tel)
        simulator = ServingSimulator(
            model, config, scheduler=args.scheduler, precision=precision,
            max_batch=args.max_batch, bucket_tokens=args.bucket,
            devices=args.devices)
        return simulator.run(trace, slo=slo, shards=args.shards,
                             telemetry=tel)

    def run_api(tel: Telemetry | None = None, api_store=None):
        request = repro_api.SimulateRequest(
            design=args.design, llm=args.llm, scenario=args.scenario,
            trace=args.trace, rate=args.rate, requests=args.requests,
            scheduler=args.scheduler, replicas=args.replicas,
            router=args.router, autoscaler=args.autoscaler,
            min_replicas=args.min_replicas, seed=args.seed,
            max_batch=args.max_batch, bucket=args.bucket,
            devices=args.devices, precision=args.precision, batch=args.batch,
            input_tokens=args.input_tokens, output_tokens=args.output_tokens,
            slo_ttft=args.slo_ttft, slo_tpot=args.slo_tpot,
            fidelity=args.fidelity, faults=tuple(args.faults or ()),
            overlay=args.overlay, shards=args.shards)
        return repro_api.simulate(request, store=api_store, telemetry=tel)

    def run_once(tel: Telemetry | None = None, api_store=None):
        """One full serve pipeline -> (report object, facade response|None)."""
        if args.trace_file:
            return run_direct(tel), None
        resp = run_api(tel, api_store)
        return resp.report_object(), resp

    profiler = None
    try:
        if args.profile:
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                report, response = run_once(telemetry, store)
            finally:
                profiler.disable()
        else:
            report, response = run_once(telemetry, store)
        if args.check_determinism:
            # The repeat run is deliberately untraced and storeless: the
            # check then also proves telemetry never perturbs the simulation
            # (on-vs-off bit-for-bit identity) and, when --store served the
            # first run, that a stored report is bit-for-bit the computed
            # one — not just run-to-run determinism.
            repeat, repeat_response = run_once()
            payload = (report.to_dict() if response is None
                       else dict(response.report))
            repeat_payload = (repeat.to_dict() if repeat_response is None
                              else dict(repeat_response.report))
            if repeat_payload != payload:
                raise SystemExit(
                    "determinism check FAILED: two identical serve invocations "
                    "produced different reports")
    except repro_api.ApiRequestError as error:
        raise SystemExit(error.error.render()) from None
    except (ValueError, OSError) as error:
        # Bad trace files and impossible deployments on the direct replay
        # path; API-path failures arrive structured as ApiRequestError.
        raise SystemExit(str(error)) from None

    if fleet_run:
        _print_cluster_report(report, args, model)
    else:
        _print_serving_report(report, args, model)
    if store is not None and response is not None:
        print(f"new simulations: {response.new_simulations}; "
              f"served from store: {response.store_hits}")
        print(f"persistent store: {store.path} ({len(store)} entries)")
    if args.check_determinism:
        digest = {metric: getattr(report, metric).p99_s
                  for metric in ("ttft", "tpot", "e2e")}
        what = ("traced and untraced runs" if telemetry is not None
                else "two runs")
        print(f"determinism check passed: {what} agree bit-for-bit")
        print(f"stable p99 digest: {json.dumps(digest)}")
    if profiler is not None:
        import pstats
        stats = pstats.Stats(profiler).sort_stats("cumulative")
        print("\nprofile: top functions by cumulative time")
        stats.print_stats(15)
        try:
            stats.dump_stats(args.profile_out)
        except OSError as error:
            raise SystemExit(f"cannot write profile: {error}") from None
        print(f"wrote profile data to {args.profile_out} "
              "(inspect with `python -m pstats`)")
    # Telemetry export sits outside the profiled region, so --profile and
    # --trace-out compose: the profile prices the run only, and the trace
    # is written exactly once however the run was wrapped.
    _export_telemetry(telemetry, args, time_domain="simulated")
    try:
        if args.json:
            path = pathlib.Path(args.json)
            # The API payload convention: fleet reports are row-free (the
            # shared-store shape), so the file matches what /v1/simulate
            # and repro.api.simulate return byte for byte.
            payload = (report.to_dict() if response is None
                       else dict(response.report))
            path.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
            print(f"wrote serving report to {path}")
        if args.csv:
            if fleet_run:
                path = write_csv(report.replicas, args.csv,
                                 fieldnames=fieldnames_of(ReplicaSummary))
                print(f"wrote per-replica metrics to {path}")
            else:
                path = write_csv(report.requests, args.csv,
                                 fieldnames=fieldnames_of(RequestMetrics))
                print(f"wrote per-request metrics to {path}")
    except OSError as error:
        raise SystemExit(f"cannot write results: {error}") from None
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Size a replica fleet for an SLO at a target request rate."""
    store = _open_store(args.store)
    try:
        request = repro_api.FleetRequest(
            rate=args.rate, design=args.design, llm=args.llm,
            scenario=args.scenario, attainment=args.attainment,
            max_replicas=args.max_replicas, requests=args.requests,
            trace=args.trace, scheduler=args.scheduler, router=args.router,
            max_batch=args.max_batch, precision=args.precision,
            batch=args.batch, input_tokens=args.input_tokens,
            output_tokens=args.output_tokens, slo_ttft=args.slo_ttft,
            slo_tpot=args.slo_tpot, seed=args.seed, fidelity=args.fidelity,
            faults=tuple(args.faults or ()), overlay=args.overlay)
        response = repro_api.fleet(request, store=store)
    except repro_api.ApiRequestError as error:
        raise SystemExit(error.error.render()) from None
    plan = response.plan_object()
    slo = SLO(ttft_s=args.slo_ttft, tpot_s=args.slo_tpot)

    rows = [[evaluation.replicas,
             f"{evaluation.slo_attainment * 100:.1f}%",
             f"{evaluation.p99_ttft_s * 1e3:.0f} ms",
             f"{evaluation.p99_tpot_s * 1e3:.1f} ms",
             f"{evaluation.goodput_requests_per_second:.2f} req/s",
             f"${evaluation.cost_per_million_tokens_dollars:.3f}"]
            for evaluation in plan.evaluations]
    print(format_table(
        ["replicas", "SLO attained", "p99 TTFT", "p99 TPOT", "goodput", "$/Mtok"],
        rows,
        title=f"Fleet sizing: {plan.model_name} on {args.design} at {args.rate:g} req/s "
              f"({slo.summary()}, target {args.attainment * 100:.0f}%)"))
    if plan.met:
        chosen = plan.evaluations[-1]
        print(f"verdict: {plan.replicas} replica(s) meet the SLO target at "
              f"{args.rate:g} req/s "
              f"(attainment {chosen.slo_attainment * 100:.1f}%, "
              f"${chosen.cost_per_million_tokens_dollars:.3f}/Mtok)")
    else:
        print(f"verdict: no fleet up to {args.max_replicas} replicas meets the "
              f"target; best attainment "
              f"{max(e.slo_attainment for e in plan.evaluations) * 100:.1f}%")
    if store is not None:
        print(f"new simulations: {response.new_simulations}; "
              f"served from store: {response.store_hits}")
        print(f"persistent store: {store.path} ({len(store)} entries)")
    try:
        if args.json:
            path = pathlib.Path(args.json)
            path.write_text(json.dumps(dict(response.plan), indent=2) + "\n",
                            encoding="utf-8")
            print(f"wrote fleet plan to {path}")
    except OSError as error:
        raise SystemExit(f"cannot write results: {error}") from None
    return 0 if plan.met else 1


def cmd_optimize(args: argparse.Namespace) -> int:
    """Search the co-design space for Pareto-optimal fleet configurations."""
    telemetry = _telemetry_from_args(args)
    store = _open_store(args.store, telemetry)
    try:
        request = repro_api.OptimizeRequest(
            llm=args.llm, designs=tuple(args.designs),
            precisions=tuple(args.precisions),
            schedulers=tuple(args.schedulers), routers=tuple(args.routers),
            autoscalers=tuple(args.autoscalers),
            replica_counts=tuple(args.replica_counts),
            max_batches=tuple(args.max_batches),
            objectives=tuple(args.objectives),
            constraints=tuple(args.constraints or ()),
            strategy=args.strategy, budget=args.budget, rate=args.rate,
            requests=args.requests, trace=args.trace, scenario=args.scenario,
            input_tokens=args.input_tokens, output_tokens=args.output_tokens,
            slo_ttft=args.slo_ttft, slo_tpot=args.slo_tpot, seed=args.seed,
            capacity_bound=not args.no_capacity_bound,
            faults=tuple(args.faults or ()), overlay=args.overlay)
        model = request.resolve_model()
        objectives = request.objective_list()
        response = repro_api.optimize(request, store=store,
                                      telemetry=telemetry)
    except repro_api.ApiRequestError as error:
        raise SystemExit(error.error.render()) from None
    frontier = response.frontier_object()

    header = ["design", "precision", "replicas", "scheduler", "router",
              "autoscaler"]
    header += [f"{objective.name} [{objective.unit}]" for objective in objectives]
    header += ["SLO attained", "dominates"]
    rows = []
    for point in frontier.points:
        result = point.result
        rows.append([result.design, result.precision, result.replicas,
                     result.scheduler, result.router, result.autoscaler]
                    + [f"{value:.4g}" for value in point.values]
                    + [f"{result.slo_attainment * 100:.1f}%",
                       point.dominated_count])
    title = (f"Pareto frontier: {model.name} at {args.rate:g} req/s "
             f"({frontier.strategy} search, seed {args.seed})")
    print(format_table(header, rows, title=title))
    by_key = {point.result.cache_key: point.result for point in frontier.points}
    for name, cache_key in frontier.extremes:
        best = by_key[cache_key]
        objective = get_objective(name)
        print(f"best {name}: {objective.value(best):.4g} {objective.unit} "
              f"({best.design}/{best.precision} x{best.replicas} "
              f"{best.scheduler}/{best.router}/{best.autoscaler})")
    print(f"searched {frontier.candidates} candidates: "
          f"{len(frontier.points)} on the frontier, "
          f"{frontier.dominated} dominated, "
          f"{frontier.constraint_filtered} constraint-filtered, "
          f"{frontier.strategy_pruned} pruned by the strategy "
          "(short-trace dominated / over budget / unsampled), "
          f"{frontier.infeasible} infeasible "
          f"({frontier.capacity_pruned} below the capacity lower bound)")
    print(f"simulations: {frontier.short_runs} short + {frontier.full_runs} "
          f"full trace; new simulations: "
          f"{frontier.short_runs + frontier.full_runs}; "
          f"served from store: {frontier.store_served}")
    if store is not None:
        print(f"persistent store: {store.path} ({len(store)} entries)")
    _export_telemetry(telemetry, args, time_domain="wall")
    try:
        if args.json:
            path = pathlib.Path(args.json)
            path.write_text(json.dumps(dict(response.frontier), indent=2) + "\n",
                            encoding="utf-8")
            print(f"wrote frontier to {path}")
        if args.csv:
            path = write_csv(frontier.rows(), args.csv,
                             fieldnames=frontier_fieldnames())
            print(f"wrote frontier rows to {path}")
    except OSError as error:
        raise SystemExit(f"cannot write results: {error}") from None
    if not frontier.points:
        print("verdict: no feasible candidate satisfies the constraints")
        return 1
    return 0


def cmd_gateway(args: argparse.Namespace) -> int:
    """Serve the simulation API over HTTP (simulation as a service)."""
    from repro.gateway import GatewayServer

    store = _open_store(args.store)
    try:
        server = GatewayServer(store, host=args.host, port=args.port,
                               workers=args.api_workers)
    except OSError as error:
        raise SystemExit(f"cannot bind gateway to {args.host}:{args.port}: "
                         f"{error}") from None
    store_note = (f"; store {store.path} ({len(store)} entries)"
                  if store is not None else "; no --store (runs are not "
                  "shared between submissions)")
    print(f"gateway listening on {server.url}{store_note}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a text dashboard from an exported trace/metrics file."""
    try:
        data = load_trace_file(args.trace_path)
    except OSError as error:
        raise SystemExit(f"cannot read trace: {error}") from None
    except (ValueError, KeyError, TypeError) as error:
        raise SystemExit(f"cannot parse trace '{args.trace_path}': {error}") from None
    print(render_report(data, width=args.width), end="")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repro-lint contract checker over the tree."""
    from repro import lint as repro_lint

    if args.list_rules:
        rows = [[rule.id, rule.name, rule.description]
                for _, rule in sorted(repro_lint.RULE_REGISTRY.items())]
        rows.insert(0, [repro_lint.META_RULE, "lint",
                        "files parse; every pragma suppresses a finding"])
        print(format_table(["rule", "name", "enforces"], rows,
                           title="repro-lint rules"))
        return 0

    rules = None
    if args.rules:
        try:
            rules = [repro_lint.get_rule(rule_id) for rule_id in args.rules]
        except KeyError as error:
            raise SystemExit(str(error.args[0])) from None

    findings, warning = repro_lint.lint_repository(
        args.root, paths=args.paths, diff_base=args.diff_base, rules=rules)
    if warning is not None:
        print(f"warning: {warning}", file=sys.stderr)
    for finding in findings:
        print(finding.render())
    if args.json:
        payload = {"findings": [finding.to_dict() for finding in findings],
                   "count": len(findings)}
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n",
                                           encoding="utf-8")
        print(f"wrote findings JSON to {args.json}")
    print(f"repro-lint: {len(findings)} finding(s)")
    return 1 if findings else 0


def cmd_models(args: argparse.Namespace) -> int:
    """List registered models with their footprints and capacity plans."""
    tpu = tpuv4i_baseline()
    rows = []
    for name in sorted(MODEL_REGISTRY):
        model = MODEL_REGISTRY[name]
        if isinstance(model, LLMConfig):
            footprint = llm_footprint(model, batch=args.batch,
                                      context_tokens=args.input_tokens + args.output_tokens)
            kind = "MoE" if isinstance(model, MoEConfig) else "LLM"
        elif isinstance(model, DiTConfig):
            footprint = dit_footprint(model, batch=args.batch, image_resolution=args.resolution)
            kind = "DiT"
        else:  # pragma: no cover - registry only holds the known kinds
            continue
        plan = plan_capacity(footprint, tpu)
        rows.append([name, kind, scenario_for(model).name, f"{footprint.total_gib:.1f} GiB",
                     plan.min_devices, plan.suggested_parallelism])
    print(format_table(["model", "kind", "default scenario", "footprint", "min TPUs",
                        "suggested parallelism"],
                       rows, title="Registered models (batch "
                                   f"{args.batch}, {args.input_tokens}+{args.output_tokens} tokens)"))
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List the registered inference scenarios and their capabilities."""
    del args  # no options; present for the uniform subcommand signature
    rows = []
    for name in sorted(SCENARIO_REGISTRY):
        spec = SCENARIO_REGISTRY[name]
        models = ", ".join(sorted(m for m, cfg in MODEL_REGISTRY.items()
                                  if spec.supports(cfg)))
        rows.append([name, spec.model_type.__name__,
                     "yes" if spec.tensor_parallel is not None else "no",
                     models, spec.description])
    print(format_table(["scenario", "model type", "tensor-parallel", "models", "description"],
                       rows, title="Registered scenarios"))
    return 0


# -------------------------------------------------------------------- parser
def _add_telemetry_flags(parser: argparse.ArgumentParser, *,
                         gauge_interval: bool = False) -> None:
    """Attach the shared ``--trace-out`` / ``--metrics-out`` export flags."""
    parser.add_argument(
        "--trace-out", dest="trace_out", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON file of the run "
             "(open in Perfetto or chrome://tracing; also readable by "
             "`repro-sim report`)")
    parser.add_argument(
        "--metrics-out", dest="metrics_out", metavar="PATH", default=None,
        help="write time-series gauges/events/counters as JSONL "
             "(one self-describing record per line)")
    if gauge_interval:
        parser.add_argument(
            "--gauge-interval", dest="gauge_interval", type=float,
            default=1.0, metavar="SECONDS",
            help="simulated-time sampling interval of queue-depth/"
                 "batch-occupancy/KV-utilisation gauges (default 1.0)")


def _add_chaos_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--faults`` / ``--overlay`` chaos flags."""
    parser.add_argument(
        "--faults", action="append", metavar="FAULT", default=None,
        help="inject a fault source (repeatable): '<kind>[:field=value,...]' "
             "with kinds " + ", ".join(sorted(FAULT_REGISTRY))
             + "; e.g. 'replica-crash:at_s=5,duration_s=10,replica=0'")
    parser.add_argument(
        "--overlay", metavar="OVERLAY", default=None,
        help="arrival-drift overlay: '<kind>[:field=value,...]' with kinds "
             + ", ".join(sorted(OVERLAY_REGISTRY))
             + "; e.g. 'flash-crowd:start_s=10,duration_s=30,magnitude=3'")
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(prog="repro-sim",
                                     description="CIM-TPU architecture simulator")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="diagnostic logging on stderr: -v for INFO, "
                             "-vv for DEBUG (results stay on stdout)")
    parser.add_argument("--batch", type=int, default=8, help="batch size (default 8)")
    parser.add_argument("--input-tokens", type=int, default=1024, dest="input_tokens",
                        help="prompt length for LLM workloads")
    parser.add_argument("--output-tokens", type=int, default=512, dest="output_tokens",
                        help="generated tokens for LLM workloads")
    parser.add_argument("--resolution", type=int, default=512, help="DiT image resolution")
    parser.add_argument("--steps", type=int, default=50, help="DiT sampling steps")
    parser.add_argument("--llm", default=GPT3_30B.name, help="LLM model name")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the serving-trace RNG (the only source of "
                             "randomness anywhere): identical flags + identical "
                             "seed give bit-for-bit identical output (default 0)")

    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="baseline vs. CIM design on Fig. 6 workloads")
    compare.add_argument("--design", default="cim-default",
                         help="one of: " + ", ".join(sorted(PREDEFINED_DESIGNS)))
    compare.set_defaults(func=cmd_compare)

    explore = subparsers.add_parser("explore", help="Table IV / Fig. 7 design-space sweep")
    explore.add_argument("--workers", type=int, default=None,
                         help="worker processes for the sweep (default: serial)")
    explore.set_defaults(func=cmd_explore)

    multi = subparsers.add_parser("multi-device", help="Fig. 8 multi-TPU throughput")
    multi.add_argument("--design", default="design-a")
    multi.add_argument("--devices", type=int, nargs="+", default=[1, 2, 4])
    multi.add_argument("--parallelism", choices=("pipeline", "tensor"), default="pipeline")
    multi.add_argument("--workers", type=int, default=None,
                       help="worker processes for the sweep (default: serial)")
    multi.set_defaults(func=cmd_multi_device)

    sweep = subparsers.add_parser(
        "sweep", help="generalized scenario sweep (designs x models x settings)",
        description="Evaluate a grid of (design x model x precision x batch x devices) "
                    "points with the memoised sweep engine and optionally export the "
                    "structured rows to JSON/CSV.")
    sweep.add_argument("--designs", nargs="+", default=sorted(PREDEFINED_DESIGNS),
                       help="designs to sweep (default: all predefined designs)")
    sweep.add_argument("--models", nargs="+", default=sorted(MODEL_REGISTRY),
                       help="models to sweep (default: every registered model)")
    sweep.add_argument("--scenarios", nargs="+", choices=sorted(SCENARIO_REGISTRY),
                       default=None,
                       help="scenarios to sweep; incompatible model/scenario pairs are "
                            "skipped (default: each model's default scenario)")
    sweep.add_argument("--precisions", nargs="+", choices=[p.value for p in Precision],
                       default=[p.value for p in Precision],
                       help="numeric precisions (default: all)")
    sweep.add_argument("--batches", type=int, nargs="+", default=[1, 8],
                       help="batch sizes (default: 1 8)")
    sweep.add_argument("--devices", type=int, nargs="+", default=[1],
                       help="device counts (default: 1)")
    sweep.add_argument("--parallelism", choices=("pipeline", "tensor"), default="pipeline")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes for the sweep (default: serial)")
    sweep.add_argument("--schedulers", nargs="+", choices=sorted(SCHEDULER_REGISTRY),
                       default=None,
                       help="serving axis: batching policies to sweep (with "
                            "--arrival-rates, turns every point into a "
                            "discrete-event serving run)")
    sweep.add_argument("--arrival-rates", dest="arrival_rates", type=float, nargs="+",
                       default=None,
                       help="serving axis: request arrival rates (requests/s)")
    sweep.add_argument("--trace", choices=sorted(TRACE_REGISTRY), default="poisson",
                       help="arrival process of serving sweeps (default poisson)")
    sweep.add_argument("--trace-requests", dest="trace_requests", type=int, default=200,
                       help="requests per serving-sweep trace (default 200)")
    sweep.add_argument("--routers", nargs="+", choices=sorted(ROUTER_REGISTRY),
                       default=None,
                       help="fleet axis: routing policies to sweep (serving "
                            "grids only)")
    sweep.add_argument("--replica-counts", dest="replica_counts", type=int,
                       nargs="+", default=None,
                       help="fleet axis: replica counts to sweep (serving "
                            "grids only)")
    sweep.add_argument("--autoscaler", choices=sorted(AUTOSCALER_REGISTRY),
                       default="fixed",
                       help="autoscaling policy of fleet sweep points "
                            "(default fixed)")
    sweep.add_argument("--store", metavar="PATH", default=None,
                       help="persistent JSONL result store shared with "
                            "serve/optimize and the gateway: repeated points "
                            "are served with zero new simulations")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="write the result rows to PATH as JSON")
    sweep.add_argument("--csv", metavar="PATH", default=None,
                       help="write the result rows to PATH as CSV")
    _add_telemetry_flags(sweep)
    sweep.set_defaults(func=cmd_sweep)

    serve = subparsers.add_parser(
        "serve", help="discrete-event serving simulation with SLO analytics",
        description="Replay a seeded request trace through the continuous-batching "
                    "scheduler on one design and report TTFT/TPOT/e2e percentiles, "
                    "SLO goodput, utilisation and energy per token.  Deterministic: "
                    "identical flags (including the global --seed) reproduce the "
                    "run bit for bit.")
    llm_scenarios = sorted(name for name, spec in SCENARIO_REGISTRY.items()
                           if issubclass(spec.model_type, LLMConfig))
    serve.add_argument("--design", default="design-a",
                       help="one of: " + ", ".join(sorted(PREDEFINED_DESIGNS)))
    serve.add_argument("--scenario", choices=llm_scenarios, default="chat-serving",
                       help="scenario supplying the request mix (default chat-serving)")
    serve.add_argument("--trace", choices=sorted(TRACE_REGISTRY), default="poisson",
                       help="arrival process (default poisson)")
    serve.add_argument("--trace-file", metavar="PATH", default=None,
                       help="replay a JSONL trace instead of generating one")
    serve.add_argument("--rate", type=float, default=8.0,
                       help="mean arrival rate in requests/s (default 8)")
    serve.add_argument("--requests", type=int, default=200,
                       help="trace length in requests (default 200)")
    serve.add_argument("--scheduler", choices=sorted(SCHEDULER_REGISTRY),
                       default="fcfs", help="batching policy (default fcfs)")
    serve.add_argument("--replicas", type=int, default=1,
                       help="fleet size: >1 routes the trace across a cluster "
                            "of identical replicas (default 1)")
    serve.add_argument("--router", choices=sorted(ROUTER_REGISTRY),
                       default="round-robin",
                       help="fleet routing policy (default round-robin)")
    serve.add_argument("--autoscaler", choices=sorted(AUTOSCALER_REGISTRY),
                       default="fixed",
                       help="fleet autoscaling policy (default fixed)")
    serve.add_argument("--min-replicas", dest="min_replicas", type=int, default=1,
                       help="autoscaler floor of the fleet (default 1)")
    serve.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                       help="override the global --seed after the subcommand")
    serve.add_argument("--check-determinism", dest="check_determinism",
                       action="store_true",
                       help="run the simulation twice, fail unless the reports "
                            "agree bit-for-bit, and print a stable p99 digest")
    serve.add_argument("--max-batch", dest="max_batch", type=int, default=32,
                       help="continuous-batching slot limit (default 32)")
    serve.add_argument("--bucket", type=int, default=256,
                       help="context-bucket granularity in tokens for step-cost "
                            "memoisation (default 256)")
    serve.add_argument("--devices", type=int, default=None,
                       help="pipeline-parallel device count (default: smallest "
                            "deployment whose KV budget admits the largest request)")
    serve.add_argument("--precision", choices=[p.value for p in Precision],
                       default=Precision.INT8.value, help="numeric precision")
    serve.add_argument("--slo-ttft", dest="slo_ttft", type=float, default=1.0,
                       help="SLO: time to first token in seconds (default 1.0)")
    serve.add_argument("--slo-tpot", dest="slo_tpot", type=float, default=0.1,
                       help="SLO: time per output token in seconds (default 0.1)")
    serve.add_argument("--store", metavar="PATH", default=None,
                       help="persistent JSONL result store shared with "
                            "sweep/optimize and the gateway: a repeated run "
                            "is served with zero new simulations")
    serve.add_argument("--json", metavar="PATH", default=None,
                       help="write the full serving report to PATH as JSON")
    serve.add_argument("--csv", metavar="PATH", default=None,
                       help="write per-request TTFT/TPOT/e2e rows to PATH as CSV")
    serve.add_argument("--fidelity", choices=("exact", "fluid"),
                       default="exact",
                       help="'exact' replays the discrete-event engine; "
                            "'fluid' prices the run with the closed-form "
                            "estimator — orders of magnitude faster, "
                            "golden-bounded error (default exact)")
    serve.add_argument("--shards", type=int, default=1,
                       help="split the trace at quiescence boundaries across "
                            "N worker processes and merge deterministically; "
                            "the report is bit-for-bit identical to --shards "
                            "1 (default 1; single-deployment runs only)")
    serve.add_argument("--profile", action="store_true",
                       help="run under cProfile, print the top cumulative "
                            "functions and dump a .pstats artifact")
    serve.add_argument("--profile-out", dest="profile_out",
                       metavar="PATH", default="serve_profile.pstats",
                       help="where --profile writes the .pstats artifact "
                            "(default serve_profile.pstats)")
    _add_telemetry_flags(serve, gauge_interval=True)
    _add_chaos_flags(serve)
    serve.set_defaults(func=cmd_serve)

    fleet = subparsers.add_parser(
        "fleet", help="size a replica fleet for an SLO at a target rate",
        description="Replay one seeded trace through fleets of 1..N replicas "
                    "and report the smallest replica count whose SLO "
                    "attainment reaches the target, with per-fleet goodput "
                    "and cost per million tokens.  Exits non-zero when even "
                    "the largest fleet falls short.")
    fleet.add_argument("--design", default="design-a",
                       help="one of: " + ", ".join(sorted(PREDEFINED_DESIGNS)))
    fleet.add_argument("--scenario", choices=llm_scenarios, default="chat-serving",
                       help="scenario supplying the request mix (default chat-serving)")
    fleet.add_argument("--rate", type=float, required=True,
                       help="target arrival rate in requests/s")
    fleet.add_argument("--attainment", type=float, default=0.95,
                       help="SLO attainment target in (0, 1] (default 0.95)")
    fleet.add_argument("--max-replicas", dest="max_replicas", type=int, default=16,
                       help="largest fleet to try (default 16)")
    fleet.add_argument("--requests", type=int, default=400,
                       help="trace length in requests (default 400)")
    fleet.add_argument("--trace", choices=sorted(TRACE_REGISTRY), default="poisson",
                       help="arrival process (default poisson)")
    fleet.add_argument("--scheduler", choices=sorted(SCHEDULER_REGISTRY),
                       default="fcfs", help="batching policy (default fcfs)")
    fleet.add_argument("--router", choices=sorted(ROUTER_REGISTRY),
                       default="least-outstanding-requests",
                       help="fleet routing policy (default "
                            "least-outstanding-requests)")
    fleet.add_argument("--max-batch", dest="max_batch", type=int, default=32,
                       help="continuous-batching slot limit (default 32)")
    fleet.add_argument("--precision", choices=[p.value for p in Precision],
                       default=Precision.INT8.value, help="numeric precision")
    fleet.add_argument("--slo-ttft", dest="slo_ttft", type=float, default=1.0,
                       help="SLO: time to first token in seconds (default 1.0)")
    fleet.add_argument("--slo-tpot", dest="slo_tpot", type=float, default=0.1,
                       help="SLO: time per output token in seconds (default 0.1)")
    fleet.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                       help="override the global --seed after the subcommand")
    fleet.add_argument("--fidelity", choices=("exact", "fluid"),
                       default="exact",
                       help="'exact' replays every candidate fleet through "
                            "the event loop; 'fluid' sizes with the "
                            "closed-form estimator (default exact)")
    fleet.add_argument("--store", metavar="PATH", default=None,
                       help="persistent JSONL result store shared with "
                            "serve/optimize and the gateway: already-sized "
                            "fleets replay zero new simulations")
    fleet.add_argument("--json", metavar="PATH", default=None,
                       help="write the fleet plan to PATH as JSON")
    _add_chaos_flags(fleet)
    fleet.set_defaults(func=cmd_fleet)

    optimize = subparsers.add_parser(
        "optimize", help="Pareto co-design search over hardware x deployment",
        description="Search the joint (TPU design x precision x scheduler x "
                    "router x autoscaler x replica count) space for "
                    "Pareto-optimal fleet configurations under declared "
                    "objectives and constraints.  With --store, results "
                    "persist across runs: a repeated search performs zero "
                    "new simulations and reproduces the frontier bit for "
                    "bit.")
    optimize.add_argument("--designs", nargs="+",
                          default=sorted(PREDEFINED_DESIGNS),
                          help="design axis (default: all predefined designs)")
    optimize.add_argument("--precisions", nargs="+",
                          choices=[p.value for p in Precision],
                          default=[Precision.INT8.value],
                          help="precision axis (default int8)")
    optimize.add_argument("--schedulers", nargs="+",
                          choices=sorted(SCHEDULER_REGISTRY), default=["fcfs"],
                          help="batching-policy axis (default fcfs)")
    optimize.add_argument("--routers", nargs="+", choices=sorted(ROUTER_REGISTRY),
                          default=["round-robin"],
                          help="routing-policy axis (default round-robin)")
    optimize.add_argument("--autoscalers", nargs="+",
                          choices=sorted(AUTOSCALER_REGISTRY), default=["fixed"],
                          help="autoscaling-policy axis (default fixed)")
    optimize.add_argument("--replica-counts", dest="replica_counts", type=int,
                          nargs="+", default=[1, 2, 4],
                          help="replica-count axis (default 1 2 4)")
    optimize.add_argument("--max-batches", dest="max_batches", type=int,
                          nargs="+", default=[32],
                          help="continuous-batching slot-limit axis (default 32)")
    optimize.add_argument("--objectives", nargs="+",
                          choices=sorted(OBJECTIVE_REGISTRY),
                          default=["cost-per-million-tokens", "p99-ttft"],
                          help="objectives to minimise/maximise "
                               "(default: cost-per-million-tokens p99-ttft)")
    optimize.add_argument("--constraints", nargs="+", default=None,
                          metavar="CONSTRAINT",
                          help="feasibility constraints: 'fit', 'slo>=0.95' or "
                               "'<objective><=value' (default: none)")
    optimize.add_argument("--strategy", choices=sorted(SEARCH_REGISTRY),
                          default="successive-halving",
                          help="search strategy (default successive-halving)")
    optimize.add_argument("--budget", type=int, default=None,
                          help="full-fidelity evaluation budget (random sample "
                               "size / survivor cap; default: unlimited)")
    optimize.add_argument("--rate", type=float, default=8.0,
                          help="workload arrival rate in requests/s (default 8)")
    optimize.add_argument("--requests", type=int, default=200,
                          help="full-fidelity trace length (default 200)")
    optimize.add_argument("--trace", choices=sorted(TRACE_REGISTRY),
                          default="poisson",
                          help="arrival process (default poisson)")
    optimize.add_argument("--scenario", choices=llm_scenarios,
                          default="chat-serving",
                          help="scenario supplying the request mix "
                               "(default chat-serving)")
    optimize.add_argument("--store", metavar="PATH", default=None,
                          help="persistent JSONL result store: repeated "
                               "searches against the same store simulate "
                               "nothing new")
    optimize.add_argument("--no-capacity-bound", dest="no_capacity_bound",
                          action="store_true",
                          help="do not prune fleets below the capacity lower "
                               "bound when an SLO constraint is declared")
    optimize.add_argument("--slo-ttft", dest="slo_ttft", type=float, default=1.0,
                          help="SLO: time to first token in seconds (default 1.0)")
    optimize.add_argument("--slo-tpot", dest="slo_tpot", type=float, default=0.1,
                          help="SLO: time per output token in seconds (default 0.1)")
    optimize.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                          help="override the global --seed after the subcommand")
    optimize.add_argument("--json", metavar="PATH", default=None,
                          help="write the full frontier report to PATH as JSON")
    optimize.add_argument("--csv", metavar="PATH", default=None,
                          help="write the frontier rows to PATH as CSV")
    _add_telemetry_flags(optimize)
    _add_chaos_flags(optimize)
    optimize.set_defaults(func=cmd_optimize)

    gateway = subparsers.add_parser(
        "gateway", help="serve the simulation API over HTTP",
        description="Simulation as a service: POST JSON requests to "
                    "/v1/simulate, /v1/fleet, /v1/sweep, /v1/optimize or "
                    "/v1/autoconfig-preview, poll GET /v1/jobs/<id> and "
                    "fetch GET /v1/jobs/<id>/result.  All jobs run against "
                    "one shared persistent --store, so any request any "
                    "client has run before is served with zero new "
                    "simulations.")
    gateway.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    gateway.add_argument("--port", type=int, default=8080,
                         help="bind port; 0 picks an ephemeral port "
                              "(default 8080)")
    gateway.add_argument("--store", metavar="PATH", default=None,
                         help="shared persistent JSONL result store backing "
                              "every job (the multi-tenant simulation cache)")
    gateway.add_argument("--api-workers", dest="api_workers", type=int,
                         default=2,
                         help="simulation worker threads draining the job "
                              "queue (default 2)")
    gateway.set_defaults(func=cmd_gateway)

    report = subparsers.add_parser(
        "report", help="text dashboard from an exported trace/metrics file",
        description="Render utilisation sparklines, the autoscaler/fault "
                    "action log, per-track span totals and counter totals "
                    "from a --trace-out Chrome trace or --metrics-out JSONL "
                    "file (the format is sniffed from content).")
    report.add_argument("trace_path", metavar="PATH",
                        help="a --trace-out or --metrics-out file")
    report.add_argument("--width", type=int, default=60,
                        help="sparkline width in characters (default 60)")
    report.set_defaults(func=cmd_report)

    lint = subparsers.add_parser(
        "lint", help="machine-check the repo's determinism/fingerprint/"
                     "registry contracts",
        description="Run the repro-lint AST contract checker: RPR001 "
                    "determinism, RPR002 fingerprint-bump (needs "
                    "--diff-base), RPR003 frozen dataclasses, RPR004 "
                    "registry sync, RPR005 closed error contract, RPR006 "
                    "telemetry discipline.  Exits non-zero on any finding; "
                    "suppress a justified one with a "
                    "'# repro-lint: disable=RULE' comment.")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--root", default=".",
                      help="repository root discovery hint (default: cwd)")
    lint.add_argument("--diff-base", dest="diff_base", metavar="REF",
                      help="git ref to diff against; enables the RPR002 "
                           "fingerprint-bump rule (e.g. origin/main)")
    lint.add_argument("--rules", nargs="+", metavar="RPRnnn",
                      help="run only these rule ids")
    lint.add_argument("--json", metavar="PATH",
                      help="also write the findings as structured JSON")
    lint.add_argument("--list-rules", action="store_true", dest="list_rules",
                      help="list the registered rules and exit")
    lint.set_defaults(func=cmd_lint)

    models = subparsers.add_parser("models", help="list models and capacity plans")
    models.set_defaults(func=cmd_models)

    scenarios = subparsers.add_parser("scenarios",
                                      help="list registered inference scenarios")
    scenarios.set_defaults(func=cmd_scenarios)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
