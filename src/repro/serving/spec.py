"""Compact serving-run description used by sweep grids and the CLI.

:class:`ServingSpec` is deliberately a small frozen dataclass of primitives
(plus the :class:`~repro.serving.metrics.SLO`): it fingerprints cleanly for
the sweep engine's content-addressed caches and travels to worker processes
unchanged.  The model, chip and request mix are *not* part of the spec —
they come from the sweep point (or CLI flags) it is attached to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.faults import FaultSpec
from repro.serving.metrics import SLO
from repro.serving.trace import OverlaySpec


@dataclass(frozen=True)
class ServingSpec:
    """Everything needed to replay one serving run, minus model and chip."""

    scheduler: str = "fcfs"
    trace: str = "poisson"
    arrival_rate: float = 8.0
    num_requests: int = 200
    seed: int = 0
    max_batch: int = 32
    bucket_tokens: int = 256
    #: Pipeline-parallel device count; ``None`` auto-plans the smallest
    #: deployment whose KV budget admits the largest trace request.
    devices: int | None = None
    memory_utilisation: float = 0.9
    slo: SLO = SLO()
    #: Fleet shape: ``replicas == 1`` runs the plain single-deployment
    #: simulator; ``> 1`` routes the trace across a cluster of identical
    #: replicas with the named router/autoscaler policies.
    replicas: int = 1
    router: str = "round-robin"
    autoscaler: str = "fixed"
    min_replicas: int = 1
    #: Chaos axes: injectable fault sources (expanded into a deterministic
    #: event timeline by the cluster — any faulted spec runs the cluster
    #: path, replicas == 1 included) and an arrival-drift overlay applied
    #: to the generated trace.  Both fingerprint into sweep/store keys, so
    #: chaos runs are content-addressed like healthy ones.
    faults: tuple[FaultSpec, ...] = ()
    overlay: OverlaySpec | None = None
    #: Evaluation fidelity: ``"exact"`` replays the discrete-event engine;
    #: ``"fluid"`` prices the spec with the closed-form flow estimator
    #: (:mod:`repro.serving.fluid`) — orders of magnitude faster, with
    #: golden-bounded error, for screening passes and day-scale what-ifs.
    fidelity: str = "exact"

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.max_batch <= 0 or self.bucket_tokens <= 0:
            raise ValueError("max_batch and bucket_tokens must be positive")
        if self.devices is not None and self.devices <= 0:
            raise ValueError("devices must be positive (or None to auto-plan)")
        if not 0 < self.memory_utilisation <= 1:
            raise ValueError("memory_utilisation must be in (0, 1]")
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if not 1 <= self.min_replicas <= self.replicas:
            raise ValueError("min_replicas must be in [1, replicas]")
        # Coerce to a tuple so specs stay hashable (grids dedup in sets)
        # and a list-vs-tuple spelling never splits fingerprints.
        object.__setattr__(self, "faults", tuple(self.faults))
        if not all(isinstance(fault, FaultSpec) for fault in self.faults):
            raise ValueError("faults must be FaultSpec instances")
        if self.overlay is not None and not isinstance(self.overlay, OverlaySpec):
            raise ValueError("overlay must be an OverlaySpec (or None)")
        if self.fidelity not in ("exact", "fluid"):
            raise ValueError("fidelity must be 'exact' or 'fluid'")
        if self.fidelity == "fluid" and self.faults:
            raise ValueError("fault injection needs the exact event loop; "
                             "fluid fidelity cannot replay fault timelines")
        if self.fidelity == "fluid" and self.overlay is not None:
            raise ValueError("arrival-drift overlays warp individual "
                             "arrivals; fluid fidelity sees only the mean "
                             "rate, so overlaid specs must run exact")

    def summary(self) -> str:
        """Human-readable spec summary used in tables and exports."""
        base = (f"{self.trace}@{self.arrival_rate:g}/s {self.scheduler} "
                f"n={self.num_requests} seed={self.seed}")
        if self.fidelity != "exact":
            base += f" [{self.fidelity}]"
        if self.replicas > 1:
            base += f" x{self.replicas} {self.router}/{self.autoscaler}"
        if self.overlay is not None:
            base += f" +{self.overlay.summary()}"
        if self.faults:
            base += " !" + ",".join(fault.summary() for fault in self.faults)
        return base
