"""Closed-form fluid approximation of a serving run.

Day-scale what-ifs and optimizer screening passes do not need an exact
replay of every request — they need the *shape* of the outcome (is the
deployment overloaded? roughly what TTFT/TPOT/throughput?) at negligible
cost.  :func:`estimate_serving` prices a
:class:`~repro.serving.spec.ServingSpec` at **class level**: all work is
per request *class* (a mix has a handful), never per request, so a
250k-request day trace costs the same as a 200-request one — microseconds
on a warm step-cost memo.

The model, in brief:

* **Step prices.**  Every step is priced through the same memoised
  :class:`~repro.serving.costs.StepCostModel` the exact engine uses (same
  buckets, same layer graphs) — fluid and exact disagree only about
  queueing and batching, never about what a step costs.  Crucially, a
  decode step is priced at the **batch maximum** context, exactly like the
  engine: each class's expected step price marginalises over which class
  holds the max among its ``B - 1`` random batchmates (slot occupancy
  weighted by decode residence time), so a heavy long-context class taxes
  everyone, as it does in the exact replay.
* **Concurrency.**  The effective batch is a fixed point of Little's law
  clamped by the KV-reservation budget and ``max_batch`` — overload pins
  it at the cap, light load drives it to one.
* **Queueing.**  The deployment is an ``Erlang-C`` system of ``batch``
  slots: underloaded waits use the Erlang delay probability with the
  standard exponential conditional tail; overloaded runs use the fluid
  backlog (request ``i`` waits ``i * (E[work] - 1/rate)``, uniform across
  the trace), which is what a saturated queue actually does.
* **Distributions.**  Per-class TTFT/TPOT/e2e are evaluated on a
  deterministic stratified quantile grid (no randomness, no trace),
  weighted by the class mix, and summarised by the same
  :class:`~repro.serving.metrics.LatencySummary` machinery as the exact
  engine, so every report field downstream code reads is present.

What fluid fidelity deliberately does **not** model: scheduler-policy
differences (admission order cannot matter to a flow), fault timelines
(rejected at the spec level), and per-request rows (``report.requests``
is empty).  Error against the exact engine is pinned by golden tests per
scenario; fidelity-affecting changes here must bump the serving/cluster
store key versions (see CONTRIBUTING).
"""

from __future__ import annotations

import math

from repro.common import Precision, ceil_div
from repro.core.config import TPUConfig
from repro.core.simulator import InferenceSimulator
from repro.serving.metrics import SLO, LatencySummary, ServingReport
from repro.serving.simulator import ServingSimulator
from repro.serving.spec import ServingSpec
from repro.serving.trace import request_classes_from_settings
from repro.workloads.chat import RequestClass, mix_fractions
from repro.workloads.llm import LLMConfig

#: Stratified quantile samples the latency distributions are evaluated on.
_QUANTILE_SAMPLES = 512


def _trajectory(costs, batch: int, input_tokens: int, output_tokens: int,
                ) -> tuple[float, float, float]:
    """Full-step decode (seconds, mxu_J, total_J) over one class's contexts.

    Mirrors the exact engine: after prefill emits token 1 the context is
    ``input_tokens + 1``; each later token prices the bucket of the context
    before its step, so the trajectory covers contexts ``input_tokens + 1
    .. input_tokens + output_tokens - 1`` — walked bucket by bucket.
    """
    seconds = mxu_e = total_e = 0.0
    bt = costs.bucket_tokens
    context = input_tokens + 1
    last = input_tokens + output_tokens - 1
    while context <= last:
        bucket = ceil_div(context, bt) * bt
        steps = min(last, bucket) - context + 1
        cost = costs._step("decode", batch, bucket)
        seconds += steps * cost.seconds
        mxu_e += steps * cost.mxu_energy_joules
        total_e += steps * cost.total_energy_joules
        context = bucket + 1
    return seconds, mxu_e, total_e


def _erlang_c(servers: int, erlangs: float) -> float:
    """Erlang-C delay probability for ``servers`` slots at offered load."""
    if erlangs <= 0.0:
        return 0.0
    rho = erlangs / servers
    if rho >= 1.0:
        return 1.0
    # Iterative Erlang-B, then the C conversion — no factorials to overflow.
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = erlangs * blocking / (k + erlangs * blocking)
    return blocking / (1.0 - rho * (1.0 - blocking))


def estimate_serving(model: LLMConfig, tpu_config: TPUConfig,
                     spec: ServingSpec, settings: object, *,
                     simulator: InferenceSimulator | None = None,
                     ) -> ServingReport:
    """Price a serving spec with the closed-form fluid model.

    Returns a fully populated :class:`~repro.serving.metrics.ServingReport`
    (``requests`` empty) comparable field-for-field with the exact
    engine's.  A :class:`ServingSimulator` is constructed only for its
    deployment planning and memoised step costs — no event loop runs; pass
    ``simulator`` (a shared caching simulator) to reuse priced graphs
    across calls.

    Raises
    ------
    ValueError
        If the spec injects faults, or the deployment cannot hold the
        model's weights (same message as the exact engine).
    """
    if spec.faults:
        raise ValueError("fault injection needs the exact event loop; "
                         "fluid fidelity cannot replay fault timelines")
    classes = request_classes_from_settings(settings)
    engine = ServingSimulator(
        model, tpu_config, scheduler=spec.scheduler,
        precision=getattr(settings, "precision", Precision.INT8),
        max_batch=spec.max_batch, bucket_tokens=spec.bucket_tokens,
        devices=spec.devices, memory_utilisation=spec.memory_utilisation,
        simulator=simulator)
    costs = engine.costs
    kv_per_token = engine.kv_bytes_per_token

    if spec.devices is not None:
        devices = spec.devices
    else:
        largest = max(c.input_tokens + c.output_tokens for c in classes)
        shortfall = largest * kv_per_token - engine.kv_budget(1)
        if shortfall <= 0:
            devices = 1
        else:
            per_device = int(tpu_config.main_memory_bytes
                             * spec.memory_utilisation)
            devices = 1 + ceil_div(shortfall, per_device)
    budget = engine.kv_budget(devices)
    if budget <= 0:
        raise ValueError(
            f"{model.name} does not fit {devices} x {tpu_config.name}: "
            f"no KV budget left after weights (use more devices)")

    # Class mix restricted to admissible shapes (same predicate as exact).
    token_limit = budget // kv_per_token
    fractions = mix_fractions(classes)
    admitted: list[tuple[RequestClass, float]] = [
        (cls, frac) for cls, frac in zip(classes, fractions)
        if cls.input_tokens + cls.output_tokens <= token_limit]
    n = spec.num_requests
    rate = spec.arrival_rate
    slo = spec.slo
    if not admitted:
        return _empty_report(engine, spec, devices=devices, budget=budget,
                             rejected=n)
    admitted_frac = sum(frac for _, frac in admitted)
    rejected = round(n * (1.0 - admitted_frac))
    completed = n - rejected
    weights = [frac / admitted_frac for _, frac in admitted]
    mix = [cls for cls, _ in admitted]
    k = len(mix)

    # KV-reservation concurrency: while a class-``c`` request is live it
    # holds ``ctx_c`` tokens of budget; its expected batchmates hold the
    # mix-mean footprint each, so the class sees its own effective batch —
    # a heavy long-context class both raises the step price *and* shrinks
    # the batch that shares it, exactly the squeeze the exact engine's
    # admission control produces.
    mean_total_tokens = sum(w * (c.input_tokens + c.output_tokens)
                            for c, w in zip(mix, weights))
    contexts = [c.input_tokens + c.output_tokens for c in mix]
    decode_steps_per = [c.output_tokens - 1 for c in mix]

    def kv_batch(context: int) -> int:
        spare = (token_limit - context) / mean_total_tokens
        return max(1, min(spec.max_batch, 1 + int(spare)))

    # Fixed point: concurrency -> step prices -> offered load -> concurrency.
    load_cap = spec.max_batch
    for _ in range(3):
        batches = [min(load_cap, kv_batch(context)) for context in contexts]
        prefill = [costs._step("prefill", b, costs.bucket(c.input_tokens))
                   for c, b in zip(mix, batches)]
        trajectories = [_trajectory(costs, b, c.input_tokens, c.output_tokens)
                        for c, b in zip(mix, batches)]
        # Average own-trajectory step price of each class (out == 1 classes
        # never decode; they stay priced but out of the occupancy mix).
        own_avg = [
            tuple(value / steps for value in trajectory) if steps else (0.0,) * 3
            for trajectory, steps in zip(trajectories, decode_steps_per)]
        # Slot-occupancy weights: share of decode step-time each class holds.
        residence = [w * t[0] for w, t in zip(weights, trajectories)]
        total_residence = sum(residence)
        # Batch-max marginalisation: class ``i``'s tokens are priced at the
        # max context over itself and its B-1 occupancy-sampled batchmates.
        # ``price`` is the full step duration class ``i`` experiences (its
        # latency per token); ``share`` divides each term by the *max
        # holder's* batch — when the heavy class defines the max, the KV
        # budget has squeezed the batch to the heavy class's concurrency,
        # so everyone aboard splits the step that few ways, not their own
        # optimistic ``B_i`` ways.  This is what makes saturated work per
        # request come out right.
        order = sorted(range(k), key=lambda i: contexts[i])
        price: list[tuple[float, float, float]] = [(0.0, 0.0, 0.0)] * k
        share: list[tuple[float, float, float]] = [(0.0, 0.0, 0.0)] * k
        if total_residence > 0.0:
            occupancy = [r / total_residence for r in residence]
            cumulative = 0.0
            below: list[float] = []  # P(random slot's context <= class i's)
            for i in order:
                cumulative += occupancy[i]
                below.append(cumulative)
            for position, i in enumerate(order):
                if decode_steps_per[i] == 0:
                    continue
                exponent = batches[i] - 1
                mass = below[position] ** exponent
                full = [mass * value for value in own_avg[i]]
                split = [value / batches[i] for value in full]
                prev = below[position]
                for later_pos in range(position + 1, k):
                    j = order[later_pos]
                    prob = below[later_pos] ** exponent - prev ** exponent
                    prev = below[later_pos]
                    if prob <= 0.0 or decode_steps_per[j] == 0:
                        continue
                    for axis in range(3):
                        value = prob * own_avg[j][axis]
                        full[axis] += value
                        split[axis] += value / batches[j]
                price[i] = tuple(full)
                share[i] = tuple(split)
        # Per-request work share at this concurrency.
        work = [p.seconds / b + steps * sh[0]
                for p, b, steps, sh in zip(prefill, batches, decode_steps_per,
                                           share)]
        mean_work = sum(w * x for x, w in zip(work, weights))
        sojourns = [p.seconds + steps * pr[0]
                    for p, steps, pr in zip(prefill, decode_steps_per, price)]
        offered = rate * sum(w * s for w, s in zip(weights, sojourns))
        load_cap = max(1, min(spec.max_batch, math.ceil(offered)))
    rho = rate * mean_work
    overloaded = rho >= 1.0
    slots = max(batches)
    chunk_counts = [max(1, ceil_div(steps, costs.bucket_tokens)) if steps else 0
                    for steps in decode_steps_per]

    # Wait-time quantile function (queueing seconds before the prefill).
    if overloaded:
        max_wait = max(0.0, completed * (mean_work - 1.0 / rate))

        def wait_at(q: float) -> float:
            return q * max_wait
    else:
        delay_p = _erlang_c(slots, rho * slots)
        surplus = (1.0 - rho) / mean_work  # spare service rate, requests/s
        # Admission happens only at step boundaries, and a decode *chunk*
        # (a run of same-bucket steps) is one event — an arrival finding
        # the pipeline busy waits out the residual of the current chunk
        # even when a slot is free.  Model it as a linear ramp over the
        # busy fraction with the occupancy-weighted mean chunk duration.
        if total_residence > 0.0:
            mean_chunk = sum(r / total_residence * t[0] / chunks
                             for r, t, chunks in zip(residence, trajectories,
                                                     chunk_counts) if chunks)
        else:
            mean_chunk = 0.0
        busy_frac = min(1.0, rho)

        def wait_at(q: float) -> float:
            residual = 0.0
            if busy_frac > 0.0 and q > 1.0 - busy_frac:
                residual = mean_chunk * (q - (1.0 - busy_frac)) / busy_frac
            if q <= 1.0 - delay_p or delay_p <= 0.0:
                return residual
            return residual + math.log(delay_p / (1.0 - q)) / surplus

    # Stratified per-class samples -> the same LatencySummary machinery as
    # the exact engine.  Deterministic: midpoints of equal-mass strata.
    ttfts: list[float] = []
    tpots: list[float] = []
    e2es: list[float] = []
    met = 0
    met_token_weight = 0.0
    token_weight = 0.0
    for cls, weight, p, steps, pr in zip(mix, weights, prefill,
                                         decode_steps_per, price):
        samples = max(1, round(weight * _QUANTILE_SAMPLES))
        tpot = pr[0] if steps else 0.0
        decode_latency = steps * pr[0]
        token_weight += samples * cls.output_tokens
        for j in range(samples):
            q = (j + 0.5) / samples
            ttft = wait_at(q) + p.seconds
            ttfts.append(ttft)
            tpots.append(tpot)
            e2es.append(ttft + decode_latency)
            if ttft <= slo.ttft_s and tpot <= slo.tpot_s:
                met += 1
                met_token_weight += cls.output_tokens
    attainment = met / len(ttfts)
    goodput_frac = met_token_weight / token_weight if token_weight else 0.0

    total_tokens = round(completed * sum(w * c.output_tokens
                                         for c, w in zip(mix, weights)))
    busy_s = completed * mean_work
    if overloaded:
        makespan = busy_s
    else:
        # Arrival span plus the last request's expected sojourn.
        mean_wait = delay_p / surplus + busy_frac * mean_chunk
        sojourn = sum(w * s for w, s in zip(weights, sojourns))
        makespan = completed / rate + mean_wait + sojourn
    per_second = 1.0 / makespan if makespan > 0 else 0.0

    mxu_energy = completed * sum(
        w * (p.mxu_energy_joules / b + steps * sh[1])
        for w, p, b, steps, sh in zip(weights, prefill, batches,
                                      decode_steps_per, share))
    total_energy = completed * sum(
        w * (p.total_energy_joules / b + steps * sh[2])
        for w, p, b, steps, sh in zip(weights, prefill, batches,
                                      decode_steps_per, share))

    peak_tokens = max(ctx + (b - 1) * mean_total_tokens
                      for ctx, b in zip(contexts, batches))
    peak_reserved = min(budget, round(peak_tokens * kv_per_token))

    return ServingReport(
        model_name=model.name, tpu_name=tpu_config.name,
        scheduler=engine.policy.name, devices=devices,
        num_requests=n, completed=completed, rejected=rejected,
        makespan_s=makespan, busy_s=min(busy_s, makespan),
        total_tokens=total_tokens,
        tokens_per_second=total_tokens * per_second,
        requests_per_second=completed * per_second,
        ttft=LatencySummary.from_values(ttfts),
        tpot=LatencySummary.from_values(tpots),
        e2e=LatencySummary.from_values(e2es),
        slo=slo, slo_attainment=attainment,
        goodput_requests_per_second=completed * attainment * per_second,
        goodput_tokens_per_second=total_tokens * goodput_frac * per_second,
        mxu_energy_joules=mxu_energy, total_energy_joules=total_energy,
        energy_per_token_joules=mxu_energy / total_tokens if total_tokens else 0.0,
        prefill_steps=round(completed * sum(
            w / b for w, b in zip(weights, batches))),
        decode_steps=round(completed * sum(
            w * chunks / b for w, b, chunks in zip(weights, batches,
                                                   chunk_counts))),
        kv_budget_bytes=budget, peak_kv_reserved_bytes=peak_reserved,
        cost_cache_hits=costs.stats.hits, cost_cache_misses=costs.stats.misses,
        requests=())


def _empty_report(engine: ServingSimulator, spec: ServingSpec, *,
                  devices: int, budget: int, rejected: int) -> ServingReport:
    """Report of a run whose every request class is inadmissible."""
    return ServingReport(
        model_name=engine.model.name, tpu_name=engine.tpu_config.name,
        scheduler=engine.policy.name, devices=devices,
        num_requests=spec.num_requests, completed=0, rejected=rejected,
        makespan_s=0.0, busy_s=0.0, total_tokens=0, tokens_per_second=0.0,
        requests_per_second=0.0, ttft=LatencySummary.empty(),
        tpot=LatencySummary.empty(), e2e=LatencySummary.empty(),
        slo=spec.slo, slo_attainment=0.0, goodput_requests_per_second=0.0,
        goodput_tokens_per_second=0.0, mxu_energy_joules=0.0,
        total_energy_joules=0.0, energy_per_token_joules=0.0,
        prefill_steps=0, decode_steps=0, kv_budget_bytes=budget,
        peak_kv_reserved_bytes=0,
        cost_cache_hits=engine.costs.stats.hits,
        cost_cache_misses=engine.costs.stats.misses, requests=())
