"""Batching policies and the scheduler registry.

The continuous-batching engine (:mod:`repro.serving.simulator`) is policy-
agnostic: at every scheduling point it asks the active
:class:`SchedulerPolicy` how to order the waiting queue for admission and
whether admission may interrupt in-flight decodes.  Policies are plain
frozen dataclasses registered in an open ``SCHEDULER_REGISTRY`` — the same
pattern as the execution-unit and scenario registries — so new disciplines
plug in without touching the event loop.

Built-in policies:

* ``fcfs`` — admit in arrival order, interleaving prefills with decodes
  (classic continuous batching);
* ``shortest-prompt-first`` — admit the cheapest prompts first (SJF on the
  prefill cost proxy), trading long-prompt TTFT for mean TTFT;
* ``decode-priority`` — never interrupt a running batch: new requests are
  admitted only once every in-flight request has finished (static batching
  waves; the best-TPOT / worst-TTFT extreme).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.serving.simulator import LiveRequest


def _by_arrival(live: "LiveRequest") -> tuple:
    return (live.request.arrival_s, live.request.request_id)


def _by_prompt_length(live: "LiveRequest") -> tuple:
    return (live.request.input_tokens, live.request.arrival_s,
            live.request.request_id)


@dataclass(frozen=True)
class SchedulerPolicy:
    """One batching discipline of the continuous-batching engine."""

    name: str
    description: str
    #: Admission priority of a waiting request — *lower sorts first*, and the
    #: key must end in the unique ``request_id`` so ordering is total.  The
    #: engine keeps the waiting queue as a heap on this key and admits from
    #: the head, stopping at the first request that does not fit (no
    #: hole-filling, so the key fully determines head-of-line behaviour).
    priority: Callable[["LiveRequest"], tuple] = field(default=_by_arrival)
    #: Whether new requests may be admitted (prefilled) while other requests
    #: are still decoding.  ``False`` turns the engine into wave-style static
    #: batching.
    admit_during_decode: bool = True


#: Registered batching policies, addressable by name.
SCHEDULER_REGISTRY: dict[str, SchedulerPolicy] = {}


def register_scheduler(policy: SchedulerPolicy, overwrite: bool = False) -> None:
    """Add a batching policy to the registry.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is not set.
    """
    if policy.name in SCHEDULER_REGISTRY and not overwrite:
        raise ValueError(f"scheduler '{policy.name}' is already registered")
    SCHEDULER_REGISTRY[policy.name] = policy


def get_scheduler(name: str) -> SchedulerPolicy:
    """Look up a batching policy by name.

    Raises
    ------
    KeyError
        If the policy is unknown; the error lists the registered names.
    """
    try:
        return SCHEDULER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_REGISTRY))
        raise KeyError(
            f"unknown scheduler '{name}'; registered schedulers: {known}") from None


register_scheduler(SchedulerPolicy(
    name="fcfs",
    description="admit in arrival order, interleave prefills with decodes"))
register_scheduler(SchedulerPolicy(
    name="shortest-prompt-first",
    description="admit the shortest waiting prompts first",
    priority=_by_prompt_length))
register_scheduler(SchedulerPolicy(
    name="decode-priority",
    description="never interrupt decodes; admit only between batch waves",
    admit_during_decode=False))
