"""Request-routing policies and the router registry.

A cluster front-end sees every arriving request once and must pick a replica
for it before the replica's own scheduler ever runs.  The
:class:`~repro.serving.cluster.ClusterSimulator` is policy-agnostic: at each
arrival it hands the active :class:`RouterPolicy` the request, a snapshot of
every routable replica (:class:`ReplicaView`) and a :class:`RouterContext`,
and routes wherever the policy points.  Policies are plain frozen dataclasses
registered in an open ``ROUTER_REGISTRY`` — the same pattern as the
scheduler, execution-unit and scenario registries — so new disciplines plug
in without touching the cluster loop.

Built-in policies:

* ``round-robin`` — cycle through the routable replicas in index order
  (the classic L4 load balancer; blind to replica state);
* ``least-outstanding-requests`` — send to the replica with the fewest
  requests estimated still in flight (the standard ALB/gRPC pick);
* ``least-kv-pressure`` — send to the replica whose committed KV-cache
  fraction is lowest, which is what actually gates admission on an LLM
  serving engine (outstanding *tokens*, not outstanding requests);
* ``session-affinity`` — rendezvous-hash the request's session onto the
  routable replicas, so a session's requests keep hitting the same replica
  (prefix/KV reuse) while scaling events move as few sessions as possible.

Every policy is a pure function of its inputs, so routing — like everything
else in the serving stack — is bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.serving.trace import Request


@dataclass(frozen=True)
class ReplicaView:
    """Immutable snapshot of one routable replica at a routing instant.

    The load figures are the cluster front-end's *estimates* (a fluid queue
    drained at the replica's estimated service rate), not the replica
    engine's internal state — exactly the imperfect information a production
    router acts on.
    """

    index: int
    tpu_name: str
    devices: int
    max_batch: int
    #: Requests routed to the replica and estimated still in flight.
    outstanding_requests: int
    #: KV-cache tokens those requests commit once admitted.
    outstanding_tokens: int
    #: Estimated steady-state decode throughput of the replica.
    service_tokens_per_s: float
    kv_budget_bytes: int
    kv_bytes_per_token: int

    @property
    def kv_pressure(self) -> float:
        """Estimated committed fraction of the replica's KV budget."""
        if self.kv_budget_bytes <= 0:
            return float("inf")
        return self.outstanding_tokens * self.kv_bytes_per_token / self.kv_budget_bytes

    def fits(self, request: Request) -> bool:
        """Whether the request's full-context KV cache fits the budget."""
        return request.total_tokens * self.kv_bytes_per_token <= self.kv_budget_bytes


@dataclass(frozen=True)
class RouterContext:
    """Routing-instant facts that are fleet-wide rather than per-replica."""

    now_s: float
    #: Requests routed so far across the whole fleet (drives round-robin).
    routed_count: int
    fleet_size: int


def _session_key(request: Request) -> int:
    """The affinity key: the request's session, or the request itself."""
    return request.session_id if request.session_id is not None else request.request_id


def _rendezvous_weight(session: int, replica_index: int) -> str:
    """Deterministic highest-random-weight score of (session, replica)."""
    return hashlib.sha256(f"{session}/{replica_index}".encode("utf-8")).hexdigest()


def _round_robin(request: Request, candidates: Sequence[ReplicaView],
                 context: RouterContext) -> ReplicaView:
    return candidates[context.routed_count % len(candidates)]


def _least_outstanding(request: Request, candidates: Sequence[ReplicaView],
                       context: RouterContext) -> ReplicaView:
    return min(candidates, key=lambda view: (view.outstanding_requests, view.index))


def _least_kv_pressure(request: Request, candidates: Sequence[ReplicaView],
                       context: RouterContext) -> ReplicaView:
    return min(candidates, key=lambda view: (view.kv_pressure, view.index))


def _session_affinity(request: Request, candidates: Sequence[ReplicaView],
                      context: RouterContext) -> ReplicaView:
    session = _session_key(request)
    return max(candidates,
               key=lambda view: (_rendezvous_weight(session, view.index), -view.index))


@dataclass(frozen=True)
class RouterPolicy:
    """One request-routing discipline of the cluster front-end.

    ``choose`` picks a replica from a non-empty candidate tuple; candidates
    are the *routable* replicas (active, past any cold start, preferring
    those whose KV budget fits the request) in index order.  The policy must
    be deterministic — cluster runs are bit-for-bit reproducible.
    """

    name: str
    description: str
    choose: Callable[[Request, Sequence[ReplicaView], RouterContext], ReplicaView]


#: Registered routing policies, addressable by name.
ROUTER_REGISTRY: dict[str, RouterPolicy] = {}


def register_router(policy: RouterPolicy, overwrite: bool = False) -> None:
    """Add a routing policy to the registry.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is not set.
    """
    if policy.name in ROUTER_REGISTRY and not overwrite:
        raise ValueError(f"router '{policy.name}' is already registered")
    ROUTER_REGISTRY[policy.name] = policy


def get_router(name: str) -> RouterPolicy:
    """Look up a routing policy by name.

    Raises
    ------
    KeyError
        If the policy is unknown; the error lists the registered names.
    """
    try:
        return ROUTER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_REGISTRY))
        raise KeyError(
            f"unknown router '{name}'; registered routers: {known}") from None


register_router(RouterPolicy(
    name="round-robin",
    description="cycle through routable replicas in index order",
    choose=_round_robin))
register_router(RouterPolicy(
    name="least-outstanding-requests",
    description="route to the replica with the fewest requests in flight",
    choose=_least_outstanding))
register_router(RouterPolicy(
    name="least-kv-pressure",
    description="route to the replica with the lowest committed KV fraction",
    choose=_least_kv_pressure))
register_router(RouterPolicy(
    name="session-affinity",
    description="rendezvous-hash sessions onto replicas for KV reuse",
    choose=_session_affinity))
