"""Per-step serving costs, memoised over the scenario pipeline's simulator.

The discrete-event scheduler needs two primitive costs: one **prefill step**
(a batch of admitted prompts pushed through every layer of the model) and
one **decode step** (one token generated for every running request).  Both
come from the same layer graphs the analytical scenarios price — built via
the model's ``build_layer`` hook and executed through an
:class:`~repro.core.simulator.InferenceSimulator`, which in sweeps is the
memoised :class:`~repro.sweep.cache.CachingInferenceSimulator`.

Context lengths are **bucketed** (rounded up to a configurable granularity)
before they reach the graph builder, so a 100k-request trace re-prices only
the distinct ``(phase, batch, context-bucket)`` states it visits; everything
else is a dictionary lookup.  The memo counts hits and misses so reports can
state the cache hit rate the <10 s acceptance budget relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision, ceil_div
from repro.core.simulator import InferenceSimulator
from repro.sweep.cache import CacheStats
from repro.workloads.llm import LLMConfig


@dataclass(frozen=True)
class StepCost:
    """Latency and energy of one scheduler step on the whole model."""

    seconds: float
    mxu_energy_joules: float
    total_energy_joules: float


class StepCostModel:
    """Memoised ``(phase, batch, context-bucket) -> StepCost`` pricing.

    One instance serves one ``(model, chip, precision)`` triple; the
    underlying simulator may additionally share its graph cache with a sweep
    engine, in which case even the first lookup of a state another sweep
    point has visited does no simulation work.
    """

    def __init__(self, model: LLMConfig, simulator: InferenceSimulator,
                 precision: Precision = Precision.INT8,
                 bucket_tokens: int = 256) -> None:
        if bucket_tokens <= 0:
            raise ValueError("bucket_tokens must be positive")
        self.model = model
        self.simulator = simulator
        self.precision = precision
        self.bucket_tokens = bucket_tokens
        self.stats = CacheStats()
        self._memo: dict[tuple[str, int, int], StepCost] = {}

    def bucket(self, tokens: int) -> int:
        """Round a token count up to its pricing bucket."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        return ceil_div(tokens, self.bucket_tokens) * self.bucket_tokens

    @property
    def distinct_states(self) -> int:
        """Number of distinct (phase, batch, bucket) states priced so far."""
        return len(self._memo)

    def prefill_cost(self, batch: int, input_tokens: int) -> StepCost:
        """Cost of prefilling ``batch`` prompts of (bucketed) length."""
        return self._step("prefill", batch, self.bucket(input_tokens))

    def decode_cost(self, batch: int, context_tokens: int) -> StepCost:
        """Cost of one decode token for ``batch`` requests at a (bucketed)
        KV-cache length."""
        return self._step("decode", batch, self.bucket(context_tokens))

    # --------------------------------------------------------------- internal
    def _step(self, phase: str, batch: int, bucket: int) -> StepCost:
        if batch <= 0:
            raise ValueError("batch must be positive")
        key = (phase, batch, bucket)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        graph = self.model.build_layer(phase, batch, bucket, kv_len=bucket,
                                       precision=self.precision)
        result = self.simulator.run_graph(graph)
        layers = self.model.num_layers
        cost = StepCost(seconds=result.total_seconds * layers,
                        mxu_energy_joules=result.mxu_energy * layers,
                        total_energy_joules=result.total_energy.total * layers)
        self._memo[key] = cost
        return cost
