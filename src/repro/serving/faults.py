"""Deterministic fault injection for cluster serving runs.

Production fleets do not stay healthy: replicas crash and restart, nodes
degrade (thermal throttling, noisy neighbours), admission paths stall.
This module describes such incidents as data — a :class:`FaultSpec` names a
registered fault *model* plus its parameters, and the model expands into a
concrete, seed-deterministic timeline of :class:`FaultEvent` effects that
:class:`~repro.serving.cluster.ClusterSimulator` applies during the routing
pre-pass.

Design points, stated explicitly:

* **Specs are data, events are derived.**  A :class:`FaultSpec` is a small
  frozen dataclass of primitives, so it travels on
  :class:`~repro.serving.spec.ServingSpec`, fingerprints into the sweep and
  store keys, and crosses sweep axes like every other knob.  The event
  timeline is a pure function of ``(spec, fleet_size, span)`` — cached and
  fresh chaos runs therefore agree bit for bit.
* **Seeded, not sampled.**  Stochastic onsets draw from per-replica
  ``random.Random`` streams seeded from the spec's own seed (string seeds
  hash via SHA-512 inside CPython's ``Random.seed``, independent of
  ``PYTHONHASHSEED``), so a fault schedule is reproducible across
  processes, platforms and store round trips.
* **Three effects.**  Every model reduces to the effects the cluster
  understands: ``crash`` (the replica dies, drains its in-flight work back
  to the router and restarts after ``duration_s`` plus the autoscaler's
  cold start), ``slow`` (step *durations* on the replica are multiplied by
  ``magnitude`` for ``duration_s`` — a throttling model, energy per step
  unchanged), and ``stall`` (the replica refuses new admissions for
  ``duration_s`` while in-flight work continues).
* **Open registry.**  Models live in ``FAULT_REGISTRY`` under the same
  register/get contract as schedulers, routers and autoscalers; registering
  a new model makes it addressable from specs, grids and ``--faults`` with
  no simulator changes.

Built-in models: ``replica-crash``, ``slow-node``, ``admission-stall``.
Each draws Poisson onsets at rate ``1 / mttf_s`` per targeted replica, or —
when ``at_s`` is set — fires exactly once at that offset, which is what the
hand-built timelines in the resilience tests (and reproducible demo runs)
use.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

#: Effects a fault event can have on a replica (see module docstring).
FAULT_EFFECTS = ("crash", "slow", "stall")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault source: a registered model plus its parameters.

    ``mttf_s`` is the mean time between onsets *per targeted replica*;
    ``at_s`` (offset from the first arrival) replaces the stochastic onsets
    with a single deterministic one.  ``replica`` targets one replica index
    (``None`` targets every replica).  ``magnitude`` is the step-duration
    multiplier of slow-node degradation and is ignored by the other models.
    """

    kind: str
    mttf_s: float = 600.0
    #: Outage / degradation window length (the MTTR of a crash).
    duration_s: float = 20.0
    magnitude: float = 2.0
    at_s: float | None = None
    replica: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("fault spec needs a model kind")
        if self.mttf_s <= 0:
            raise ValueError("mttf_s must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.magnitude < 1.0:
            raise ValueError("magnitude must be >= 1 (a slowdown factor)")
        if self.at_s is not None and self.at_s < 0:
            raise ValueError("at_s must be non-negative (or None)")
        if self.replica is not None and self.replica < 0:
            raise ValueError("replica must be non-negative (or None)")

    def summary(self) -> str:
        """Human-readable spec summary used in tables and exports."""
        onset = (f"@{self.at_s:g}s" if self.at_s is not None
                 else f"mttf={self.mttf_s:g}s")
        target = "*" if self.replica is None else str(self.replica)
        return f"{self.kind}[{onset} d={self.duration_s:g}s r={target}]"


@dataclass(frozen=True)
class FaultEvent:
    """One concrete effect of a fault model on one replica.

    ``time_s`` is the offset from the first trace arrival (the cluster
    shifts it to absolute time), so the same spec produces the same
    timeline whether the trace starts at 0 or mid-day.
    """

    time_s: float
    replica: int
    effect: str
    duration_s: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.effect not in FAULT_EFFECTS:
            raise ValueError(f"unknown fault effect '{self.effect}' "
                             f"(expected one of {', '.join(FAULT_EFFECTS)})")
        if self.time_s < 0 or self.duration_s <= 0:
            raise ValueError("fault events need time_s >= 0 and duration_s > 0")


@dataclass(frozen=True)
class FaultModel:
    """One registered fault discipline: expands a spec into events.

    ``events`` maps ``(spec, fleet_size, span_s)`` to the event timeline on
    ``[0, span_s]`` and must be deterministic in its arguments — the
    content-addressing of chaos runs depends on it.
    """

    name: str
    description: str
    events: Callable[[FaultSpec, int, float], tuple[FaultEvent, ...]]


#: Registered fault models, addressable by name from specs, grids and CLI.
FAULT_REGISTRY: dict[str, FaultModel] = {}


def register_fault(model: FaultModel, overwrite: bool = False) -> None:
    """Add a fault model to the registry.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is not set.
    """
    if model.name in FAULT_REGISTRY and not overwrite:
        raise ValueError(f"fault model '{model.name}' is already registered")
    FAULT_REGISTRY[model.name] = model


def get_fault(name: str) -> FaultModel:
    """Look up a fault model by name.

    Raises
    ------
    KeyError
        If the model is unknown; the error lists the registered names.
    """
    try:
        return FAULT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_REGISTRY))
        raise KeyError(
            f"unknown fault model '{name}'; registered models: {known}") from None


def _onsets(spec: FaultSpec, replica: int, span_s: float) -> list[float]:
    """Onset offsets of one spec on one replica over ``[0, span_s]``.

    A pinned ``at_s`` fires once (if within the span); otherwise onsets are
    a Poisson process at rate ``1 / mttf_s`` from a per-replica stream, so
    timelines on different replicas are independent yet reproducible.
    """
    if spec.at_s is not None:
        return [spec.at_s] if spec.at_s <= span_s else []
    rng = random.Random(f"fault/{spec.kind}/{spec.seed}/{replica}")
    onsets: list[float] = []
    clock = rng.expovariate(1.0 / spec.mttf_s)
    while clock <= span_s:
        onsets.append(clock)
        clock += spec.duration_s + rng.expovariate(1.0 / spec.mttf_s)
    return onsets


def _targets(spec: FaultSpec, fleet_size: int) -> range:
    if spec.replica is None:
        return range(fleet_size)
    if spec.replica >= fleet_size:
        raise ValueError(f"fault spec targets replica {spec.replica} but the "
                         f"fleet has only {fleet_size} replicas")
    return range(spec.replica, spec.replica + 1)


def _effect_model(name: str, effect: str, description: str) -> FaultModel:
    """A model whose every onset produces one event of a fixed effect."""

    def events(spec: FaultSpec, fleet_size: int, span_s: float,
               ) -> tuple[FaultEvent, ...]:
        magnitude = spec.magnitude if effect == "slow" else 1.0
        return tuple(FaultEvent(time_s=onset, replica=replica, effect=effect,
                                duration_s=spec.duration_s, magnitude=magnitude)
                     for replica in _targets(spec, fleet_size)
                     for onset in _onsets(spec, replica, span_s))

    return FaultModel(name=name, description=description, events=events)


register_fault(_effect_model(
    "replica-crash", "crash",
    "replica dies (in-flight work re-routed), restarts after duration_s "
    "plus the autoscaler's cold start"))
register_fault(_effect_model(
    "slow-node", "slow",
    "step durations on the replica are multiplied by magnitude for "
    "duration_s (throttling / noisy neighbour)"))
register_fault(_effect_model(
    "admission-stall", "stall",
    "the replica refuses new admissions for duration_s while in-flight "
    "work continues"))


def fault_timeline(faults: Sequence[FaultSpec], fleet_size: int,
                   span_s: float) -> tuple[FaultEvent, ...]:
    """Expand fault specs into one time-ordered event timeline.

    Pure in its arguments: the same specs over the same fleet and arrival
    span always produce the identical tuple, which is what lets the sweep
    and store fingerprints content-address chaos runs by their specs alone.

    Raises
    ------
    KeyError
        On a spec naming an unregistered fault model.
    ValueError
        On a spec pinned to a replica index outside the fleet.
    """
    if fleet_size <= 0:
        raise ValueError("fault timelines need a positive fleet size")
    events: list[FaultEvent] = []
    for spec in faults:
        events.extend(get_fault(spec.kind).events(spec, fleet_size, max(0.0, span_s)))
    return tuple(sorted(events, key=lambda e: (e.time_s, e.replica, e.effect,
                                               e.duration_s, e.magnitude)))


# --------------------------------------------------------------- CLI parsing
_FIELD_TYPES: dict[str, Callable[[str], object]] = {
    "mttf_s": float, "duration_s": float, "magnitude": float,
    "at_s": float, "replica": int, "seed": int,
}


def parse_fault(text: str) -> FaultSpec:
    """Parse a compact CLI fault description into a :class:`FaultSpec`.

    Format: ``<kind>[:field=value,field=value,...]`` — e.g.
    ``replica-crash:mttf_s=3600,duration_s=30`` or
    ``slow-node:at_s=10,duration_s=60,magnitude=2.5,replica=1``.

    Raises
    ------
    ValueError
        On malformed text, unknown fields or invalid field values.
    KeyError
        On an unregistered fault model kind.
    """
    kind, _, rest = text.strip().partition(":")
    if not kind:
        raise ValueError(f"cannot parse fault '{text}': expected "
                         "'<kind>[:field=value,...]'")
    get_fault(kind)  # validate the model early, with the registry's message
    fields: dict[str, object] = {}
    for item in filter(None, (part.strip() for part in rest.split(","))):
        name, sep, raw = item.partition("=")
        name = name.strip()
        if not sep or name not in _FIELD_TYPES:
            known = ", ".join(sorted(_FIELD_TYPES))
            raise ValueError(f"cannot parse fault field '{item}' in '{text}'; "
                             f"known fields: {known}")
        try:
            fields[name] = _FIELD_TYPES[name](raw.strip())
        except ValueError:
            raise ValueError(f"invalid value '{raw.strip()}' for fault field "
                             f"'{name}' in '{text}'") from None
    return FaultSpec(kind=kind, **fields)
