"""Per-request and aggregate serving metrics.

The serving simulator's output mirrors what a production inference service
measures: per-request **TTFT** (time to first token), **TPOT** (time per
output token after the first) and end-to-end latency, aggregated into
percentile summaries, **goodput** under a latency SLO (the rate of requests
that met *both* the TTFT and TPOT targets), device utilisation and energy
per generated token.  Everything is a frozen dataclass with a ``to_dict``
hook, so reports and per-request rows export through the generic encoders in
:mod:`repro.sweep.export` exactly like sweep rows do.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Deterministic and dependency-free (no numpy): sorts the values and
    interpolates between the two straddling order statistics, matching
    numpy's default ("linear") definition.

    Raises
    ------
    ValueError
        If ``values`` is empty or ``q`` is outside [0, 100].
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return _percentile_sorted(sorted(values), q)


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` on an already-sorted non-empty sequence."""
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * (q / 100.0)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass(frozen=True)
class SLO:
    """A latency service-level objective on serving requests.

    A completed request *meets* the SLO when its TTFT and its TPOT are both
    within the targets — the standard way LLM serving papers define goodput.
    """

    ttft_s: float = 1.0
    tpot_s: float = 0.1

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.tpot_s <= 0:
            raise ValueError("SLO targets must be positive")

    def summary(self) -> str:
        """Human-readable SLO summary used in tables and exports."""
        return f"ttft<={self.ttft_s * 1e3:.0f}ms tpot<={self.tpot_s * 1e3:.0f}ms"


@dataclass(frozen=True)
class RequestMetrics:
    """Measured timeline of one completed request."""

    request_id: int
    arrival_s: float
    input_tokens: int
    output_tokens: int
    first_token_s: float
    finish_s: float
    ttft_s: float
    tpot_s: float
    e2e_s: float
    #: Whether the request was drained off a crashed replica and re-routed
    #: mid-flight (its client stream broke); latencies are still measured
    #: from the original arrival, so the disruption shows up as real delay.
    disrupted: bool = False

    def __post_init__(self) -> None:
        if self.first_token_s < self.arrival_s or self.finish_s < self.first_token_s:
            raise ValueError("request timeline must be ordered "
                             "(arrival <= first token <= finish)")

    @classmethod
    def from_times(cls, request_id: int, arrival_s: float, input_tokens: int,
                   output_tokens: int, first_token_s: float,
                   finish_s: float, disrupted: bool = False) -> "RequestMetrics":
        """Derive TTFT/TPOT/e2e from the raw event times.

        TPOT averages the decode steps *after* the first token; a
        single-token request has no decode steps and reports a TPOT of zero.
        """
        decode_tokens = output_tokens - 1
        tpot = (finish_s - first_token_s) / decode_tokens if decode_tokens > 0 else 0.0
        return cls(request_id=request_id, arrival_s=arrival_s,
                   input_tokens=input_tokens, output_tokens=output_tokens,
                   first_token_s=first_token_s, finish_s=finish_s,
                   ttft_s=first_token_s - arrival_s, tpot_s=tpot,
                   e2e_s=finish_s - arrival_s, disrupted=disrupted)

    def meets(self, slo: SLO) -> bool:
        """Whether the request met both targets of the SLO."""
        return self.ttft_s <= slo.ttft_s and self.tpot_s <= slo.tpot_s

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by the JSON/CSV exporters."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one latency distribution (seconds)."""

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarise a non-empty sequence of latencies.

        Sorts once and interpolates the three percentiles off the sorted
        copy (the exact arithmetic of :func:`percentile`), so summarising a
        250k-request run costs one sort instead of three.
        """
        ordered = sorted(values)
        return cls(mean_s=sum(values) / len(values),
                   p50_s=_percentile_sorted(ordered, 50.0),
                   p95_s=_percentile_sorted(ordered, 95.0),
                   p99_s=_percentile_sorted(ordered, 99.0),
                   max_s=ordered[-1])

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The all-zero summary used when no request completed."""
        return cls(mean_s=0.0, p50_s=0.0, p95_s=0.0, p99_s=0.0, max_s=0.0)


def slo_debt_s(request: RequestMetrics, slo: SLO) -> float:
    """Latency debt of one request beyond the SLO targets, in seconds.

    The TTFT overshoot plus the per-token TPOT overshoot summed over the
    decode steps — zero for a request that met the SLO, and a *graded*
    penalty (unlike the binary ``meets``) for one that missed it.
    """
    decode_tokens = max(0, request.output_tokens - 1)
    return (max(0.0, request.ttft_s - slo.ttft_s)
            + decode_tokens * max(0.0, request.tpot_s - slo.tpot_s))


@dataclass(frozen=True)
class ResilienceSummary:
    """Resilience outcomes of one fleet run under injected faults.

    All fields are exact functions of the run's per-request metrics and
    fault/outage bookkeeping, so a summary decoded from the result store is
    bit-for-bit the computed one.  ``recovery_s`` is ``0.0`` when no crash
    occurred and ``inf`` when attainment never re-reached the target after
    some crash — the value a ``recovery_s<=30`` constraint correctly fails.
    """

    #: Fault events injected into the run / the crashes among them that
    #: actually felled an active replica.
    fault_count: int
    crash_count: int
    #: Completed requests that were drained off a crashed replica, and
    #: admitted requests no replica could take at all (see the cluster's
    #: conservation contract: completed + rejected + shed == num_requests).
    disrupted_requests: int
    shed_requests: int
    #: Replica-seconds lost to outages, and the resulting uptime fraction
    #: of the provisioned (billed) replica-time: up / (up + down), 1.0 for
    #: a fault-free run, provably <= 1 since both terms are non-negative.
    downtime_replica_s: float
    availability: float
    #: Worst time from a crash to windowed SLO attainment re-reaching the
    #: recovery target (see :meth:`compute`).
    recovery_s: float
    #: Summed latency debt beyond the SLO targets over completed requests.
    slo_debt_s: float
    #: Goodput counting only undisrupted SLO-meeting requests — the work
    #: the fleet delivered *as if healthy* while faults were active.
    goodput_under_failure_requests_per_second: float
    goodput_under_failure_tokens_per_second: float

    @classmethod
    def clean(cls) -> "ResilienceSummary":
        """The no-faults summary (used before any chaos accounting runs)."""
        return cls(fault_count=0, crash_count=0, disrupted_requests=0,
                   shed_requests=0, downtime_replica_s=0.0, availability=1.0,
                   recovery_s=0.0, slo_debt_s=0.0,
                   goodput_under_failure_requests_per_second=0.0,
                   goodput_under_failure_tokens_per_second=0.0)

    @classmethod
    def compute(cls, requests: Sequence[RequestMetrics], slo: SLO, *,
                fault_count: int, crash_times: Sequence[float],
                downtime_replica_s: float, provisioned_replica_s: float,
                shed: int, start_s: float, end_s: float,
                window_s: float = 5.0,
                recovery_target: float = 0.95) -> "ResilienceSummary":
        """Derive the summary from completed requests and outage bookkeeping.

        Recovery time is measured against the run's windowed SLO
        attainment: completions are bucketed into ``window_s`` windows from
        ``start_s``, and each crash's recovery is the gap from the crash to
        the end of the first later (non-empty) window whose attainment
        reaches ``recovery_target`` — ``inf`` if none does before the run
        ends.  The reported ``recovery_s`` is the worst crash's.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0 < recovery_target <= 1:
            raise ValueError("recovery_target must be in (0, 1]")
        makespan = end_s - start_s
        per_second = (1.0 / makespan) if makespan > 0 else 0.0
        healthy = [m for m in requests if not m.disrupted and m.meets(slo)]
        recovery = 0.0
        if crash_times:
            windows: dict[int, list[bool]] = {}
            for metric in requests:
                index = int((metric.finish_s - start_s) // window_s)
                windows.setdefault(index, []).append(metric.meets(slo))
            recovered_ends = sorted(
                start_s + (index + 1) * window_s
                for index, met in windows.items()
                if sum(met) / len(met) >= recovery_target)
            recovery = max(
                (next((end - crash for end in recovered_ends if end > crash),
                      float("inf"))
                 for crash in crash_times))
        return cls(
            fault_count=fault_count, crash_count=len(crash_times),
            disrupted_requests=sum(1 for m in requests if m.disrupted),
            shed_requests=shed,
            downtime_replica_s=downtime_replica_s,
            availability=(provisioned_replica_s
                          / (provisioned_replica_s + downtime_replica_s)
                          if provisioned_replica_s + downtime_replica_s > 0
                          else 1.0),
            recovery_s=recovery,
            slo_debt_s=sum(slo_debt_s(m, slo) for m in requests),
            goodput_under_failure_requests_per_second=len(healthy) * per_second,
            goodput_under_failure_tokens_per_second=(
                sum(m.output_tokens for m in healthy) * per_second))


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one simulated serving run."""

    model_name: str
    tpu_name: str
    scheduler: str
    devices: int
    #: Requests in the trace / completed / rejected at admission (a rejected
    #: request's KV cache would exceed the device memory even running alone).
    num_requests: int
    completed: int
    rejected: int
    #: Simulated wall-clock span (first arrival to last completion).
    makespan_s: float
    #: Simulated seconds the device spent executing prefill/decode steps.
    busy_s: float
    total_tokens: int
    tokens_per_second: float
    requests_per_second: float
    ttft: LatencySummary
    tpot: LatencySummary
    e2e: LatencySummary
    slo: SLO
    #: Fraction of completed requests meeting the SLO, and the goodput
    #: (SLO-meeting work per simulated second) it implies.
    slo_attainment: float
    goodput_requests_per_second: float
    goodput_tokens_per_second: float
    mxu_energy_joules: float
    total_energy_joules: float
    energy_per_token_joules: float
    #: Scheduler step counts: prefill batches and decode step events (each
    #: decode event advances every running request by a chunk of tokens).
    prefill_steps: int
    decode_steps: int
    #: KV admission accounting: the budget requests reserve against and the
    #: peak reservation ever committed (never exceeds the budget).
    kv_budget_bytes: int
    peak_kv_reserved_bytes: int
    #: Step-cost cache behaviour: distinct (phase, batch, context-bucket)
    #: states actually priced vs. step-cost lookups served from the memo.
    cost_cache_hits: int
    cost_cache_misses: int
    requests: tuple[RequestMetrics, ...] = ()

    @property
    def utilisation(self) -> float:
        """Fraction of the makespan the device was executing steps."""
        return self.busy_s / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def cost_cache_hit_rate(self) -> float:
        """Fraction of step-cost lookups served from the memo."""
        lookups = self.cost_cache_hits + self.cost_cache_misses
        return self.cost_cache_hits / lookups if lookups else 0.0

    def to_dict(self, include_requests: bool = True) -> dict[str, object]:
        """Plain-dict form (nested summaries inlined) for JSON export."""
        payload = dataclasses.asdict(self)
        payload["utilisation"] = self.utilisation
        payload["cost_cache_hit_rate"] = self.cost_cache_hit_rate
        if not include_requests:
            del payload["requests"]
        else:
            payload["requests"] = [request.to_dict() for request in self.requests]
        return payload
