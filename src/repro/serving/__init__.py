"""Discrete-event serving simulator on top of the analytical cost model.

The :mod:`repro.serving` package turns the repository's per-step cost model
into a deployment study: seeded request traces (Poisson / bursty / diurnal
arrival processes over the chat request mixes, or JSONL files), a
continuous-batching scheduler with pluggable policies and KV-cache admission
control, and SLO analytics (TTFT/TPOT/e2e percentiles, goodput, utilisation,
energy per token).

Typical usage::

    from repro.serving import (
        ServingSimulator, SLO, generate_trace,
    )
    from repro.core.designs import tpuv4i_baseline
    from repro.workloads.chat import DEFAULT_REQUEST_MIX
    from repro.workloads.llm import LLAMA2_7B

    trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, rate=8.0,
                           num_requests=1000, seed=7)
    report = ServingSimulator(LLAMA2_7B, tpuv4i_baseline()).run(
        trace, slo=SLO(ttft_s=0.5, tpot_s=0.05))
    print(report.ttft.p99_s, report.goodput_requests_per_second)
"""

from repro.serving.costs import StepCost, StepCostModel
from repro.serving.metrics import (
    SLO,
    LatencySummary,
    RequestMetrics,
    ServingReport,
    percentile,
)
from repro.serving.scheduler import (
    SCHEDULER_REGISTRY,
    SchedulerPolicy,
    get_scheduler,
    register_scheduler,
)
from repro.serving.simulator import LiveRequest, ServingSimulator, simulate_serving
from repro.serving.spec import ServingSpec
from repro.serving.trace import (
    TRACE_REGISTRY,
    Request,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    load_trace_jsonl,
    poisson_trace,
    register_trace,
    request_classes_from_settings,
    write_trace_jsonl,
)

__all__ = [
    "StepCost",
    "StepCostModel",
    "SLO",
    "LatencySummary",
    "RequestMetrics",
    "ServingReport",
    "percentile",
    "SCHEDULER_REGISTRY",
    "SchedulerPolicy",
    "get_scheduler",
    "register_scheduler",
    "LiveRequest",
    "ServingSimulator",
    "simulate_serving",
    "ServingSpec",
    "TRACE_REGISTRY",
    "Request",
    "bursty_trace",
    "diurnal_trace",
    "generate_trace",
    "load_trace_jsonl",
    "poisson_trace",
    "register_trace",
    "request_classes_from_settings",
    "write_trace_jsonl",
]
