"""Discrete-event serving simulator on top of the analytical cost model.

The :mod:`repro.serving` package turns the repository's per-step cost model
into a deployment study: seeded request traces (Poisson / bursty / diurnal
arrival processes over the chat request mixes, or JSONL files), a
continuous-batching scheduler with pluggable policies and KV-cache admission
control, SLO analytics (TTFT/TPOT/e2e percentiles, goodput, utilisation,
energy per token) — and, at the fleet layer, a :class:`ClusterSimulator`
that routes one trace across many replicas behind pluggable router and
autoscaler policies and prices the fleet (chip-hours, cost per million
tokens).

Typical usage::

    from repro.serving import (
        ClusterSimulator, ServingSimulator, SLO, generate_trace,
    )
    from repro.core.designs import design_a
    from repro.workloads.chat import DEFAULT_REQUEST_MIX
    from repro.workloads.llm import LLAMA2_7B

    trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, rate=64.0,
                           num_requests=2000, seed=7)
    replicas = [ServingSimulator(LLAMA2_7B, design_a()) for _ in range(4)]
    report = ClusterSimulator(replicas, router="least-kv-pressure",
                              autoscaler="queue-depth").run(
        trace, slo=SLO(ttft_s=0.5, tpot_s=0.05))
    print(report.ttft.p99_s, report.cost_per_million_tokens_dollars)
"""

from repro.serving.autoscaler import (
    AUTOSCALER_REGISTRY,
    AutoscalerPolicy,
    FleetView,
    fixed_autoscaler,
    forecasting_autoscaler,
    get_autoscaler,
    queue_depth_autoscaler,
    register_autoscaler,
    utilisation_target_autoscaler,
)
from repro.serving.cluster import (
    ClusterReport,
    ClusterSimulator,
    FleetCostModel,
    ReplicaSummary,
    cluster_report_from_dict,
    cluster_run_key,
    simulate_cluster,
)
from repro.serving.costs import StepCost, StepCostModel
from repro.serving.faults import (
    FAULT_REGISTRY,
    FaultEvent,
    FaultModel,
    FaultSpec,
    fault_timeline,
    get_fault,
    parse_fault,
    register_fault,
)
from repro.serving.fluid import estimate_serving
from repro.serving.metrics import (
    SLO,
    LatencySummary,
    RequestMetrics,
    ResilienceSummary,
    ServingReport,
    percentile,
    slo_debt_s,
)
from repro.serving.router import (
    ROUTER_REGISTRY,
    ReplicaView,
    RouterContext,
    RouterPolicy,
    get_router,
    register_router,
)
from repro.serving.scheduler import (
    SCHEDULER_REGISTRY,
    SchedulerPolicy,
    get_scheduler,
    register_scheduler,
)
from repro.serving.simulator import (
    SERVING_STORE_KIND,
    LiveRequest,
    ServingSimulator,
    serving_report_from_dict,
    serving_run_key,
    simulate_serving,
)
from repro.serving.spec import ServingSpec
from repro.serving.trace import (
    OVERLAY_REGISTRY,
    TRACE_REGISTRY,
    OverlaySpec,
    Request,
    apply_overlay,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    get_overlay,
    load_trace_jsonl,
    parse_overlay,
    poisson_trace,
    register_overlay,
    register_trace,
    request_classes_from_settings,
    write_trace_jsonl,
)

__all__ = [
    "AUTOSCALER_REGISTRY",
    "AutoscalerPolicy",
    "FleetView",
    "fixed_autoscaler",
    "forecasting_autoscaler",
    "get_autoscaler",
    "queue_depth_autoscaler",
    "register_autoscaler",
    "utilisation_target_autoscaler",
    "ClusterReport",
    "ClusterSimulator",
    "FleetCostModel",
    "ReplicaSummary",
    "cluster_report_from_dict",
    "cluster_run_key",
    "simulate_cluster",
    "StepCost",
    "StepCostModel",
    "FAULT_REGISTRY",
    "FaultEvent",
    "FaultModel",
    "FaultSpec",
    "fault_timeline",
    "get_fault",
    "parse_fault",
    "register_fault",
    "estimate_serving",
    "SLO",
    "LatencySummary",
    "RequestMetrics",
    "ResilienceSummary",
    "ServingReport",
    "percentile",
    "slo_debt_s",
    "ROUTER_REGISTRY",
    "ReplicaView",
    "RouterContext",
    "RouterPolicy",
    "get_router",
    "register_router",
    "SCHEDULER_REGISTRY",
    "SchedulerPolicy",
    "get_scheduler",
    "register_scheduler",
    "LiveRequest",
    "ServingSimulator",
    "SERVING_STORE_KIND",
    "serving_report_from_dict",
    "serving_run_key",
    "simulate_serving",
    "ServingSpec",
    "OVERLAY_REGISTRY",
    "TRACE_REGISTRY",
    "OverlaySpec",
    "Request",
    "apply_overlay",
    "bursty_trace",
    "diurnal_trace",
    "generate_trace",
    "get_overlay",
    "load_trace_jsonl",
    "parse_overlay",
    "poisson_trace",
    "register_overlay",
    "register_trace",
    "request_classes_from_settings",
    "write_trace_jsonl",
]
