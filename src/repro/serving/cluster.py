"""Multi-replica fleet simulation: routing, autoscaling and fleet economics.

PR 3's :class:`~repro.serving.simulator.ServingSimulator` models one
deployment — one scheduler, one pipeline-parallel group, one arrival stream.
Production serving stacks put a *router* and an *autoscaler* in front of many
such deployments, and that fleet layer is where capacity, cost-per-token and
tail-latency trade-offs are actually decided.  :class:`ClusterSimulator`
composes N replicas — possibly heterogeneous in chip design, device count,
batching limit or scheduler — behind a pluggable
:class:`~repro.serving.router.RouterPolicy` and
:class:`~repro.serving.autoscaler.AutoscalerPolicy` and rolls the per-replica
reports into one frozen :class:`ClusterReport`.

How the fleet is simulated, stated explicitly:

* **Route first, then replay.**  One seeded arrival trace is split across
  replicas in a deterministic pre-pass: at each arrival the autoscaler is
  consulted, then the router picks among the routable replicas (active, past
  cold start, preferring ones whose KV budget fits the request).  Each
  replica then replays its sub-trace through the full continuous-batching
  event loop.  Replicas do not interact mid-flight — true for production
  fleets too, where the router is the only coupling point.
* **Routing sees estimates, not oracle state.**  The front-end tracks each
  replica with a queueing estimate shaped like the engine itself: prefill
  occupies the replica serially (one prompt at a time, priced by the
  replica's own cost model at the request's bucketed length) and decode
  occupies one of ``max_batch`` concurrent slots for ``output_tokens``
  full-batch decode steps.  Heterogeneous replicas therefore attract load
  proportional to their actual speed, but the router never peeks at event-
  loop internals a real load balancer could not see.
* **Autoscaling pays its costs.**  Scale-out suffers the policy's cold-start
  delay before a replica becomes routable; scale-in is hysteresis-guarded
  and always releases the highest-indexed replica, so the fleet never flaps
  and replicas below ``min_replicas`` never drain.  The replica-count
  timeline is part of the report, and fleet economics (chip-hours and
  energy → cost per million tokens) are priced from it.
* **Faults act at the routing layer.**  Injected
  :class:`~repro.serving.faults.FaultSpec` sources expand into a
  deterministic event timeline merged with the arrivals.  A **crash** fells
  the replica at its onset: billing stops, the front-end's estimated
  in-flight requests drain back to the router and are re-routed immediately
  (their completed metrics are fixed up to the *original* arrival and
  flagged ``disrupted``, so the disruption shows up as real latency), and
  the replica restarts ``duration_s`` later, paying the autoscaler's cold
  start before it is routable again.  **Slow** windows multiply the
  replica's step durations during its replay (the front end stays blind to
  them — unplanned degradation is exactly what routing estimates miss), and
  **stall** windows make the replica unroutable while in-flight work
  continues.  Conservation holds throughout: every trace request completes,
  is rejected at admission, or is counted as shed.

Determinism: the pre-pass, the fault timeline and every replica replay are
pure functions of the trace and the configuration, so a cluster run —
chaos included — is bit-for-bit reproducible: the acceptance property the
CI determinism checks pin.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common import Precision
from repro.serving.autoscaler import AutoscalerPolicy, FleetView, get_autoscaler
from repro.serving.faults import FaultEvent, FaultSpec, fault_timeline
from repro.serving.metrics import (
    SLO,
    LatencySummary,
    RequestMetrics,
    ResilienceSummary,
    ServingReport,
)
from repro.obs.telemetry import Telemetry
from repro.serving.router import ReplicaView, RouterContext, RouterPolicy, get_router
from repro.serving.simulator import ServingSimulator, emit_report_summary
from repro.serving.spec import ServingSpec
from repro.serving.trace import Request, generate_trace, request_classes_from_settings
from repro.sweep.cache import CachingInferenceSimulator
from repro.sweep.fingerprint import fingerprint
from repro.sweep.store import decode_dataclass

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sweep.store import ResultStore

#: Store namespace of persisted fleet reports (see repro.sweep.store).
STORE_KIND = "cluster-report"


@dataclass(frozen=True)
class FleetCostModel:
    """Dollar pricing of a fleet run: amortised chip-hours plus energy.

    ``chip_hour_dollars`` amortises capex/hosting per accelerator-hour (a
    replica with 4 devices active for an hour bills 4 chip-hours);
    ``energy_dollars_per_kwh`` prices the simulated energy draw.  The
    defaults are deliberately round placeholders — the point is comparing
    fleet configurations under one consistent price sheet, not absolute
    dollar accuracy.
    """

    chip_hour_dollars: float = 1.50
    energy_dollars_per_kwh: float = 0.12

    def __post_init__(self) -> None:
        if self.chip_hour_dollars < 0 or self.energy_dollars_per_kwh < 0:
            raise ValueError("fleet prices must be non-negative")

    def run_dollars(self, chip_hours: float, energy_joules: float) -> float:
        """Total cost of a run with the given chip-hours and energy."""
        return (chip_hours * self.chip_hour_dollars
                + energy_joules / 3.6e6 * self.energy_dollars_per_kwh)


@dataclass(frozen=True)
class ReplicaSummary:
    """Flat per-replica outcome row (CSV-exportable: no nested fields)."""

    index: int
    tpu_name: str
    scheduler: str
    devices: int
    #: Simulated seconds the replica was provisioned (activation spans).
    active_s: float
    #: Simulated seconds the replica spent executing prefill/decode steps.
    busy_s: float
    utilisation: float
    requests_routed: int
    completed: int
    rejected: int
    total_tokens: int
    tokens_per_second: float
    mxu_energy_joules: float
    total_energy_joules: float
    kv_budget_bytes: int
    peak_kv_reserved_bytes: int
    cost_cache_hits: int
    cost_cache_misses: int

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by the JSON/CSV exporters."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate outcome of one simulated fleet run."""

    model_name: str
    router: str
    autoscaler: str
    scheduler: str
    #: Configured fleet ceiling / autoscaler floor / devices across the fleet.
    fleet_size: int
    min_replicas: int
    total_devices: int
    num_requests: int
    completed: int
    rejected: int
    #: Simulated wall-clock span (first arrival to last completion).
    makespan_s: float
    total_tokens: int
    tokens_per_second: float
    requests_per_second: float
    #: Fleet-wide latency distributions over every completed request.
    ttft: LatencySummary
    tpot: LatencySummary
    e2e: LatencySummary
    slo: SLO
    slo_attainment: float
    goodput_requests_per_second: float
    goodput_tokens_per_second: float
    mxu_energy_joules: float
    total_energy_joules: float
    energy_per_token_joules: float
    #: Fleet economics: provisioned accelerator-hours and the resulting
    #: cost per million generated tokens under the run's price sheet.
    chip_hours: float
    cost_model: FleetCostModel
    cost_per_million_tokens_dollars: float
    #: (time, active replicas) at every change, starting at the first arrival.
    replica_timeline: tuple[tuple[float, int], ...]
    peak_active_replicas: int
    mean_active_replicas: float
    replicas: tuple[ReplicaSummary, ...]
    requests: tuple[RequestMetrics, ...] = ()
    #: Requests no replica could take at all (conservation contract:
    #: ``completed + rejected + shed == num_requests`` — structurally 0
    #: while every crash schedules a restart, but the accounting is total).
    shed: int = 0
    #: Resilience outcomes, computed for every run: a fault-free fleet
    #: reports availability 1.0, zero recovery time and a goodput-under-
    #: failure equal to its plain goodput (nothing was disrupted).
    resilience: ResilienceSummary = ResilienceSummary.clean()
    #: The injected fault timeline in absolute simulated time (provenance).
    fault_events: tuple[FaultEvent, ...] = ()

    @property
    def utilisation(self) -> float:
        """Busy fraction of the provisioned chip-time, devices-weighted.

        Each replica's busy time is clamped to its provisioned seconds
        before the ratio: drain-aware billing keeps a scaled-in replica's
        ``busy_s`` accruing through activation gaps its billing clock never
        covered, and without the clamp an aggressive scale-in trace could
        report a fleet utilisation above 1.0.  The result is provably in
        [0, 1] for *any* replica summaries, engine-produced or
        hand-constructed.
        """
        provisioned = sum(r.devices * r.active_s for r in self.replicas)
        busy = sum(r.devices * min(r.busy_s, r.active_s) for r in self.replicas)
        return min(1.0, busy / provisioned) if provisioned > 0 else 0.0

    @property
    def cost_cache_hits(self) -> int:
        """Step-cost memo hits summed over the fleet."""
        return sum(r.cost_cache_hits for r in self.replicas)

    @property
    def cost_cache_misses(self) -> int:
        """Distinct step-cost states priced, summed over the fleet."""
        return sum(r.cost_cache_misses for r in self.replicas)

    @property
    def cost_cache_hit_rate(self) -> float:
        """Fraction of fleet step-cost lookups served from the memos."""
        lookups = self.cost_cache_hits + self.cost_cache_misses
        return self.cost_cache_hits / lookups if lookups else 0.0

    def to_dict(self, include_requests: bool = True) -> dict[str, object]:
        """Plain-dict form (nested summaries inlined) for JSON export."""
        payload = dataclasses.asdict(self)
        payload["utilisation"] = self.utilisation
        payload["cost_cache_hits"] = self.cost_cache_hits
        payload["cost_cache_misses"] = self.cost_cache_misses
        payload["cost_cache_hit_rate"] = self.cost_cache_hit_rate
        payload["replica_timeline"] = [list(entry) for entry in self.replica_timeline]
        if not include_requests:
            del payload["requests"]
        else:
            payload["requests"] = [request.to_dict() for request in self.requests]
        return payload


class _ReplicaHandle:
    """Mutable front-end state of one replica during the routing pre-pass."""

    def __init__(self, index: int, replica: ServingSimulator,
                 trace: Sequence[Request]) -> None:
        self.index = index
        self.replica = replica
        # Plan the deployment against the FULL trace (not the sub-trace the
        # routing produces), so the budget the router sees is the budget the
        # replica's replay prices; run() gets it as a per-run override and
        # the replica object itself is never mutated.
        self.devices = (replica.devices if replica.devices is not None
                        else replica.plan_devices(trace))
        self.kv_budget = replica.kv_budget(self.devices)
        if self.kv_budget <= 0:
            raise ValueError(
                f"replica {index}: {replica.model.name} does not fit "
                f"{self.devices} x {replica.tpu_config.name}: no KV budget "
                f"left after weights (use more devices)")
        step = replica.costs.decode_cost(replica.max_batch,
                                         replica.costs.bucket_tokens)
        self._decode_step_s = step.seconds
        self.service_tokens_per_s = replica.max_batch / step.seconds
        # Queueing estimate the router acts on: serial prefill occupancy,
        # max_batch decode slots, and the set of requests still in flight
        # (keyed by finish estimate, carrying the request so a crash knows
        # exactly what to drain back to the router).
        self._queue: list[tuple[float, int, Request]] = []
        self._prefill_busy_until = 0.0
        self._slots = [0.0] * replica.max_batch
        self.outstanding_tokens = 0
        self.subtrace: list[Request] = []
        # Activation bookkeeping.
        self.active = False
        self.ready_at = 0.0
        self.active_since: float | None = None
        self.deactivated_at: float | None = None
        self.active_s = 0.0
        # Fault state: the pending outage end (None = up), completed outage
        # spans, and the degradation/stall windows the timeline attached.
        self.down_until: float | None = None
        self.outages: list[tuple[float, float]] = []
        self.slow_windows: list[tuple[float, float, float]] = []
        self.stall_windows: list[tuple[float, float]] = []

    # ----------------------------------------------------------- scaling
    def activate(self, now: float, cold_start_s: float) -> None:
        self.active = True
        self.ready_at = now + cold_start_s
        self.active_since = now
        self.deactivated_at = None

    def deactivate(self, now: float) -> None:
        self.active = False
        if self.active_since is not None:
            self.active_s += now - self.active_since
        self.active_since = None
        self.deactivated_at = now

    def finalize(self, end_s: float, last_finish_s: float | None) -> None:
        """Close the billing clock at the fleet's end time.

        A replica scaled in while work was still in flight keeps draining
        (no new requests, but its replay runs to completion), so billing is
        extended from the final deactivation to its last completion — the
        instance cannot be released before the drain, and utilisation/cost
        must account for it.
        """
        if self.active and self.active_since is not None:
            self.active_s += max(0.0, end_s - self.active_since)
            self.active_since = None
        elif (self.deactivated_at is not None and last_finish_s is not None
              and last_finish_s > self.deactivated_at):
            self.active_s += last_finish_s - self.deactivated_at

    # ------------------------------------------------------------- faults
    def stalled(self, now: float) -> bool:
        """Whether an admission-stall window covers ``now``."""
        return any(start <= now < end for start, end in self.stall_windows)

    def crash(self, now: float, *, up_at: float) -> list[Request]:
        """Fell the replica: stop billing, mark it down until ``up_at``.

        Returns the front-end's estimated in-flight requests (finish
        estimate past ``now``), removed from the sub-trace, in
        deterministic (finish, id) order — the caller re-routes them.
        Requests estimated already complete stay on the sub-trace: the
        crash cannot un-serve them.
        """
        victims = [request for _, _, request in sorted(self._queue)]
        victim_ids = {request.request_id for request in victims}
        self.subtrace = [r for r in self.subtrace
                         if r.request_id not in victim_ids]
        self._queue = []
        self.outstanding_tokens = 0
        # The estimate queues future assignments behind the outage.
        self._prefill_busy_until = up_at
        self._slots = [up_at] * self.replica.max_batch
        if self.active:
            self.deactivate(now)
        self.down_until = up_at
        self.outages.append((now, up_at))
        return victims

    def restart(self, now: float, cold_start_s: float) -> None:
        """Bring the replica back: billing resumes, cold start applies."""
        self.down_until = None
        self.activate(now, cold_start_s)
        self._prefill_busy_until = self.ready_at
        self._slots = [self.ready_at] * self.replica.max_batch

    # ------------------------------------------------------------ routing
    def drain(self, now: float) -> None:
        while self._queue and self._queue[0][0] <= now:
            _, _, request = heapq.heappop(self._queue)
            self.outstanding_tokens -= request.total_tokens

    @property
    def outstanding_requests(self) -> int:
        return len(self._queue)

    def assign(self, request: Request, now: float) -> None:
        prefill_s = self.replica.costs.prefill_cost(1, request.input_tokens).seconds
        prefill_start = max(now, self._prefill_busy_until)
        self._prefill_busy_until = prefill_start + prefill_s
        slot_free = heapq.heappop(self._slots)
        decode_start = max(self._prefill_busy_until, slot_free)
        finish = decode_start + request.output_tokens * self._decode_step_s
        heapq.heappush(self._slots, finish)
        heapq.heappush(self._queue, (finish, request.request_id, request))
        self.outstanding_tokens += request.total_tokens
        self.subtrace.append(request)

    def view(self) -> ReplicaView:
        return ReplicaView(
            index=self.index, tpu_name=self.replica.tpu_config.name,
            devices=self.devices, max_batch=self.replica.max_batch,
            outstanding_requests=self.outstanding_requests,
            outstanding_tokens=self.outstanding_tokens,
            service_tokens_per_s=self.service_tokens_per_s,
            kv_budget_bytes=self.kv_budget,
            kv_bytes_per_token=self.replica.kv_bytes_per_token)


class ClusterSimulator:
    """Routes one arrival trace across N replica engines and aggregates."""

    def __init__(self, replicas: Sequence[ServingSimulator], *,
                 router: str | RouterPolicy = "round-robin",
                 autoscaler: str | AutoscalerPolicy = "fixed",
                 min_replicas: int = 1,
                 cost_model: FleetCostModel = FleetCostModel(),
                 faults: Sequence[FaultSpec] = ()) -> None:
        replicas = list(replicas)
        if not replicas:
            raise ValueError("a cluster needs at least one replica")
        names = {replica.model.name for replica in replicas}
        if len(names) != 1:
            raise ValueError("all replicas must serve the same model, got "
                             + ", ".join(sorted(names)))
        if not 1 <= min_replicas <= len(replicas):
            raise ValueError(f"min_replicas must be in [1, {len(replicas)}], "
                             f"got {min_replicas}")
        self.replicas = replicas
        self.router = router if isinstance(router, RouterPolicy) else get_router(router)
        self.autoscaler = (autoscaler if isinstance(autoscaler, AutoscalerPolicy)
                           else get_autoscaler(autoscaler))
        self.min_replicas = min_replicas
        self.cost_model = cost_model
        self.faults = tuple(faults)

    # ---------------------------------------------------------------- run
    def run(self, trace: Sequence[Request], slo: SLO = SLO(), *,
            telemetry: Telemetry | None = None) -> ClusterReport:
        """Route the trace, replay every replica, aggregate the fleet report.

        ``telemetry`` captures the fleet-level story on dedicated tracks —
        routing decisions on ``router``, scale events on ``autoscaler``,
        fault onsets/recoveries as global instants on ``faults`` — plus
        each replica's own replay on its ``replica-N`` track (cold-start
        and degradation windows included).  Like the engine's, it only
        observes: the :class:`ClusterReport` is bit-for-bit identical with
        telemetry on or off.

        Raises
        ------
        ValueError
            If the trace is empty or any replica's deployment cannot hold
            the model's weights.
        """
        if not trace:
            raise ValueError("cluster serving needs a non-empty trace")
        tel = telemetry if telemetry is not None and telemetry.enabled else None
        ordered = sorted(trace, key=lambda r: (r.arrival_s, r.request_id))
        handles = [_ReplicaHandle(index, replica, ordered)
                   for index, replica in enumerate(self.replicas)]
        fleet_size = len(handles)
        start_s = ordered[0].arrival_s

        scaler_state: dict = {}
        bootstrap = FleetView(now_s=start_s, fleet_size=fleet_size,
                              min_replicas=self.min_replicas,
                              active_count=self.min_replicas,
                              ready_count=self.min_replicas,
                              outstanding_requests=0, kv_pressure=0.0,
                              utilisation=0.0)
        initial = self._clamp(self.autoscaler.decide(bootstrap, scaler_state))
        for handle in handles[:initial]:
            # The initial fleet is provisioned before traffic: no cold start.
            handle.activate(start_s, 0.0)
        timeline: list[tuple[float, int]] = [(start_s, initial)]

        # Expand the injected fault sources into one deterministic event
        # timeline over the arrival span.  Slow/stall windows attach to
        # replica state directly; crashes (and the restarts they schedule)
        # merge with the arrivals through a pending-event heap.
        events = fault_timeline(self.faults, fleet_size,
                                ordered[-1].arrival_s - start_s)
        pending: list[tuple[float, int, str, object]] = []
        seq = itertools.count(len(events))
        for order, event in enumerate(events):
            at = start_s + event.time_s
            handle = handles[event.replica]
            if event.effect == "slow":
                handle.slow_windows.append((at, at + event.duration_s,
                                            event.magnitude))
                if tel is not None:
                    tel.span(f"replica-{event.replica}", "fault:slow",
                             at, at + event.duration_s,
                             {"magnitude": event.magnitude})
            elif event.effect == "stall":
                handle.stall_windows.append((at, at + event.duration_s))
                if tel is not None:
                    tel.span(f"replica-{event.replica}", "fault:stall",
                             at, at + event.duration_s)
            else:
                heapq.heappush(pending, (at, order, "crash", event))

        crash_times: list[float] = []
        original_arrival: dict[int, float] = {}
        disrupted: set[int] = set()
        shed = 0
        routed = 0

        def active_handles() -> list[_ReplicaHandle]:
            return [h for h in handles if h.active]

        def dispatch(request: Request, now: float, rerouted: bool = False) -> None:
            nonlocal routed, shed
            active = active_handles()
            for handle in active:
                handle.drain(now)
            if active:
                warm = [h for h in active if h.ready_at <= now]
                ready = [h for h in warm if not h.stalled(now)]
                if not ready:  # every candidate is cold-starting or stalled:
                    pool = warm or active  # wait on the least-soon-ready one
                    ready = [min(pool, key=lambda h: (h.ready_at, h.index))]
                views = {h.index: h.view() for h in ready}
                candidates = tuple(views[h.index] for h in ready)
                fitting = tuple(v for v in candidates if v.fits(request))
                chosen = self.router.choose(
                    request, fitting or candidates,
                    RouterContext(now_s=now, routed_count=routed,
                                  fleet_size=fleet_size))
                handle = handles[chosen.index]
            else:
                # Mid-outage the whole fleet can be down; queue the request
                # on the replica that restarts first rather than fail it.
                down = [h for h in handles if h.down_until is not None]
                if not down:  # structurally unreachable while every crash
                    shed += 1  # schedules a restart; accounting stays total
                    if tel is not None:
                        tel.event("router", "shed", now,
                                  {"request": request.request_id})
                    return
                handle = min(down, key=lambda h: (h.down_until, h.index))
            arrival = request.arrival_s
            if handle.down_until is not None:
                # Assigned across an outage: the replay cannot start the
                # request before the replica is back and warm again.
                arrival = max(arrival, handle.down_until
                              + self.autoscaler.cold_start_s)
            if rerouted:
                disrupted.add(request.request_id)
                arrival = max(arrival, now)
            if arrival != request.arrival_s:
                original_arrival.setdefault(request.request_id,
                                            request.arrival_s)
                request = dataclasses.replace(request, arrival_s=arrival)
            handle.assign(request, now)
            routed += 1
            if tel is not None:
                tel.event("router", "reroute" if rerouted else "route", now,
                          {"request": request.request_id,
                           "replica": handle.index})

        def advance_faults(now: float) -> None:
            while pending and pending[0][0] <= now:
                at, _, kind, payload = heapq.heappop(pending)
                if kind == "restart":
                    handle = handles[payload]
                    if handle.down_until is not None:
                        handle.restart(at, self.autoscaler.cold_start_s)
                        timeline.append((at, len(active_handles())))
                        if tel is not None:
                            tel.event("faults", "restart", at,
                                      {"replica": payload}, scope="g")
                            tel.span(f"replica-{payload}", "cold-start", at,
                                     handle.ready_at)
                    continue
                event = payload
                handle = handles[event.replica]
                if not handle.active or handle.down_until is not None:
                    continue  # already down or scaled in: nothing to fell
                handle.drain(at)
                victims = handle.crash(at, up_at=at + event.duration_s)
                crash_times.append(at)
                if tel is not None:
                    tel.event("faults", "crash", at,
                              {"replica": event.replica,
                               "duration_s": event.duration_s,
                               "victims": len(victims)}, scope="g")
                heapq.heappush(pending, (at + event.duration_s, next(seq),
                                         "restart", event.replica))
                timeline.append((at, len(active_handles())))
                for victim in victims:
                    dispatch(victim, at, rerouted=True)

        for request in ordered:
            now = request.arrival_s
            advance_faults(now)
            active = active_handles()
            for handle in active:
                handle.drain(now)
            views = {handle.index: handle.view() for handle in active}
            fleet_view = self._fleet_view(now, fleet_size, active, views)
            target = self._clamp(self.autoscaler.decide(fleet_view, scaler_state))
            if target != len(active):
                before = len(active)
                self._rescale(handles, active, target, now, tel=tel)
                # A crashed replica cannot be re-activated by scale-out, so
                # the rescale can be a no-op; only real changes are events.
                after = len(active_handles())
                if after != before:
                    timeline.append((now, after))
                    if tel is not None:
                        tel.event("autoscaler",
                                  "scale-up" if after > before else "scale-down",
                                  now, {"from": before, "to": after})
            dispatch(request, now)
        while pending:  # restarts beyond the last arrival still end outages
            at, _, kind, payload = heapq.heappop(pending)
            if kind == "restart" and handles[payload].down_until is not None:
                handles[payload].restart(at, self.autoscaler.cold_start_s)
                timeline.append((at, len(active_handles())))
                if tel is not None:
                    tel.event("faults", "restart", at,
                              {"replica": payload}, scope="g")
                    tel.span(f"replica-{payload}", "cold-start", at,
                             handles[payload].ready_at)

        reports: list[ServingReport | None] = [
            handle.replica.run(tuple(handle.subtrace), slo,
                               devices=handle.devices,
                               slow_windows=tuple(handle.slow_windows),
                               telemetry=tel,
                               telemetry_track=f"replica-{handle.index}")
            if handle.subtrace else None
            for handle in handles]
        if tel is not None:
            tel.count("cluster.requests", len(ordered))
            tel.count("cluster.routed", routed)
            tel.count("cluster.shed", shed)
            tel.count("cluster.crashes", len(crash_times))

        end_s = ordered[-1].arrival_s
        for report in reports:
            if report is not None and report.requests:
                end_s = max(end_s, max(m.finish_s for m in report.requests))
        for handle, report in zip(handles, reports):
            last_finish = (max(m.finish_s for m in report.requests)
                           if report is not None and report.requests else None)
            handle.finalize(end_s, last_finish)
        return self._report(ordered, handles, reports, timeline, slo,
                            start_s=start_s, end_s=end_s, events=events,
                            crash_times=crash_times,
                            original_arrival=original_arrival,
                            disrupted=disrupted, shed=shed)

    # ------------------------------------------------------------ internal
    def _clamp(self, target: int) -> int:
        return max(self.min_replicas, min(len(self.replicas), target))

    def _fleet_view(self, now: float, fleet_size: int,
                    active: Sequence[_ReplicaHandle],
                    views: dict[int, ReplicaView]) -> FleetView:
        outstanding = sum(h.outstanding_requests for h in active)
        if active:
            utilisation = sum(min(1.0, h.outstanding_requests / h.replica.max_batch)
                              for h in active) / len(active)
            pressure = sum(views[h.index].kv_pressure for h in active) / len(active)
        else:  # reachable mid-outage: crashes can fell the whole fleet
            utilisation = pressure = 0.0
        return FleetView(now_s=now, fleet_size=fleet_size,
                         min_replicas=self.min_replicas,
                         active_count=len(active),
                         ready_count=sum(1 for h in active if h.ready_at <= now),
                         outstanding_requests=outstanding,
                         kv_pressure=pressure, utilisation=utilisation)

    def _rescale(self, handles: list[_ReplicaHandle],
                 active: list[_ReplicaHandle], target: int, now: float,
                 tel: Telemetry | None = None) -> None:
        if target > len(active):
            for handle in handles:
                if len(active) >= target:
                    break
                # A crashed replica cannot be scale-out-activated early: its
                # restart event is what brings it back.
                if not handle.active and handle.down_until is None:
                    handle.activate(now, self.autoscaler.cold_start_s)
                    active.append(handle)
                    if tel is not None and handle.ready_at > now:
                        tel.span(f"replica-{handle.index}", "cold-start",
                                 now, handle.ready_at)
        else:
            # Release the highest-indexed replicas first: replica 0 (and
            # everything below min_replicas) is never drained.
            for handle in sorted(active, key=lambda h: -h.index):
                if len(active) <= target:
                    break
                handle.deactivate(now)
                active.remove(handle)

    def _report(self, ordered: Sequence[Request],
                handles: Sequence[_ReplicaHandle],
                reports: Sequence[ServingReport | None],
                timeline: list[tuple[float, int]], slo: SLO, *,
                start_s: float, end_s: float,
                events: Sequence[FaultEvent] = (),
                crash_times: Sequence[float] = (),
                original_arrival: Mapping[int, float] | None = None,
                disrupted: frozenset[int] | set[int] = frozenset(),
                shed: int = 0) -> ClusterReport:
        finished: list[RequestMetrics] = []
        completed = rejected = total_tokens = 0
        mxu_energy = total_energy = 0.0
        summaries: list[ReplicaSummary] = []
        for handle, report in zip(handles, reports):
            if report is not None:
                finished.extend(report.requests)
                completed += report.completed
                rejected += report.rejected
                total_tokens += report.total_tokens
                mxu_energy += report.mxu_energy_joules
                total_energy += report.total_energy_joules
            busy = report.busy_s if report is not None else 0.0
            # The drain extension in finalize() covers the final scale-in;
            # flooring at busy_s additionally covers work spilling across an
            # intermediate deactivate/reactivate gap, so billed time always
            # contains the executed time.  The per-replica ratio is clamped
            # anyway: utilisation must be provably in [0, 1] even if a
            # future billing change re-opens a busy > provisioned window.
            active_s = max(handle.active_s, busy)
            summaries.append(ReplicaSummary(
                index=handle.index, tpu_name=handle.replica.tpu_config.name,
                scheduler=handle.replica.policy.name, devices=handle.devices,
                active_s=active_s, busy_s=busy,
                utilisation=min(1.0, busy / active_s) if active_s > 0 else 0.0,
                requests_routed=len(handle.subtrace),
                completed=report.completed if report is not None else 0,
                rejected=report.rejected if report is not None else 0,
                total_tokens=report.total_tokens if report is not None else 0,
                tokens_per_second=(report.total_tokens / active_s
                                   if report is not None and active_s > 0
                                   else 0.0),
                mxu_energy_joules=report.mxu_energy_joules if report is not None else 0.0,
                total_energy_joules=report.total_energy_joules if report is not None else 0.0,
                kv_budget_bytes=handle.kv_budget,
                peak_kv_reserved_bytes=(report.peak_kv_reserved_bytes
                                        if report is not None else 0),
                cost_cache_hits=handle.replica.costs.stats.hits,
                cost_cache_misses=handle.replica.costs.stats.misses))

        original_arrival = original_arrival or {}
        if original_arrival or disrupted:
            # Replays measured drained/delayed requests from their *floored*
            # arrival; the client experienced the original one.  Re-derive
            # the latency fields from it and flag the disrupted streams.
            finished = [
                RequestMetrics.from_times(
                    m.request_id,
                    original_arrival.get(m.request_id, m.arrival_s),
                    m.input_tokens, m.output_tokens, m.first_token_s,
                    m.finish_s, disrupted=m.request_id in disrupted)
                if (m.request_id in original_arrival
                    or m.request_id in disrupted)
                else m
                for m in finished]
        finished.sort(key=lambda m: m.request_id)
        met = [m for m in finished if m.meets(slo)]
        makespan = end_s - start_s
        per_second = (1.0 / makespan) if makespan > 0 else 0.0
        chip_hours = sum(s.devices * s.active_s for s in summaries) / 3600.0
        dollars = self.cost_model.run_dollars(chip_hours, total_energy)
        downtime = sum(max(0.0, min(up_at, end_s) - down_at)
                       for handle in handles
                       for down_at, up_at in handle.outages)
        resilience = ResilienceSummary.compute(
            finished, slo, fault_count=len(events),
            crash_times=tuple(crash_times), downtime_replica_s=downtime,
            provisioned_replica_s=sum(s.active_s for s in summaries),
            shed=shed, start_s=start_s, end_s=end_s)
        # Restarts scheduled past the last completion keep the full timeline
        # honest but must not skew the makespan-bounded aggregates.
        capped = [entry for entry in timeline if entry[0] <= end_s]
        return ClusterReport(
            model_name=self.replicas[0].model.name,
            router=self.router.name, autoscaler=self.autoscaler.name,
            scheduler=self.replicas[0].policy.name,
            fleet_size=len(handles), min_replicas=self.min_replicas,
            total_devices=sum(h.devices for h in handles),
            num_requests=len(ordered), completed=completed, rejected=rejected,
            makespan_s=makespan, total_tokens=total_tokens,
            tokens_per_second=total_tokens * per_second,
            requests_per_second=completed * per_second,
            ttft=(LatencySummary.from_values([m.ttft_s for m in finished])
                  if finished else LatencySummary.empty()),
            tpot=(LatencySummary.from_values([m.tpot_s for m in finished])
                  if finished else LatencySummary.empty()),
            e2e=(LatencySummary.from_values([m.e2e_s for m in finished])
                 if finished else LatencySummary.empty()),
            slo=slo,
            slo_attainment=len(met) / len(finished) if finished else 0.0,
            goodput_requests_per_second=len(met) * per_second,
            goodput_tokens_per_second=sum(m.output_tokens for m in met) * per_second,
            mxu_energy_joules=mxu_energy, total_energy_joules=total_energy,
            energy_per_token_joules=mxu_energy / total_tokens if total_tokens else 0.0,
            chip_hours=chip_hours, cost_model=self.cost_model,
            cost_per_million_tokens_dollars=(dollars / (total_tokens / 1e6)
                                             if total_tokens else 0.0),
            replica_timeline=tuple(timeline),
            peak_active_replicas=max(count for _, count in capped),
            mean_active_replicas=_time_weighted_mean(capped, end_s),
            replicas=tuple(summaries),
            requests=tuple(finished),
            shed=shed,
            resilience=resilience,
            fault_events=tuple(
                dataclasses.replace(event, time_s=start_s + event.time_s)
                for event in events))


def _time_weighted_mean(timeline: Sequence[tuple[float, int]], end_s: float) -> float:
    """Mean active replica count over [first event, end_s]."""
    if len(timeline) == 1 or end_s <= timeline[0][0]:
        return float(timeline[-1][1])
    area = 0.0
    for (t0, count), (t1, _) in zip(timeline, timeline[1:]):
        area += count * (t1 - t0)
    last_t, last_count = timeline[-1]
    area += last_count * (end_s - last_t)
    return area / (end_s - timeline[0][0])


def cluster_report_from_dict(payload: Mapping[str, object]) -> ClusterReport:
    """Rebuild a :class:`ClusterReport` from its ``to_dict`` payload.

    The inverse of :meth:`ClusterReport.to_dict` up to the derived keys the
    encoder injects (utilisation, cache totals — recomputed from the
    replica rows) and the per-request tuple when the payload was written
    with ``include_requests=False`` (restored as empty).  All numeric
    fields round-trip exactly (JSON preserves IEEE-754 doubles), so every
    aggregate a stored report serves is bit-for-bit the computed one.

    Raises
    ------
    KeyError, TypeError
        If the payload does not carry the report's required fields —
        callers treating the store as a cache should catch these and fall
        back to simulating.
    """
    data = dict(payload)
    for derived in ("utilisation", "cost_cache_hits", "cost_cache_misses",
                    "cost_cache_hit_rate"):
        data.pop(derived, None)
    for summary in ("ttft", "tpot", "e2e"):
        data[summary] = decode_dataclass(LatencySummary, data[summary])
    data["slo"] = decode_dataclass(SLO, data["slo"])
    data["cost_model"] = decode_dataclass(FleetCostModel, data["cost_model"])
    data["replica_timeline"] = tuple(
        (entry[0], entry[1]) for entry in data["replica_timeline"])
    data["replicas"] = tuple(decode_dataclass(ReplicaSummary, row)
                             for row in data["replicas"])
    data["requests"] = tuple(decode_dataclass(RequestMetrics, row)
                             for row in data.get("requests", ()))
    if "resilience" in data:
        data["resilience"] = decode_dataclass(ResilienceSummary,
                                              data["resilience"])
    data["fault_events"] = tuple(decode_dataclass(FaultEvent, row)
                                 for row in data.get("fault_events", ()))
    return decode_dataclass(ClusterReport, data)


def cluster_run_key(model, tpu_config, spec: ServingSpec, settings: object) -> str:
    """Content fingerprint of one :func:`simulate_cluster` run.

    The version string is bumped whenever the report schema, the spec's
    axes, or the fidelity semantics change shape (v2: fault/overlay chaos
    axes + resilience fields; v3: the ``fidelity`` spec axis and the fluid
    estimator), so stores written before a change *miss* instead of
    serving stale or silently fault-blind payloads.
    """
    return fingerprint("cluster-report/v3", tpu_config, model, spec, settings)


def simulate_cluster(model, tpu_config, spec: ServingSpec, settings: object, *,
                     simulator=None, store: "ResultStore | None" = None,
                     telemetry: Telemetry | None = None) -> ClusterReport:
    """Run one fleet-shaped :class:`ServingSpec` end to end (the sweep entry).

    Builds ``spec.replicas`` homogeneous replicas that share one memoised
    graph simulator (so the fleet prices each distinct step state once), a
    router and an autoscaler from the spec's names, and replays the spec's
    seeded trace through the cluster.

    A persistent :class:`~repro.sweep.store.ResultStore` short-circuits the
    whole run: reports are keyed by :func:`cluster_run_key` and stored
    without per-request rows, so a repeated run — in another process, days
    later — decodes the report instead of replaying the event loop.  This
    is what makes warm ``repro-sim optimize --store`` searches perform
    zero new simulations.
    """
    key = cluster_run_key(model, tpu_config, spec, settings) if store is not None else ""
    if store is not None:
        payload = store.get(STORE_KIND, key)
        if payload is not None:
            try:
                report = cluster_report_from_dict(payload)
                # Store-served runs replay nothing: summary-only telemetry,
                # exactly like fluid estimates.
                emit_report_summary(telemetry, "cluster", report,
                                    fidelity="stored")
                return report
            except (KeyError, TypeError):
                # Same-version schema drift: the payload is unusable, so the
                # lookup was effectively a miss.  Reclassify it — callers
                # (the optimizer's "new simulations" accounting, the CI
                # zero-simulation gates) infer "did this call simulate?"
                # from the miss counter, and the recompute below is real
                # simulation work.
                store.stats.hits -= 1
                store.stats.misses += 1
    if spec.fidelity == "fluid":
        report = _fluid_cluster_report(model, tpu_config, spec, settings,
                                       simulator=simulator)
        emit_report_summary(telemetry, "cluster", report, fidelity="fluid")
        if store is not None:
            store.put(STORE_KIND, key, report.to_dict(include_requests=False))
        return report
    classes = request_classes_from_settings(settings)
    trace = generate_trace(spec.trace, classes, spec.arrival_rate,
                           spec.num_requests, spec.seed,
                           overlay=spec.overlay)
    shared = simulator if simulator is not None else CachingInferenceSimulator(tpu_config)
    replicas = [ServingSimulator(
        model, tpu_config, scheduler=spec.scheduler,
        precision=getattr(settings, "precision", Precision.INT8),
        max_batch=spec.max_batch, bucket_tokens=spec.bucket_tokens,
        devices=spec.devices, memory_utilisation=spec.memory_utilisation,
        simulator=shared) for _ in range(spec.replicas)]
    cluster = ClusterSimulator(replicas, router=spec.router,
                               autoscaler=spec.autoscaler,
                               min_replicas=spec.min_replicas,
                               faults=spec.faults)
    report = cluster.run(trace, slo=spec.slo, telemetry=telemetry)
    if store is not None:
        store.put(STORE_KIND, key, report.to_dict(include_requests=False))
    return report


def _fluid_cluster_report(model, tpu_config, spec: ServingSpec,
                          settings: object, *, simulator=None) -> ClusterReport:
    """Fleet-shaped fluid estimate: R identical replicas, flow split evenly.

    The fluid model has no routing events to replay, so the fleet reduces
    to ``spec.replicas`` independent single-replica estimates at
    ``arrival_rate / replicas`` each (what a balanced router converges to),
    rolled up with the same aggregation the exact cluster performs.  The
    replica count is static — autoscaler dynamics, like scheduler order,
    cannot matter to a flow — and the resilience summary is the clean one
    with goodput-under-failure equal to plain goodput (nothing disrupted).
    """
    from repro.serving.fluid import estimate_serving

    fleet = spec.replicas
    base, extra = divmod(spec.num_requests, fleet)
    shared = (simulator if simulator is not None
              else CachingInferenceSimulator(tpu_config))
    # At most two distinct per-replica request counts; estimate each once.
    reports: dict[int, ServingReport] = {}
    counts = [base + (1 if index < extra else 0) for index in range(fleet)]
    for count in sorted(set(counts)):
        if count == 0:
            continue
        replica_spec = dataclasses.replace(
            spec, arrival_rate=spec.arrival_rate / fleet, num_requests=count,
            replicas=1, min_replicas=1)
        reports[count] = estimate_serving(model, tpu_config, replica_spec,
                                          settings, simulator=shared)
    per_replica = [reports[count] for count in counts if count > 0]
    makespan = max(report.makespan_s for report in per_replica)
    per_second = (1.0 / makespan) if makespan > 0 else 0.0
    completed = sum(report.completed for report in per_replica)
    total_tokens = sum(report.total_tokens for report in per_replica)
    mxu_energy = sum(report.mxu_energy_joules for report in per_replica)
    total_energy = sum(report.total_energy_joules for report in per_replica)
    met_requests = sum(report.completed * report.slo_attainment
                      for report in per_replica)
    attainment = met_requests / completed if completed else 0.0
    goodput_tokens = sum(
        report.goodput_tokens_per_second * report.makespan_s
        for report in per_replica)
    devices = per_replica[0].devices if per_replica else (spec.devices or 1)
    summaries = tuple(
        ReplicaSummary(
            index=index, tpu_name=tpu_config.name,
            scheduler=report.scheduler, devices=report.devices,
            active_s=makespan, busy_s=report.busy_s,
            utilisation=report.busy_s / makespan if makespan > 0 else 0.0,
            requests_routed=report.num_requests, completed=report.completed,
            rejected=report.rejected, total_tokens=report.total_tokens,
            tokens_per_second=report.tokens_per_second,
            mxu_energy_joules=report.mxu_energy_joules,
            total_energy_joules=report.total_energy_joules,
            kv_budget_bytes=report.kv_budget_bytes,
            peak_kv_reserved_bytes=report.peak_kv_reserved_bytes,
            cost_cache_hits=report.cost_cache_hits,
            cost_cache_misses=report.cost_cache_misses)
        for index, report in enumerate(per_replica))
    cost_model = FleetCostModel()
    chip_hours = sum(s.devices * s.active_s for s in summaries) / 3600.0
    cost = cost_model.run_dollars(chip_hours, total_energy)
    head = per_replica[0] if per_replica else None
    empty = LatencySummary.empty()
    goodput_requests = completed * attainment * per_second
    goodput_tokens_rate = goodput_tokens * per_second if makespan > 0 else 0.0
    return ClusterReport(
        model_name=model.name, router=spec.router, autoscaler=spec.autoscaler,
        scheduler=head.scheduler if head else spec.scheduler,
        fleet_size=fleet, min_replicas=spec.min_replicas,
        total_devices=sum(s.devices for s in summaries) or fleet * devices,
        num_requests=spec.num_requests, completed=completed,
        rejected=sum(report.rejected for report in per_replica),
        makespan_s=makespan, total_tokens=total_tokens,
        tokens_per_second=total_tokens * per_second,
        requests_per_second=completed * per_second,
        ttft=head.ttft if head else empty,
        tpot=head.tpot if head else empty,
        e2e=head.e2e if head else empty,
        slo=spec.slo, slo_attainment=attainment,
        goodput_requests_per_second=goodput_requests,
        goodput_tokens_per_second=goodput_tokens_rate,
        mxu_energy_joules=mxu_energy, total_energy_joules=total_energy,
        energy_per_token_joules=(mxu_energy / total_tokens
                                 if total_tokens else 0.0),
        chip_hours=chip_hours, cost_model=cost_model,
        cost_per_million_tokens_dollars=(cost / (total_tokens / 1e6)
                                         if total_tokens else 0.0),
        replica_timeline=((0.0, fleet),),
        peak_active_replicas=fleet, mean_active_replicas=float(fleet),
        replicas=summaries, requests=(), shed=0,
        resilience=dataclasses.replace(
            ResilienceSummary.clean(),
            goodput_under_failure_requests_per_second=goodput_requests,
            goodput_under_failure_tokens_per_second=goodput_tokens_rate),
        fault_events=())
