"""Fleet autoscaling policies and the autoscaler registry.

The cluster front-end re-evaluates the fleet size at every request arrival:
the active :class:`AutoscalerPolicy` sees a :class:`FleetView` (queue depth,
estimated utilisation, KV pressure) and returns the replica count it wants;
the cluster clamps it to ``[min_replicas, fleet_size]`` and applies it.
Scaling is not free, and the two costs production autoscalers fight are both
modelled:

* **cold start** — a newly activated replica only becomes routable
  ``cold_start_s`` simulated seconds after the decision (weights loading,
  container boot), so reactive scale-out always lags a burst;
* **scale-in hysteresis** — scale-in decisions must hold for ``hold_s``
  continuous seconds below the threshold before a replica is released, so
  a noisy load curve does not flap the fleet (policies keep their timer in
  the per-run ``state`` dict the cluster passes back on every call).

Policies are frozen dataclasses in an open ``AUTOSCALER_REGISTRY`` — the
same pattern as the router/scheduler registries.  Built-ins:

* ``fixed`` — the whole configured fleet, always (no autoscaling);
* ``queue-depth`` — scale out when the estimated queue per active replica
  exceeds a threshold, scale in (with hysteresis) when it falls below a
  lower one;
* ``utilisation-target`` — track a target batch-slot utilisation, scaling
  out above ``target + headroom`` and in below ``target * scale_in_factor``
  after the hold period;
* ``forecasting`` — scale on the *predicted* arrival rate (windowed rate
  plus trend, extrapolated one cold start ahead) instead of the observed
  queue, paying the same cold-start and hysteresis costs.

Deactivation releases the highest-indexed active replica first and
activation claims the lowest-indexed inactive one, so replicas below
``min_replicas`` are never drained and scaling order is deterministic.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class FleetView:
    """Fleet-wide state snapshot an autoscaling decision is based on."""

    now_s: float
    fleet_size: int
    min_replicas: int
    #: Active replicas (including ones still cold-starting) and the subset
    #: that is already routable.
    active_count: int
    ready_count: int
    #: Requests estimated still in flight across the active replicas.
    outstanding_requests: int
    #: Mean estimated committed KV fraction over the active replicas.
    kv_pressure: float

    @property
    def queue_per_active(self) -> float:
        """Estimated outstanding requests per active replica."""
        return self.outstanding_requests / self.active_count if self.active_count else 0.0

    #: Estimated batch-slot utilisation of the fleet, set by the cluster
    #: (mean of min(1, outstanding / max_batch) over active replicas).
    utilisation: float = 0.0


@dataclass(frozen=True)
class AutoscalerPolicy:
    """One fleet-sizing discipline of the cluster front-end.

    ``decide`` maps a :class:`FleetView` (plus a mutable per-run ``state``
    dict for hysteresis timers) to the desired active replica count; the
    cluster clamps the answer to ``[min_replicas, fleet_size]``.  The policy
    must be deterministic in its inputs.
    """

    name: str
    description: str
    decide: Callable[[FleetView, dict], int]
    #: Simulated seconds between activating a replica and it becoming
    #: routable (weights loading / container boot).
    cold_start_s: float = 5.0

    def __post_init__(self) -> None:
        if self.cold_start_s < 0:
            raise ValueError("cold_start_s must be non-negative")


#: Registered autoscaling policies, addressable by name.
AUTOSCALER_REGISTRY: dict[str, AutoscalerPolicy] = {}


def register_autoscaler(policy: AutoscalerPolicy, overwrite: bool = False) -> None:
    """Add an autoscaling policy to the registry.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is not set.
    """
    if policy.name in AUTOSCALER_REGISTRY and not overwrite:
        raise ValueError(f"autoscaler '{policy.name}' is already registered")
    AUTOSCALER_REGISTRY[policy.name] = policy


def get_autoscaler(name: str) -> AutoscalerPolicy:
    """Look up an autoscaling policy by name.

    Raises
    ------
    KeyError
        If the policy is unknown; the error lists the registered names.
    """
    try:
        return AUTOSCALER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(AUTOSCALER_REGISTRY))
        raise KeyError(
            f"unknown autoscaler '{name}'; registered autoscalers: {known}") from None


def _scale_in_with_hold(view: FleetView, state: dict, hold_s: float) -> int:
    """Shared hysteresis: one replica in only after ``hold_s`` below threshold."""
    since = state.setdefault("below_since", view.now_s)
    if view.now_s - since >= hold_s:
        state["below_since"] = view.now_s  # re-arm: at most one step per hold
        return view.active_count - 1
    return view.active_count


def fixed_autoscaler(name: str = "fixed") -> AutoscalerPolicy:
    """The null policy: the whole configured fleet is always active."""
    return AutoscalerPolicy(
        name=name,
        description="keep every configured replica active (no autoscaling)",
        decide=lambda view, state: view.fleet_size,
        cold_start_s=0.0)


def queue_depth_autoscaler(scale_up_queue: float = 4.0,
                           scale_down_queue: float = 1.0,
                           hold_s: float = 10.0,
                           cold_start_s: float = 5.0,
                           name: str = "queue-depth") -> AutoscalerPolicy:
    """Threshold policy on the estimated queue depth per active replica."""
    if scale_down_queue >= scale_up_queue:
        raise ValueError("scale_down_queue must be below scale_up_queue")
    if hold_s < 0:
        raise ValueError("hold_s must be non-negative")

    def decide(view: FleetView, state: dict) -> int:
        if view.queue_per_active > scale_up_queue:
            state.pop("below_since", None)
            return view.active_count + 1
        if view.queue_per_active < scale_down_queue and view.active_count > view.min_replicas:
            return _scale_in_with_hold(view, state, hold_s)
        state.pop("below_since", None)
        return view.active_count

    return AutoscalerPolicy(
        name=name,
        description=f"scale out above {scale_up_queue:g} queued/replica, "
                    f"in below {scale_down_queue:g} after {hold_s:g}s",
        decide=decide, cold_start_s=cold_start_s)


def utilisation_target_autoscaler(target: float = 0.75,
                                  headroom: float = 0.10,
                                  scale_in_factor: float = 0.5,
                                  hold_s: float = 15.0,
                                  cold_start_s: float = 5.0,
                                  name: str = "utilisation-target",
                                  ) -> AutoscalerPolicy:
    """Track a target batch-slot utilisation with cold start and hysteresis."""
    if not 0 < target <= 1:
        raise ValueError("target must be in (0, 1]")
    if headroom < 0 or not 0 < scale_in_factor < 1 or hold_s < 0:
        raise ValueError("headroom must be >= 0, scale_in_factor in (0, 1), "
                         "hold_s >= 0")

    def decide(view: FleetView, state: dict) -> int:
        if view.utilisation > target + headroom:
            state.pop("below_since", None)
            return view.active_count + 1
        if view.utilisation < target * scale_in_factor and view.active_count > view.min_replicas:
            return _scale_in_with_hold(view, state, hold_s)
        state.pop("below_since", None)
        return view.active_count

    return AutoscalerPolicy(
        name=name,
        description=f"track {target:.0%} slot utilisation "
                    f"(+{headroom:.0%} headroom, {hold_s:g}s scale-in hold)",
        decide=decide, cold_start_s=cold_start_s)


def forecasting_autoscaler(window_s: float = 10.0,
                           requests_per_replica_s: float = 4.0,
                           lead_s: float | None = None,
                           hold_s: float = 15.0,
                           cold_start_s: float = 5.0,
                           name: str = "forecasting") -> AutoscalerPolicy:
    """Predictive policy: scale on the *forecast* arrival rate, not the queue.

    Reactive policies only add capacity after a burst has already queued —
    and then pay the cold start on top.  This policy records every arrival
    instant it is consulted at (the cluster calls ``decide`` exactly once
    per arrival, so the decision times *are* the arrival process), measures
    the rate over the trailing ``window_s`` and the rate trend across the
    two half-windows, and linearly extrapolates ``lead_s`` seconds ahead —
    by default exactly the cold start it must mask.  The target replica
    count is the forecast rate over ``requests_per_replica_s`` (the rate
    one replica is provisioned to sustain).

    Prediction buys lead time, not free capacity: scale-out still pays the
    full cold start before a replica is routable, and scale-in goes through
    the same ``hold_s`` hysteresis as the reactive policies.  The cluster's
    clamp keeps the answer within ``[min_replicas, fleet_size]`` whatever
    the forecast says.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if requests_per_replica_s <= 0:
        raise ValueError("requests_per_replica_s must be positive")
    if lead_s is not None and lead_s < 0:
        raise ValueError("lead_s must be non-negative (or None)")
    if hold_s < 0:
        raise ValueError("hold_s must be non-negative")

    def decide(view: FleetView, state: dict) -> int:
        arrivals: list[float] = state.setdefault("arrivals", [])
        arrivals.append(view.now_s)
        horizon = view.now_s - 2.0 * window_s
        while arrivals and arrivals[0] < horizon:
            arrivals.pop(0)
        half = window_s / 2.0
        recent = sum(1 for t in arrivals if t > view.now_s - half)
        previous = sum(1 for t in arrivals
                       if view.now_s - window_s < t <= view.now_s - half)
        rate = (recent + previous) / window_s
        slope = (recent - previous) / (half * half)
        lead = cold_start_s if lead_s is None else lead_s
        forecast = max(0.0, rate + slope * lead)
        target = max(view.min_replicas,
                     math.ceil(forecast / requests_per_replica_s))
        if target > view.active_count:
            state.pop("below_since", None)
            return target
        if target < view.active_count and view.active_count > view.min_replicas:
            return _scale_in_with_hold(view, state, hold_s)
        state.pop("below_since", None)
        return view.active_count

    return AutoscalerPolicy(
        name=name,
        description=f"scale on the arrival rate forecast {window_s:g}s window "
                    f"extrapolated {('cold-start' if lead_s is None else f'{lead_s:g}s')} "
                    f"ahead, {requests_per_replica_s:g} req/s per replica",
        decide=decide, cold_start_s=cold_start_s)


register_autoscaler(fixed_autoscaler())
register_autoscaler(queue_depth_autoscaler())
register_autoscaler(utilisation_target_autoscaler())
register_autoscaler(forecasting_autoscaler())
