"""The discrete-event continuous-batching engine.

:class:`ServingSimulator` replays a request trace against one model on one
TPU deployment and measures what a production inference service measures:
TTFT/TPOT/e2e latency distributions, SLO goodput, utilisation and energy per
token.  The event loop models the control plane; the data plane — what one
prefill or decode step costs — comes from the analytical cost model through
a memoised :class:`~repro.serving.costs.StepCostModel`, so the simulator
inherits the paper's chip model (and the sweep engine's caches) instead of
inventing its own timing.

Modelling choices, stated explicitly:

* **Continuous batching.**  Between steps the active
  :class:`~repro.serving.scheduler.SchedulerPolicy` may admit waiting
  requests (one prefill step per admitted group, which also emits each
  request's first token); all running requests then decode together, one
  token per request per step.
* **Chunked decode events.**  Step cost is constant while the batch
  composition and the (bucketed) maximum context are constant, so the loop
  advances whole chunks of identical decode steps at once — a 10k-request
  trace is tens of thousands of events, not millions of per-token ones.
  Chunks never skip a scheduling opportunity: they are capped at the next
  completion, context-bucket crossing, and (when admission could act on it)
  the next arrival.
* **KV admission control.**  Each admitted request reserves its full-context
  KV footprint against the deployment's budget from
  :func:`repro.analysis.capacity.serving_kv_budget`; admission walks the
  policy's order and stops at the first request that does not fit, so the
  committed footprint can never exceed the device memory.
* **Pipeline-parallel memory, single-chip timing.**  ``devices > 1`` widens
  the weight/KV budget (layers are partitioned, not replicated) while step
  latency stays the full per-layer sum — i.e. no inter-group pipelining
  overlap and no ICI hop cost.  This is conservative for throughput and
  exact for single-chip deployments; ring modelling is future work.

The hot path exploits one invariant: running requests all decode in
lock-step, so against a global decode counter ``G`` each request has a
*fixed* context offset (``input_tokens + 1`` at the ``G`` of its prefill)
and a *fixed* death epoch (the ``G`` at which it emits its last token).
The batch therefore lives in two heaps — min-heap on death epoch, lazy
max-heap on context offset — and advancing a decode chunk is O(1) with no
per-request work; a finish pops exactly the finishing requests.  Per-request
latency values accumulate into raw arrays and percentiles are computed once
at report time.  Device-busy time and energy accumulate per *quiescent
segment* — the spans between instants where the system is fully drained —
and the report sums the segment totals left-to-right.  Segments are exactly
the units trace sharding hands to workers, which is what makes a sharded
run (``run(..., shards=N)``) bit-for-bit identical to the serial one: every
float in the report is produced by the same additions in the same order.

Determinism: given identical arguments (including the trace seed) a run is
bit-for-bit reproducible — the only randomness is the explicit
``random.Random(seed)`` inside trace generation — and independent of the
shard count.
"""

from __future__ import annotations

import bisect
import heapq
import math
import multiprocessing
import os
from collections import deque
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from operator import attrgetter

from repro.analysis.capacity import serving_kv_budget
from repro.common import Precision, ceil_div
from repro.core.config import TPUConfig
from repro.core.simulator import InferenceSimulator
from repro.obs.telemetry import Event, Gauge, Span, Telemetry
from repro.serving.costs import StepCost, StepCostModel
from repro.serving.metrics import (
    SLO,
    LatencySummary,
    RequestMetrics,
    ServingReport,
)
from repro.serving.scheduler import (
    SCHEDULER_REGISTRY,
    SchedulerPolicy,
    _by_arrival,
    get_scheduler,
)
from repro.serving.spec import ServingSpec
from repro.serving.trace import Request, generate_trace, request_classes_from_settings
from repro.sweep.cache import CachingInferenceSimulator
from repro.sweep.fingerprint import fingerprint
from repro.sweep.store import decode_dataclass
from repro.workloads.llm import LLMConfig

#: Store namespace of single-deployment serving reports (the fleet-shaped
#: analogue lives in :mod:`repro.serving.cluster` as ``cluster-report``).
SERVING_STORE_KIND = "serving-report"

_new_instance = object.__new__
_arrival_key = attrgetter("arrival_s", "request_id")


@dataclass
class LiveRequest:
    """Mutable in-flight state of one request inside the event loop.

    The optimised engine keeps running requests as plain heap tuples; this
    class survives as the argument of
    :attr:`~repro.serving.scheduler.SchedulerPolicy.priority` keys (and for
    any external schedulers built on it), wrapping requests on the waiting
    queue of non-FCFS policies.
    """

    request: Request
    first_token_s: float | None = None
    generated: int = 0

    @property
    def context_tokens(self) -> int:
        """Current KV-cache length (prompt plus generated tokens)."""
        return self.request.input_tokens + self.generated

    @property
    def remaining(self) -> int:
        """Tokens still to generate."""
        return self.request.output_tokens - self.generated


@dataclass
class _ShardState:
    """Raw outcome of one event-loop pass over a (sub-)trace.

    Everything is either an exact integer, an exact per-request record, or a
    per-quiescent-segment float subtotal, so shard states merge into the
    serial run's numbers bit-for-bit (see the module docstring).
    """

    #: ``(request_id, arrival_s, input_tokens, output_tokens, first_token_s,
    #: finish_s)`` tuples in completion order (empty when per-request rows
    #: are not collected).
    finished: list = field(default_factory=list)
    #: Per-request latency values in completion order.
    ttfts: list = field(default_factory=list)
    tpots: list = field(default_factory=list)
    e2es: list = field(default_factory=list)
    #: Requests (and their output tokens) that met the run's SLO.
    met_count: int = 0
    met_tokens: int = 0
    #: ``(busy_s, mxu_energy_j, total_energy_j)`` per quiescent segment.
    segments: list = field(default_factory=list)
    prefill_steps: int = 0
    decode_steps: int = 0
    total_tokens: int = 0
    peak_reserved: int = 0
    final_clock: float = 0.0
    #: Telemetry capture (empty unless the run collects telemetry) — plain
    #: tuples so shard states still pickle cheaply and merge by
    #: concatenation.  Span rows are ``(kind, start_s, end_s, batch,
    #: bucket, steps, tokens, popped)``; the admit/complete instant events
    #: are derived from them at materialisation (a prefill row implies an
    #: admit of ``batch`` requests at ``start_s``; ``popped`` > 0 implies
    #: that many completions at ``end_s``).  Gauge rows are catch-up
    #: blocks ``(grid_t0, n_points, queue_depth, batch, reserved_bytes,
    #: met, completed)`` that expand to ``n_points`` consecutive
    #: fixed-interval grid samples sharing one state snapshot.
    tel_spans: list = field(default_factory=list)
    tel_gauges: list = field(default_factory=list)


class ServingSimulator:
    """Replays request traces through the continuous-batching event loop."""

    def __init__(self, model: LLMConfig, tpu_config: TPUConfig, *,
                 scheduler: str | SchedulerPolicy = "fcfs",
                 precision: Precision = Precision.INT8,
                 max_batch: int = 32, bucket_tokens: int = 256,
                 devices: int | None = None, memory_utilisation: float = 0.9,
                 simulator: InferenceSimulator | None = None) -> None:
        if not isinstance(model, LLMConfig):
            raise ValueError(f"serving is modelled for LLM workloads, "
                             f"got {type(model).__name__} '{getattr(model, 'name', model)}'")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if devices is not None and devices <= 0:
            raise ValueError("devices must be positive (or None to auto-plan)")
        self.model = model
        self.tpu_config = tpu_config
        self.policy = (scheduler if isinstance(scheduler, SchedulerPolicy)
                       else get_scheduler(scheduler))
        self.precision = precision
        self.max_batch = max_batch
        self.devices = devices
        self.memory_utilisation = memory_utilisation
        self.costs = StepCostModel(
            model, simulator if simulator is not None
            else CachingInferenceSimulator(tpu_config),
            precision=precision, bucket_tokens=bucket_tokens)
        #: KV-cache bytes one token of one sequence occupies (all layers).
        self.kv_bytes_per_token = model.kv_cache_bytes(1, 1, precision)

    # ------------------------------------------------------------- deployment
    def kv_budget(self, devices: int) -> int:
        """KV bytes a ``devices``-chip deployment can commit (may be <= 0)."""
        return serving_kv_budget(self.model, self.tpu_config, devices=devices,
                                 max_batch=self.max_batch, precision=self.precision,
                                 memory_utilisation=self.memory_utilisation)

    def plan_devices(self, trace: Sequence[Request]) -> int:
        """Smallest device count whose KV budget admits the largest request."""
        largest = max(request.total_tokens for request in trace) * self.kv_bytes_per_token
        shortfall = largest - self.kv_budget(1)
        if shortfall <= 0:
            return 1
        per_device = int(self.tpu_config.main_memory_bytes * self.memory_utilisation)
        return 1 + ceil_div(shortfall, per_device)

    # -------------------------------------------------------------- event loop
    def run(self, trace: Sequence[Request], slo: SLO = SLO(), *,
            devices: int | None = None,
            slow_windows: Sequence[tuple[float, float, float]] = (),
            shards: int = 1, shard_workers: int | None = None,
            collect_requests: bool = True,
            telemetry: Telemetry | None = None,
            telemetry_track: str = "serve",
            ) -> ServingReport:
        """Replay the trace and return the aggregate serving report.

        ``devices`` overrides the deployment for this run only (the cluster
        layer pins the fleet-planned deployment this way without mutating
        the replica); by default the constructor's ``devices`` applies, or
        the smallest deployment admitting the largest trace request.

        ``slow_windows`` are ``(start_s, end_s, factor)`` degradation
        windows (absolute simulated time) during which step *durations* are
        multiplied by ``factor`` — the cluster layer's slow-node fault
        model.  Overlapping windows compound multiplicatively.  Only time
        stretches: per-step energy is unchanged (throttling slows the chip,
        it does not add work), and the factor is sampled at each step
        chunk's start, with chunks capped at the next window boundary so a
        long chunk cannot smear one factor across a boundary.

        ``shards`` splits the trace at quiescence boundaries (the largest
        arrival gaps) and replays the pieces over a ``multiprocessing``
        fan-out, merging the shard outcomes into a report **bit-for-bit
        identical** to the serial run: each shard is validated to have
        drained before the next shard's first arrival (violating shards are
        merged with their successor and re-run), so the serial event
        sequence is exactly the concatenation of the shard sequences.
        ``shard_workers`` caps the process count (default: CPU count); with
        one worker the engine simply runs serially — sharding is a runtime
        execution detail and never changes results, which is why it is not
        part of any content-addressed fingerprint.

        ``telemetry`` (an enabled :class:`~repro.obs.telemetry.Telemetry`)
        captures reject/admit/complete events, prefill/decode spans and
        fixed-interval gauges onto ``telemetry_track`` — the cluster layer
        names one track per replica.  Telemetry only *reads* loop state:
        the report is bit-for-bit identical with it on or off, sharded
        runs included (shard captures concatenate in trace order exactly
        like the accounting segments).

        ``collect_requests=False`` skips materialising the per-request
        :class:`~repro.serving.metrics.RequestMetrics` rows
        (``report.requests`` comes back empty); every aggregate — latency
        percentiles included — is identical, computed from the same raw
        arrays.  Day-scale traces use this to avoid building millions of
        row objects nothing will read.

        Raises
        ------
        ValueError
            If the trace is empty, an explicit ``devices`` deployment
            cannot hold the model's weights at all, a slow window is
            malformed (end before start, or factor below 1), or ``shards``
            / ``shard_workers`` is not positive.
        """
        if not trace:
            raise ValueError("serving needs a non-empty trace")
        if devices is not None and devices <= 0:
            raise ValueError("devices must be positive (or None)")
        if shards <= 0:
            raise ValueError("shards must be positive")
        if shard_workers is not None and shard_workers <= 0:
            raise ValueError("shard_workers must be positive (or None)")
        for window_start, window_end, factor in slow_windows:
            if window_end <= window_start or factor < 1.0:
                raise ValueError("slow windows need end > start and factor >= 1")

        ordered_trace = sorted(trace, key=_arrival_key)
        if devices is None:
            devices = (self.devices if self.devices is not None
                       else self.plan_devices(trace))
        budget = self.kv_budget(devices)
        if budget <= 0:
            raise ValueError(
                f"{self.model.name} does not fit {devices} x {self.tpu_config.name}: "
                f"no KV budget left after weights (use more devices)")

        # Integer token limit: same predicate as reserving the full-context
        # KV footprint against the budget, without a multiply per request.
        token_limit = budget // self.kv_bytes_per_token
        admissible: list[Request] = []
        rejected = 0
        tel = telemetry if telemetry is not None and telemetry.enabled else None
        for request in ordered_trace:
            if request.input_tokens + request.output_tokens > token_limit:
                rejected += 1
                if tel is not None:
                    tel.event(telemetry_track, "reject", request.arrival_s,
                              {"request": request.request_id,
                               "tokens": request.total_tokens})
            else:
                admissible.append(request)

        collect_tel = tel is not None
        gauge_interval = tel.gauge_interval_s if collect_tel else 1.0
        workers = shard_workers if shard_workers is not None else (os.cpu_count() or 1)
        if shards > 1 and workers > 1 and len(admissible) > 1:
            state = self._run_sharded(admissible, budget=budget, slo=slo,
                                      slow_windows=tuple(slow_windows),
                                      devices=devices, shards=shards,
                                      workers=workers,
                                      collect_requests=collect_requests,
                                      collect_telemetry=collect_tel,
                                      gauge_interval=gauge_interval)
        else:
            state = self._run_core_accounted(admissible, budget=budget, slo=slo,
                                             slow_windows=tuple(slow_windows),
                                             collect_requests=collect_requests,
                                             collect_telemetry=collect_tel,
                                             gauge_interval=gauge_interval)

        if tel is not None:
            self._install_telemetry(tel, telemetry_track, state,
                                    budget=budget, rejected=rejected)
        return self._build_report(state, slo, devices=devices,
                                  num_requests=len(ordered_trace),
                                  rejected=rejected, budget=budget,
                                  start_s=ordered_trace[0].arrival_s)

    @staticmethod
    def _install_telemetry(tel: Telemetry, track: str, state: _ShardState, *,
                           budget: int, rejected: int) -> None:
        """Hand the raw capture tuples to the telemetry sink.

        A serving run captures hundreds of thousands of tuples; turning
        each into a record object here would dwarf the run itself and
        blow the <5 % enabled-overhead budget.  Registering one deferred
        translator keeps this call O(1) — the records materialise when
        the telemetry is first read (export, report, summary).
        """
        tel_spans = state.tel_spans
        tel_gauges = state.tel_gauges
        interval = tel.gauge_interval_s
        final_clock = state.final_clock
        final_met = state.met_count
        final_completed = len(state.ttfts)

        def materialize(spans: list, events: list, gauges: list) -> None:
            for kind, start, end, batch, bucket, steps, tokens, popped \
                    in tel_spans:
                if kind == "prefill":
                    events.append(Event(track, "admit", start,
                                        {"count": batch}))
                spans.append(Span(track, kind, start, end,
                                  {"batch": batch, "context_bucket": bucket,
                                   "steps": steps, "tokens": tokens}))
                if popped:
                    events.append(Event(track, "complete", end,
                                        {"count": popped}))
            for t0, points, queue, batch, reserved, met, completed \
                    in tel_gauges:
                kv = reserved / budget
                slo_frac = met / completed if completed else None
                for i in range(points):
                    t = t0 + i * interval
                    gauges.append(Gauge(track, "queue_depth", t, queue))
                    gauges.append(Gauge(track, "batch_occupancy", t, batch))
                    gauges.append(Gauge(track, "kv_utilisation", t, kv))
                    if completed:
                        gauges.append(Gauge(track, "slo_attainment", t,
                                            slo_frac))
            # Closing samples so every series extends to the drain instant.
            gauges.append(Gauge(track, "queue_depth", final_clock, 0))
            gauges.append(Gauge(track, "batch_occupancy", final_clock, 0))
            gauges.append(Gauge(track, "kv_utilisation", final_clock, 0.0))
            if final_completed:
                gauges.append(Gauge(track, "slo_attainment", final_clock,
                                    final_met / final_completed))

        tel.defer(materialize)
        tel.count(f"{track}.completed", len(state.ttfts))
        tel.count(f"{track}.rejected", rejected)
        tel.count(f"{track}.prefill_steps", state.prefill_steps)
        tel.count(f"{track}.decode_steps", state.decode_steps)
        tel.count(f"{track}.tokens", state.total_tokens)

    # ------------------------------------------------------------------- core
    def _run_core_accounted(self, admissible: Sequence[Request], *, budget: int,
                            slo: SLO,
                            slow_windows: Sequence[tuple[float, float, float]],
                            collect_requests: bool,
                            collect_telemetry: bool = False,
                            gauge_interval: float = 1.0) -> _ShardState:
        """Run the core and settle the step-cost cache statistics.

        The core consults the memo without per-lookup stats bookkeeping
        (misses are still counted inside
        :meth:`~repro.serving.costs.StepCostModel._step`); every event does
        exactly one lookup, so the hits are the event count minus the new
        misses — the same totals the per-lookup counting produced.
        """
        stats = self.costs.stats
        misses_before = stats.misses
        state = self._run_core(admissible, budget=budget, slo=slo,
                               slow_windows=slow_windows,
                               collect_requests=collect_requests,
                               collect_telemetry=collect_telemetry,
                               gauge_interval=gauge_interval)
        stats.hits += (state.prefill_steps + state.decode_steps
                       - (stats.misses - misses_before))
        return state

    def _run_core(self, admissible: Sequence[Request], *, budget: int,
                  slo: SLO, slow_windows: Sequence[tuple[float, float, float]],
                  collect_requests: bool = True,
                  collect_telemetry: bool = False,
                  gauge_interval: float = 1.0) -> _ShardState:
        """One optimised event-loop pass over already-admissible requests.

        The returned :class:`_ShardState` carries only exact integers,
        per-request records and per-quiescent-segment float subtotals, so
        states from consecutive quiescence-separated sub-traces concatenate
        into precisely the serial run's numbers.
        """
        state = _ShardState()
        if not admissible:
            return state

        boundaries = sorted({edge for window in slow_windows
                             for edge in window[:2]})

        def slow_factor(t: float) -> float:
            factor = 1.0
            for window_start, window_end, window_factor in slow_windows:
                if window_start <= t < window_end:
                    factor *= window_factor
            return factor

        def next_boundary(t: float) -> float:
            index = bisect.bisect_right(boundaries, t)
            return boundaries[index] if index < len(boundaries) else math.inf

        policy = self.policy
        fifo = policy.priority is _by_arrival
        admit_during_decode = policy.admit_during_decode
        priority = policy.priority
        max_batch = self.max_batch
        costs = self.costs
        memo_get = costs._memo.get
        price = costs._step
        bt = costs.bucket_tokens
        btm1 = bt - 1
        kv_per_token = self.kv_bytes_per_token
        ceil = math.ceil
        inf = math.inf
        slo_ttft = slo.ttft_s
        slo_tpot = slo.tpot_s
        collect = collect_requests

        arrivals = [request.arrival_s for request in admissible]
        n = len(admissible)
        index = 0

        #: Waiting queue: FCFS-ordered policies take the deque fast path
        #: (admissible is pre-sorted by the FCFS key, so FIFO order *is*
        #: the heap's pop order); anything else keeps the policy-key heap.
        waiting: deque | list = deque() if fifo else []
        heappush, heappop = heapq.heappush, heapq.heappop
        #: Running batch as two heaps over plain tuples (see module doc):
        #: ``rem_heap`` = (death_G, request_id, arrival_s, input_tokens,
        #: output_tokens, first_token_s, reservation) min-heap on the death
        #: epoch; ``ctx_heap`` = (-ctx0, death_G, request_id) lazy max-heap
        #: on the context offset (entries of finished requests are popped
        #: when they surface).
        rem_heap: list = []
        ctx_heap: list = []
        batch = 0

        finished_append = state.finished.append
        ttfts_append = state.ttfts.append
        tpots_append = state.tpots.append
        e2es_append = state.e2es.append
        segments = state.segments
        met_count = met_tokens = 0
        total_tokens = 0
        prefill_steps = decode_steps = 0
        reserved = peak_reserved = 0

        clock = arrivals[0]
        busy_seg = mxu_seg = te_seg = 0.0
        #: Global decode counter: total decode chunks applied so far.
        G = 0

        # Telemetry capture.  Gauges sample on the absolute simulated-time
        # grid (multiples of gauge_interval); a catch-up block covering
        # every grid point since the last emission is appended at the top
        # of the outer loop, and quiescent instants re-anchor the grid
        # exactly the way a fresh shard run does — which is what makes a
        # sharded capture concatenate into the serial one.  With telemetry
        # off next_gauge is +inf and the whole apparatus is one
        # always-false float compare per outer iteration.  Decode spans
        # are captured per batch-composition epoch: the batch is constant
        # across one entry of the inner chunk loop, so a span opens
        # lazily when the batch changes (pd_* snapshot the open span's
        # start) and flushes when a completion closes it, a prefill
        # interrupts, or the run drains — everything else about the span
        # (duration, steps, tokens) falls out of the clock/G/decode_steps
        # deltas at flush time, so the inner loop carries zero telemetry
        # instructions and a continuing burst costs one compare.
        tel = collect_telemetry
        tel_spans_append = state.tel_spans.append
        tel_gauges_append = state.tel_gauges.append
        ttfts = state.ttfts
        floor = math.floor
        next_gauge = (floor(clock / gauge_interval) * gauge_interval
                      if tel else inf)
        pd_t0 = 0.0
        pd_batch = pd_bkt = -1
        pd_g = pd_decode = 0
        popped = 0
        slow = bool(boundaries)
        #: Per-run unpacked step-cost caches keyed ``bucket << shift |
        #: group`` (an exact composite — group never exceeds ``max_batch``):
        #: int keys hash faster than tuples and allocate nothing.  Values
        #: are (seconds, mxu_energy, total_energy), layered over the memo.
        shift = max_batch.bit_length()
        dcache: dict = {}
        dcache_get = dcache.get
        pcache: dict = {}
        pcache_get = pcache.get

        while True:
            # Quiescent point: nothing in flight and the next arrival is not
            # in the past — close the current busy/energy segment.  These
            # instants are exactly the legal shard boundaries.
            if not batch and not waiting and (index == n or arrivals[index] >= clock):
                if busy_seg != 0.0:
                    segments.append((busy_seg, mxu_seg, te_seg))
                    busy_seg = mxu_seg = te_seg = 0.0
                if tel:
                    # Re-anchor the gauge grid at the quiescent instant,
                    # exactly as a shard starting here would initialise it
                    # — idle gaps stay unsampled and a sharded capture
                    # reproduces the serial row sequence bit-for-bit.
                    next_gauge = floor(clock / gauge_interval) * gauge_interval

            if fifo:
                while index < n and arrivals[index] <= clock:
                    waiting.append(admissible[index])
                    index += 1
            else:
                while index < n and arrivals[index] <= clock:
                    live = LiveRequest(admissible[index])
                    heappush(waiting, (priority(live), live))
                    index += 1

            if clock >= next_gauge:
                points = int((clock - next_gauge) / gauge_interval) + 1
                tel_gauges_append((next_gauge, points, len(waiting), batch,
                                   reserved, met_count, len(ttfts)))
                next_gauge += gauge_interval * points

            if waiting and (admit_during_decode or not batch):
                slots = max_batch - batch
                group = 0
                admitted: list = []  # (request, reservation) pairs
                while waiting and group < slots:
                    request = waiting[0] if fifo else waiting[0][1].request
                    resv = (request.input_tokens + request.output_tokens) * kv_per_token
                    if reserved + resv > budget:
                        break  # no hole-filling: the priority is the contract
                    if fifo:
                        waiting.popleft()
                    else:
                        heappop(waiting)
                    admitted.append((request, resv))
                    group += 1
                    reserved += resv
                if reserved > peak_reserved:
                    peak_reserved = reserved
                if group:
                    max_input = 0
                    for request, _ in admitted:
                        if request.input_tokens > max_input:
                            max_input = request.input_tokens
                    bkt = (max_input + btm1) // bt * bt
                    cached = pcache_get(bkt << shift | group)
                    if cached is None:
                        cost = memo_get(("prefill", group, bkt))
                        if cost is None:
                            cost = price("prefill", group, bkt)
                        cached = (cost.seconds, cost.mxu_energy_joules,
                                  cost.total_energy_joules)
                        pcache[bkt << shift | group] = cached
                    seconds, mxu_e, total_e = cached
                    step_s = seconds * slow_factor(clock) if slow else seconds
                    if tel:
                        if pd_batch != -1:
                            tel_spans_append(("decode", pd_t0, clock,
                                              pd_batch, pd_bkt,
                                              decode_steps - pd_decode,
                                              (G - pd_g) * pd_batch, 0))
                            pd_batch = -1
                        tel_spans_append(("prefill", clock, clock + step_s,
                                          group, bkt, 1, group, 0))
                    clock += step_s
                    busy_seg += step_s
                    mxu_seg += mxu_e
                    te_seg += total_e
                    prefill_steps += 1
                    # Live top of the context heap, for the domination test
                    # below (entries of finished requests pop lazily here
                    # exactly as in the decode loop).
                    top = ctx_heap[0] if ctx_heap else None
                    while top is not None and top[1] <= G:
                        heappop(ctx_heap)
                        top = ctx_heap[0] if ctx_heap else None
                    for request, resv in admitted:
                        out = request.output_tokens
                        if out <= 1:
                            # Prefill emitted the only token: finish now.
                            reserved -= resv
                            total_tokens += out
                            arrival = request.arrival_s
                            ttft = clock - arrival
                            if collect:
                                finished_append((request.request_id, arrival,
                                                 request.input_tokens, out,
                                                 clock, clock))
                            ttfts_append(ttft)
                            tpots_append(0.0)
                            e2es_append(ttft)
                            if ttft <= slo_ttft:
                                met_count += 1
                                met_tokens += out
                        else:
                            rid = request.request_id
                            death = G + out - 1
                            heappush(rem_heap, (death, rid, request.arrival_s,
                                                request.input_tokens, out,
                                                clock, resv))
                            # Domination test: a request whose context offset
                            # and death epoch are both <= the live top's can
                            # never define max_context — skip its entry.
                            neg_ctx0 = G - request.input_tokens - 1
                            if top is None or neg_ctx0 < top[0] or death > top[1]:
                                heappush(ctx_heap, (neg_ctx0, death, rid))
                            batch += 1
                    continue

            if batch:
                # Decode fast path: advance chunk after chunk in O(1) until
                # the composition can change (a finish, a due arrival, or a
                # slow-window edge).
                arrival_cap = index < n and admit_during_decode and batch < max_batch
                next_arrival = arrivals[index] if index < n else inf
                if tel and batch != pd_batch:
                    # Composition changed since the open decode span began:
                    # flush it (its end is *this* instant — the clock has
                    # not moved since the previous burst exited) and open
                    # a new one.  A burst continuing the same batch skips
                    # this entire block.
                    if pd_batch != -1:
                        tel_spans_append(("decode", pd_t0, clock, pd_batch,
                                          pd_bkt, decode_steps - pd_decode,
                                          (G - pd_g) * pd_batch, 0))
                    pd_t0 = clock
                    pd_g = G
                    pd_decode = decode_steps
                    pd_batch = batch
                while True:
                    top = ctx_heap[0]
                    while top[1] <= G:  # finished request's stale entry
                        heappop(ctx_heap)
                        top = ctx_heap[0]
                    max_context = G - top[0]
                    bkt = (max_context + btm1) // bt * bt
                    cached = dcache_get(bkt << shift | batch)
                    if cached is None:
                        cost = memo_get(("decode", batch, bkt))
                        if cost is None:
                            cost = price("decode", batch, bkt)
                        cached = (cost.seconds, cost.mxu_energy_joules,
                                  cost.total_energy_joules)
                        dcache[bkt << shift | batch] = cached
                    seconds, mxu_e, total_e = cached
                    step_s = seconds * slow_factor(clock) if slow else seconds
                    min_remaining = rem_heap[0][0] - G
                    chunk = bkt - max_context + 1
                    if min_remaining < chunk:
                        chunk = min_remaining
                    if arrival_cap:
                        cap = ceil((next_arrival - clock) / step_s)
                        if cap < 1:
                            cap = 1
                        if cap < chunk:
                            chunk = cap
                    if slow:
                        edge = next_boundary(clock)
                        if edge != inf:
                            cap = ceil((edge - clock) / step_s)
                            if cap < 1:
                                cap = 1
                            if cap < chunk:
                                chunk = cap
                    dt = chunk * step_s
                    clock += dt
                    busy_seg += dt
                    mxu_seg += chunk * mxu_e
                    te_seg += chunk * total_e
                    decode_steps += 1
                    G += chunk
                    if rem_heap[0][0] <= G:
                        popped = 0
                        while rem_heap and rem_heap[0][0] <= G:
                            (_, rid, arrival, inp, out, first,
                             resv) = heappop(rem_heap)
                            reserved -= resv
                            total_tokens += out
                            ttft = first - arrival
                            tpot = (clock - first) / (out - 1)
                            if collect:
                                finished_append((rid, arrival, inp, out,
                                                 first, clock))
                            ttfts_append(ttft)
                            tpots_append(tpot)
                            e2es_append(clock - arrival)
                            if ttft <= slo_ttft and tpot <= slo_tpot:
                                met_count += 1
                                met_tokens += out
                            batch -= 1
                            popped += 1
                        break
                    if arrival_cap and next_arrival <= clock:
                        break
                    if slow:
                        break  # re-sample the degradation factor per chunk
                if tel:
                    # Burst exit: remember the bucket the burst reached
                    # (the context bucket advances within a span; the
                    # recorded bucket is the final one).  A completion
                    # closes the span and stamps its pop count, which
                    # materialises as the "complete" instant event at the
                    # span's end.
                    pd_bkt = bkt
                    if popped:
                        tel_spans_append(("decode", pd_t0, clock, pd_batch,
                                          bkt, decode_steps - pd_decode,
                                          (G - pd_g) * pd_batch, popped))
                        popped = 0
                        pd_batch = -1
                continue

            if index < n:
                # Idle: jump to the next arrival.
                if arrivals[index] > clock:
                    clock = arrivals[index]
                continue
            break

        if busy_seg != 0.0:
            segments.append((busy_seg, mxu_seg, te_seg))
        if tel and pd_batch != -1:
            tel_spans_append(("decode", pd_t0, clock, pd_batch, pd_bkt,
                              decode_steps - pd_decode,
                              (G - pd_g) * pd_batch, 0))
        state.met_count = met_count
        state.met_tokens = met_tokens
        state.total_tokens = total_tokens
        state.prefill_steps = prefill_steps
        state.decode_steps = decode_steps
        state.peak_reserved = peak_reserved
        state.final_clock = clock
        return state

    # --------------------------------------------------------------- sharding
    def _run_sharded(self, admissible: list[Request], *, budget: int, slo: SLO,
                     slow_windows: tuple[tuple[float, float, float], ...],
                     devices: int, shards: int, workers: int,
                     collect_requests: bool,
                     collect_telemetry: bool = False,
                     gauge_interval: float = 1.0) -> _ShardState:
        """Fan shard slices over a process pool and merge their states.

        Slices are cut at the largest arrival gaps; after the parallel
        replay each boundary is *validated* (the shard must have drained
        before its successor's first arrival).  A shard that spills is
        merged with its successor and re-run, so the final partition is
        provably a chain of quiescence-separated sub-traces whose event
        sequences concatenate into the serial run's.
        """
        policy_name = self.policy.name
        if SCHEDULER_REGISTRY.get(policy_name) is not self.policy:
            # An unregistered ad-hoc policy cannot travel to workers by
            # name; run serially rather than guess at picklability.
            return self._run_core_accounted(admissible, budget=budget, slo=slo,
                                            slow_windows=slow_windows,
                                            collect_requests=collect_requests,
                                            collect_telemetry=collect_telemetry,
                                            gauge_interval=gauge_interval)

        slices = _quiescence_slices([r.arrival_s for r in admissible], shards)
        if len(slices) == 1:
            return self._run_core_accounted(admissible, budget=budget, slo=slo,
                                            slow_windows=slow_windows,
                                            collect_requests=collect_requests,
                                            collect_telemetry=collect_telemetry,
                                            gauge_interval=gauge_interval)

        seed_entries = dict(self.costs._memo)

        def task_for(bounds: tuple[int, int]) -> tuple:
            start, stop = bounds
            return (self.model, self.tpu_config, policy_name, self.precision,
                    self.max_batch, self.costs.bucket_tokens,
                    self.memory_utilisation, devices, budget, slo,
                    slow_windows, collect_requests,
                    collect_telemetry, gauge_interval,
                    tuple(admissible[start:stop]))

        with multiprocessing.Pool(processes=min(workers, len(slices)),
                                  initializer=_seed_shard_worker,
                                  initargs=(seed_entries,)) as pool:
            outcomes = pool.map(_run_shard_remote, [task_for(b) for b in slices])
            # Validate each boundary; merge-and-re-run spilling shards.
            position = 0
            while position < len(slices) - 1:
                shard_state, _ = outcomes[position]
                next_start = slices[position + 1][0]
                if shard_state.final_clock <= admissible[next_start].arrival_s:
                    position += 1
                    continue
                slices[position] = (slices[position][0], slices[position + 1][1])
                del slices[position + 1]
                del outcomes[position + 1]
                outcomes[position] = pool.apply(
                    _run_shard_remote, (task_for(slices[position]),))

        merged = _ShardState()
        new_entries: dict = {}
        for shard_state, entries in outcomes:
            # Shards are time-ordered, so concatenating captures keeps them
            # monotonic (gauge samples stay on the absolute grid); the
            # met/completed gauge counts are shard-local and rebase onto the
            # running totals so the merged series stays cumulative.
            met_offset = merged.met_count
            completed_offset = len(merged.ttfts)
            merged.tel_spans.extend(shard_state.tel_spans)
            if met_offset or completed_offset:
                merged.tel_gauges.extend(
                    (t, points, queue, batch, reserved, met + met_offset,
                     completed + completed_offset)
                    for t, points, queue, batch, reserved, met, completed
                    in shard_state.tel_gauges)
            else:
                merged.tel_gauges.extend(shard_state.tel_gauges)
            merged.finished.extend(shard_state.finished)
            merged.ttfts.extend(shard_state.ttfts)
            merged.tpots.extend(shard_state.tpots)
            merged.e2es.extend(shard_state.e2es)
            merged.segments.extend(shard_state.segments)
            merged.met_count += shard_state.met_count
            merged.met_tokens += shard_state.met_tokens
            merged.total_tokens += shard_state.total_tokens
            merged.prefill_steps += shard_state.prefill_steps
            merged.decode_steps += shard_state.decode_steps
            if shard_state.peak_reserved > merged.peak_reserved:
                merged.peak_reserved = shard_state.peak_reserved
            merged.final_clock = shard_state.final_clock
            new_entries.update(entries)

        # Exact cache accounting across the fan-out: the distinct new states
        # are the union of what the (surviving) shards priced beyond the
        # parent memo; every other lookup would have been a memo hit in the
        # serial run.
        self.costs._memo.update(new_entries)
        self.costs.stats.misses += len(new_entries)
        self.costs.stats.hits += (merged.prefill_steps + merged.decode_steps
                                  - len(new_entries))
        return merged

    # ----------------------------------------------------------------- report
    def _build_report(self, state: _ShardState, slo: SLO, *, devices: int,
                      num_requests: int, rejected: int, budget: int,
                      start_s: float) -> ServingReport:
        """Assemble the :class:`ServingReport` from raw event-loop state."""
        records = sorted(state.finished)
        requests: list[RequestMetrics] = []
        requests_append = requests.append
        set_dict = object.__setattr__  # bypass the frozen-dataclass guard
        for request_id, arrival, inp, out, first, finish in records:
            metric = _new_instance(RequestMetrics)
            set_dict(metric, "__dict__", {
                "request_id": request_id, "arrival_s": arrival,
                "input_tokens": inp, "output_tokens": out,
                "first_token_s": first, "finish_s": finish,
                "ttft_s": first - arrival,
                "tpot_s": (finish - first) / (out - 1) if out > 1 else 0.0,
                "e2e_s": finish - arrival, "disrupted": False})
            requests_append(metric)
        completed = len(state.ttfts)
        makespan = state.final_clock - start_s if completed else 0.0
        busy = mxu_energy = total_energy = 0.0
        for seg_busy, seg_mxu, seg_te in state.segments:
            busy += seg_busy
            mxu_energy += seg_mxu
            total_energy += seg_te
        span = makespan if makespan > 0 else 0.0
        per_second = (1.0 / span) if span else 0.0
        total_tokens = state.total_tokens
        return ServingReport(
            model_name=self.model.name, tpu_name=self.tpu_config.name,
            scheduler=self.policy.name, devices=devices,
            num_requests=num_requests, completed=completed, rejected=rejected,
            makespan_s=makespan, busy_s=busy,
            total_tokens=total_tokens,
            tokens_per_second=total_tokens * per_second,
            requests_per_second=completed * per_second,
            ttft=(LatencySummary.from_values(state.ttfts)
                  if completed else LatencySummary.empty()),
            tpot=(LatencySummary.from_values(state.tpots)
                  if completed else LatencySummary.empty()),
            e2e=(LatencySummary.from_values(state.e2es)
                 if completed else LatencySummary.empty()),
            slo=slo,
            slo_attainment=state.met_count / completed if completed else 0.0,
            goodput_requests_per_second=state.met_count * per_second,
            goodput_tokens_per_second=state.met_tokens * per_second,
            mxu_energy_joules=mxu_energy, total_energy_joules=total_energy,
            energy_per_token_joules=mxu_energy / total_tokens if total_tokens else 0.0,
            prefill_steps=state.prefill_steps, decode_steps=state.decode_steps,
            kv_budget_bytes=budget, peak_kv_reserved_bytes=state.peak_reserved,
            cost_cache_hits=self.costs.stats.hits,
            cost_cache_misses=self.costs.stats.misses,
            requests=tuple(requests))


def _quiescence_slices(arrivals: Sequence[float], shards: int,
                       ) -> list[tuple[int, int]]:
    """Cut ``[0, len)`` into up to ``shards`` slices at the largest gaps.

    Only strictly positive inter-arrival gaps are candidates (splitting
    inside a simultaneous burst can never validate); ties break on the
    earlier index so the partition is deterministic.
    """
    n = len(arrivals)
    gaps = sorted(
        ((arrivals[i] - arrivals[i - 1], i) for i in range(1, n)
         if arrivals[i] > arrivals[i - 1]),
        key=lambda pair: (-pair[0], pair[1]))
    cuts = sorted(i for _, i in gaps[:shards - 1])
    slices: list[tuple[int, int]] = []
    start = 0
    for cut in cuts:
        slices.append((start, cut))
        start = cut
    slices.append((start, n))
    return slices


#: Parent memo snapshot installed in shard workers by the pool initializer
#: (mirrors the sweep engine's graph-cache seeding idiom).
_SHARD_SEED_ENTRIES: dict[tuple[str, int, int], StepCost] = {}


def _seed_shard_worker(entries: Mapping[tuple[str, int, int], StepCost]) -> None:
    """Pool initializer: install the parent's step-cost memo snapshot."""
    _SHARD_SEED_ENTRIES.clear()
    _SHARD_SEED_ENTRIES.update(entries)


def _run_shard_remote(task: tuple) -> tuple[_ShardState, dict]:
    """Pool worker: replay one shard slice with a seeded step-cost memo.

    Returns the raw shard state plus the *new* memo entries the shard
    priced, so the parent can absorb them (and account hits/misses exactly
    as a serial run would) without re-shipping what it sent.
    """
    (model, tpu_config, scheduler, precision, max_batch, bucket_tokens,
     memory_utilisation, devices, budget, slo, slow_windows, collect_requests,
     collect_telemetry, gauge_interval, subtrace) = task
    engine = ServingSimulator(
        model, tpu_config, scheduler=scheduler, precision=precision,
        max_batch=max_batch, bucket_tokens=bucket_tokens, devices=devices,
        memory_utilisation=memory_utilisation)
    engine.costs._memo.update(_SHARD_SEED_ENTRIES)
    state = engine._run_core(list(subtrace), budget=budget, slo=slo,
                             slow_windows=slow_windows,
                             collect_requests=collect_requests,
                             collect_telemetry=collect_telemetry,
                             gauge_interval=gauge_interval)
    new_entries = {key: value for key, value in engine.costs._memo.items()
                   if key not in _SHARD_SEED_ENTRIES}
    return state, new_entries


def emit_report_summary(telemetry: Telemetry | None, track: str,
                        report, *, fidelity: str) -> None:
    """Summary-only telemetry for runs without an event loop to observe.

    Fluid estimates (and store-served cluster reports) have no events to
    trace, so they contribute one whole-run span plus headline counters —
    enough for the dashboard without pretending a replay happened.
    ``report`` is any report shape with completed/rejected/makespan/SLO
    fields (:class:`ServingReport` or the cluster's ``ClusterReport``).
    """
    if telemetry is None or not telemetry.enabled:
        return
    telemetry.span(track, f"{fidelity}-run", 0.0, report.makespan_s,
                   {"completed": report.completed,
                    "rejected": report.rejected,
                    "slo_attainment": round(report.slo_attainment, 6)})
    telemetry.count(f"{track}.completed", report.completed)
    telemetry.count(f"{track}.rejected", report.rejected)
    telemetry.count(f"{track}.tokens", report.total_tokens)


def serving_report_from_dict(payload: Mapping[str, object]) -> ServingReport:
    """Rebuild a :class:`ServingReport` from its ``to_dict`` payload.

    The inverse of :meth:`ServingReport.to_dict` up to the derived keys the
    encoder injects (utilisation, cache hit rate — both recomputed from
    the restored fields).  All numeric fields round-trip exactly (JSON
    preserves IEEE-754 doubles), so a store-served report is bit-for-bit
    the computed one, per-request rows included.

    Raises
    ------
    KeyError, TypeError
        If the payload does not carry the report's required fields —
        callers treating the store as a cache should catch these and fall
        back to simulating.
    """
    data = dict(payload)
    for derived in ("utilisation", "cost_cache_hit_rate"):
        data.pop(derived, None)
    for summary in ("ttft", "tpot", "e2e"):
        data[summary] = decode_dataclass(LatencySummary, data[summary])
    data["slo"] = decode_dataclass(SLO, data["slo"])
    data["requests"] = tuple(decode_dataclass(RequestMetrics, row)
                             for row in data.get("requests", ()))
    return decode_dataclass(ServingReport, data)


def serving_run_key(model: LLMConfig, tpu_config: TPUConfig, spec: ServingSpec,
                    settings: object) -> str:
    """Content fingerprint of one :func:`simulate_serving` run.

    The version string follows the same bump rule as ``cluster-report``
    keys: any change to the report schema, the spec's axes or the engine's
    semantics bumps it, so older stores miss instead of serving stale
    payloads (the rule is documented in CONTRIBUTING.md).
    """
    return fingerprint("serving-report/v1", tpu_config, model, spec, settings)


def simulate_serving(model: LLMConfig, tpu_config: TPUConfig, spec: ServingSpec,
                     settings: object, *,
                     simulator: InferenceSimulator | None = None,
                     store=None, shards: int = 1,
                     shard_workers: int | None = None,
                     telemetry: Telemetry | None = None) -> ServingReport:
    """Run one :class:`ServingSpec` end to end (the sweep engine's entry).

    The request mix comes from the scenario ``settings`` (an explicit
    ``request_classes`` mix, or the single canonical shape of plain LLM
    serving settings); the precision follows the settings too, so a sweep
    point's serving run prices the same numerics as its analytical row.

    ``spec.fidelity`` selects the engine: ``"exact"`` replays the
    discrete-event loop; ``"fluid"`` dispatches to the closed-form
    estimator (:func:`repro.serving.fluid.estimate_serving`) — same report
    shape, orders of magnitude faster, golden-bounded error.

    A persistent :class:`~repro.sweep.store.ResultStore` short-circuits the
    whole run, exactly like :func:`repro.serving.cluster.simulate_cluster`
    does for fleets: reports are keyed by :func:`serving_run_key` and
    stored with their per-request rows, so a repeated run — another
    process, another client of the gateway, days later — decodes the
    report bit for bit instead of replaying the event loop.

    ``shards``/``shard_workers`` forward to :meth:`ServingSimulator.run`'s
    quiescence-boundary trace sharding.  They are execution hints, not
    content: a sharded run's report is bit-for-bit the serial one, so they
    deliberately do not enter the store key.

    Raises
    ------
    ValueError
        If the spec injects faults — fault timelines act at the routing
        layer, so faulted specs (any replica count) must run through
        :func:`repro.serving.cluster.simulate_cluster`.
    """
    if spec.faults:
        raise ValueError("fault injection needs the cluster simulator; "
                         "route faulted specs through simulate_cluster")
    key = serving_run_key(model, tpu_config, spec, settings) if store is not None else ""
    if store is not None:
        payload = store.get(SERVING_STORE_KIND, key)
        if payload is not None:
            try:
                report = serving_report_from_dict(payload)
                # Store-served runs replay nothing: summary-only telemetry,
                # exactly like fluid estimates.
                emit_report_summary(telemetry, "serve", report,
                                    fidelity="stored")
                return report
            except (KeyError, TypeError):
                # Same-version schema drift: the payload is unusable, so
                # the lookup was effectively a miss — reclassify it (the
                # "new simulations" accounting reads the miss counter).
                store.stats.hits -= 1
                store.stats.misses += 1
    if spec.fidelity == "fluid":
        from repro.serving.fluid import estimate_serving

        report = estimate_serving(model, tpu_config, spec, settings,
                                  simulator=simulator)
        # Fluid runs have no event loop: summary telemetry only, and the
        # estimate itself never sees the telemetry object at all.
        emit_report_summary(telemetry, "serve", report, fidelity="fluid")
        if store is not None:
            store.put(SERVING_STORE_KIND, key, report.to_dict())
        return report
    classes = request_classes_from_settings(settings)
    trace = generate_trace(spec.trace, classes, spec.arrival_rate,
                           spec.num_requests, spec.seed, overlay=spec.overlay)
    engine = ServingSimulator(
        model, tpu_config, scheduler=spec.scheduler,
        precision=getattr(settings, "precision", Precision.INT8),
        max_batch=spec.max_batch, bucket_tokens=spec.bucket_tokens,
        devices=spec.devices, memory_utilisation=spec.memory_utilisation,
        simulator=simulator)
    report = engine.run(trace, slo=spec.slo, shards=shards,
                        shard_workers=shard_workers, telemetry=telemetry)
    if store is not None:
        store.put(SERVING_STORE_KIND, key, report.to_dict())
    return report
