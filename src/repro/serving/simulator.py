"""The discrete-event continuous-batching engine.

:class:`ServingSimulator` replays a request trace against one model on one
TPU deployment and measures what a production inference service measures:
TTFT/TPOT/e2e latency distributions, SLO goodput, utilisation and energy per
token.  The event loop models the control plane; the data plane — what one
prefill or decode step costs — comes from the analytical cost model through
a memoised :class:`~repro.serving.costs.StepCostModel`, so the simulator
inherits the paper's chip model (and the sweep engine's caches) instead of
inventing its own timing.

Modelling choices, stated explicitly:

* **Continuous batching.**  Between steps the active
  :class:`~repro.serving.scheduler.SchedulerPolicy` may admit waiting
  requests (one prefill step per admitted group, which also emits each
  request's first token); all running requests then decode together, one
  token per request per step.
* **Chunked decode events.**  Step cost is constant while the batch
  composition and the (bucketed) maximum context are constant, so the loop
  advances whole chunks of identical decode steps at once — a 10k-request
  trace is tens of thousands of events, not millions of per-token ones.
  Chunks never skip a scheduling opportunity: they are capped at the next
  completion, context-bucket crossing, and (when admission could act on it)
  the next arrival.
* **KV admission control.**  Each admitted request reserves its full-context
  KV footprint against the deployment's budget from
  :func:`repro.analysis.capacity.serving_kv_budget`; admission walks the
  policy's order and stops at the first request that does not fit, so the
  committed footprint can never exceed the device memory.
* **Pipeline-parallel memory, single-chip timing.**  ``devices > 1`` widens
  the weight/KV budget (layers are partitioned, not replicated) while step
  latency stays the full per-layer sum — i.e. no inter-group pipelining
  overlap and no ICI hop cost.  This is conservative for throughput and
  exact for single-chip deployments; ring modelling is future work.

Determinism: given identical arguments (including the trace seed) a run is
bit-for-bit reproducible — the only randomness is the explicit
``random.Random(seed)`` inside trace generation.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.capacity import serving_kv_budget
from repro.common import Precision, ceil_div
from repro.core.config import TPUConfig
from repro.core.simulator import InferenceSimulator
from repro.serving.costs import StepCostModel
from repro.serving.metrics import (
    SLO,
    LatencySummary,
    RequestMetrics,
    ServingReport,
)
from repro.serving.scheduler import SchedulerPolicy, get_scheduler
from repro.serving.spec import ServingSpec
from repro.serving.trace import Request, generate_trace, request_classes_from_settings
from repro.sweep.cache import CachingInferenceSimulator
from repro.workloads.llm import LLMConfig


@dataclass
class LiveRequest:
    """Mutable in-flight state of one request inside the event loop."""

    request: Request
    first_token_s: float | None = None
    generated: int = 0

    @property
    def context_tokens(self) -> int:
        """Current KV-cache length (prompt plus generated tokens)."""
        return self.request.input_tokens + self.generated

    @property
    def remaining(self) -> int:
        """Tokens still to generate."""
        return self.request.output_tokens - self.generated


class ServingSimulator:
    """Replays request traces through the continuous-batching event loop."""

    def __init__(self, model: LLMConfig, tpu_config: TPUConfig, *,
                 scheduler: str | SchedulerPolicy = "fcfs",
                 precision: Precision = Precision.INT8,
                 max_batch: int = 32, bucket_tokens: int = 256,
                 devices: int | None = None, memory_utilisation: float = 0.9,
                 simulator: InferenceSimulator | None = None) -> None:
        if not isinstance(model, LLMConfig):
            raise ValueError(f"serving is modelled for LLM workloads, "
                             f"got {type(model).__name__} '{getattr(model, 'name', model)}'")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if devices is not None and devices <= 0:
            raise ValueError("devices must be positive (or None to auto-plan)")
        self.model = model
        self.tpu_config = tpu_config
        self.policy = (scheduler if isinstance(scheduler, SchedulerPolicy)
                       else get_scheduler(scheduler))
        self.precision = precision
        self.max_batch = max_batch
        self.devices = devices
        self.memory_utilisation = memory_utilisation
        self.costs = StepCostModel(
            model, simulator if simulator is not None
            else CachingInferenceSimulator(tpu_config),
            precision=precision, bucket_tokens=bucket_tokens)
        #: KV-cache bytes one token of one sequence occupies (all layers).
        self.kv_bytes_per_token = model.kv_cache_bytes(1, 1, precision)

    # ------------------------------------------------------------- deployment
    def kv_budget(self, devices: int) -> int:
        """KV bytes a ``devices``-chip deployment can commit (may be <= 0)."""
        return serving_kv_budget(self.model, self.tpu_config, devices=devices,
                                 max_batch=self.max_batch, precision=self.precision,
                                 memory_utilisation=self.memory_utilisation)

    def plan_devices(self, trace: Sequence[Request]) -> int:
        """Smallest device count whose KV budget admits the largest request."""
        largest = max(request.total_tokens for request in trace) * self.kv_bytes_per_token
        shortfall = largest - self.kv_budget(1)
        if shortfall <= 0:
            return 1
        per_device = int(self.tpu_config.main_memory_bytes * self.memory_utilisation)
        return 1 + ceil_div(shortfall, per_device)

    # -------------------------------------------------------------- event loop
    def run(self, trace: Sequence[Request], slo: SLO = SLO(), *,
            devices: int | None = None,
            slow_windows: Sequence[tuple[float, float, float]] = (),
            ) -> ServingReport:
        """Replay the trace and return the aggregate serving report.

        ``devices`` overrides the deployment for this run only (the cluster
        layer pins the fleet-planned deployment this way without mutating
        the replica); by default the constructor's ``devices`` applies, or
        the smallest deployment admitting the largest trace request.

        ``slow_windows`` are ``(start_s, end_s, factor)`` degradation
        windows (absolute simulated time) during which step *durations* are
        multiplied by ``factor`` — the cluster layer's slow-node fault
        model.  Overlapping windows compound multiplicatively.  Only time
        stretches: per-step energy is unchanged (throttling slows the chip,
        it does not add work), and the factor is sampled at each step
        chunk's start, with chunks capped at the next window boundary so a
        long chunk cannot smear one factor across a boundary.

        Raises
        ------
        ValueError
            If the trace is empty, an explicit ``devices`` deployment
            cannot hold the model's weights at all, or a slow window is
            malformed (end before start, or factor below 1).
        """
        if not trace:
            raise ValueError("serving needs a non-empty trace")
        if devices is not None and devices <= 0:
            raise ValueError("devices must be positive (or None)")
        for window_start, window_end, factor in slow_windows:
            if window_end <= window_start or factor < 1.0:
                raise ValueError("slow windows need end > start and factor >= 1")
        boundaries = sorted({edge for window in slow_windows
                             for edge in window[:2]})

        def slow_factor(t: float) -> float:
            factor = 1.0
            for window_start, window_end, window_factor in slow_windows:
                if window_start <= t < window_end:
                    factor *= window_factor
            return factor

        def next_boundary(t: float) -> float:
            index = bisect.bisect_right(boundaries, t)
            return boundaries[index] if index < len(boundaries) else math.inf
        ordered_trace = sorted(trace, key=lambda r: (r.arrival_s, r.request_id))
        if devices is None:
            devices = (self.devices if self.devices is not None
                       else self.plan_devices(trace))
        budget = self.kv_budget(devices)
        if budget <= 0:
            raise ValueError(
                f"{self.model.name} does not fit {devices} x {self.tpu_config.name}: "
                f"no KV budget left after weights (use more devices)")

        admissible: list[Request] = []
        rejected = 0
        for request in ordered_trace:
            if request.total_tokens * self.kv_bytes_per_token > budget:
                rejected += 1
            else:
                admissible.append(request)

        #: Waiting queue as a heap on the policy's priority key, so admission
        #: is O(log n) per request even with tens of thousands queued.
        waiting: list[tuple[tuple, LiveRequest]] = []
        running: list[LiveRequest] = []
        finished: list[RequestMetrics] = []
        # The makespan is measured from the first arrival, so traces whose
        # timestamps do not start near zero (e.g. production JSONL excerpts)
        # report the same throughput/utilisation as their re-based twins.
        start_s = ordered_trace[0].arrival_s
        clock = start_s
        busy = 0.0
        mxu_energy = total_energy = 0.0
        reserved = peak_reserved = 0
        prefill_steps = decode_steps = 0
        total_tokens = 0
        index = 0
        n = len(admissible)

        def reservation(live: LiveRequest) -> int:
            return live.request.total_tokens * self.kv_bytes_per_token

        def finish(live: LiveRequest) -> None:
            nonlocal reserved, total_tokens
            reserved -= reservation(live)
            total_tokens += live.request.output_tokens
            finished.append(RequestMetrics.from_times(
                request_id=live.request.request_id,
                arrival_s=live.request.arrival_s,
                input_tokens=live.request.input_tokens,
                output_tokens=live.request.output_tokens,
                first_token_s=live.first_token_s, finish_s=clock))

        while index < n or waiting or running:
            while index < n and admissible[index].arrival_s <= clock:
                live = LiveRequest(admissible[index])
                heapq.heappush(waiting, (self.policy.priority(live), live))
                index += 1

            admitted: list[LiveRequest] = []
            if waiting and (self.policy.admit_during_decode or not running):
                slots = self.max_batch - len(running)
                while waiting and len(admitted) < slots:
                    head = waiting[0][1]
                    if reserved + reservation(head) > budget:
                        break  # no hole-filling: the priority is the contract
                    heapq.heappop(waiting)
                    admitted.append(head)
                    reserved += reservation(head)
                    peak_reserved = max(peak_reserved, reserved)

            if admitted:
                cost = self.costs.prefill_cost(
                    len(admitted), max(live.request.input_tokens for live in admitted))
                step_s = cost.seconds * slow_factor(clock)
                clock += step_s
                busy += step_s
                mxu_energy += cost.mxu_energy_joules
                total_energy += cost.total_energy_joules
                prefill_steps += 1
                for live in admitted:
                    live.first_token_s = clock
                    live.generated = 1  # prefill emits the first token
                    if live.remaining <= 0:
                        finish(live)
                    else:
                        running.append(live)
                continue

            if running:
                batch = len(running)
                max_context = max(live.context_tokens for live in running)
                cost = self.costs.decode_cost(batch, max_context)
                step_s = cost.seconds * slow_factor(clock)
                chunk = min(min(live.remaining for live in running),
                            self.costs.bucket(max_context) - max_context + 1)
                if (index < n and self.policy.admit_during_decode
                        and batch < self.max_batch):
                    gap = admissible[index].arrival_s - clock
                    chunk = min(chunk, max(1, math.ceil(gap / step_s)))
                edge = next_boundary(clock)
                if edge != math.inf:
                    chunk = min(chunk, max(1, math.ceil((edge - clock) / step_s)))
                clock += chunk * step_s
                busy += chunk * step_s
                mxu_energy += chunk * cost.mxu_energy_joules
                total_energy += chunk * cost.total_energy_joules
                decode_steps += 1
                for live in running:
                    live.generated += chunk
                still_running = []
                for live in running:
                    if live.remaining <= 0:
                        finish(live)
                    else:
                        still_running.append(live)
                running = still_running
                continue

            # Idle: jump to the next arrival.
            clock = max(clock, admissible[index].arrival_s)

        return self._report(finished, slo, devices=devices,
                            num_requests=len(ordered_trace), rejected=rejected,
                            makespan=clock - start_s, busy=busy,
                            total_tokens=total_tokens,
                            mxu_energy=mxu_energy, total_energy=total_energy,
                            prefill_steps=prefill_steps, decode_steps=decode_steps,
                            kv_budget=budget, peak_reserved=peak_reserved)

    # ----------------------------------------------------------------- report
    def _report(self, finished: list[RequestMetrics], slo: SLO, *, devices: int,
                num_requests: int, rejected: int, makespan: float, busy: float,
                total_tokens: int, mxu_energy: float, total_energy: float,
                prefill_steps: int, decode_steps: int, kv_budget: int,
                peak_reserved: int) -> ServingReport:
        finished = sorted(finished, key=lambda m: m.request_id)
        met = [m for m in finished if m.meets(slo)]
        span = makespan if makespan > 0 else 0.0
        per_second = (1.0 / span) if span else 0.0
        return ServingReport(
            model_name=self.model.name, tpu_name=self.tpu_config.name,
            scheduler=self.policy.name, devices=devices,
            num_requests=num_requests, completed=len(finished), rejected=rejected,
            makespan_s=makespan, busy_s=busy,
            total_tokens=total_tokens,
            tokens_per_second=total_tokens * per_second,
            requests_per_second=len(finished) * per_second,
            ttft=(LatencySummary.from_values([m.ttft_s for m in finished])
                  if finished else LatencySummary.empty()),
            tpot=(LatencySummary.from_values([m.tpot_s for m in finished])
                  if finished else LatencySummary.empty()),
            e2e=(LatencySummary.from_values([m.e2e_s for m in finished])
                 if finished else LatencySummary.empty()),
            slo=slo,
            slo_attainment=len(met) / len(finished) if finished else 0.0,
            goodput_requests_per_second=len(met) * per_second,
            goodput_tokens_per_second=sum(m.output_tokens for m in met) * per_second,
            mxu_energy_joules=mxu_energy, total_energy_joules=total_energy,
            energy_per_token_joules=mxu_energy / total_tokens if total_tokens else 0.0,
            prefill_steps=prefill_steps, decode_steps=decode_steps,
            kv_budget_bytes=kv_budget, peak_kv_reserved_bytes=peak_reserved,
            cost_cache_hits=self.costs.stats.hits,
            cost_cache_misses=self.costs.stats.misses,
            requests=tuple(finished))


def simulate_serving(model: LLMConfig, tpu_config: TPUConfig, spec: ServingSpec,
                     settings: object, *,
                     simulator: InferenceSimulator | None = None) -> ServingReport:
    """Run one :class:`ServingSpec` end to end (the sweep engine's entry).

    The request mix comes from the scenario ``settings`` (an explicit
    ``request_classes`` mix, or the single canonical shape of plain LLM
    serving settings); the precision follows the settings too, so a sweep
    point's serving run prices the same numerics as its analytical row.

    Raises
    ------
    ValueError
        If the spec injects faults — fault timelines act at the routing
        layer, so faulted specs (any replica count) must run through
        :func:`repro.serving.cluster.simulate_cluster`.
    """
    if spec.faults:
        raise ValueError("fault injection needs the cluster simulator; "
                         "route faulted specs through simulate_cluster")
    classes = request_classes_from_settings(settings)
    trace = generate_trace(spec.trace, classes, spec.arrival_rate,
                           spec.num_requests, spec.seed, overlay=spec.overlay)
    engine = ServingSimulator(
        model, tpu_config, scheduler=spec.scheduler,
        precision=getattr(settings, "precision", Precision.INT8),
        max_batch=spec.max_batch, bucket_tokens=spec.bucket_tokens,
        devices=spec.devices, memory_utilisation=spec.memory_utilisation,
        simulator=simulator)
    return engine.run(trace, slo=spec.slo)
