"""repro-lint: AST-based enforcement of the repo's correctness contracts.

The conventions that keep this codebase's caches honest — explicit seeded
randomness, version-bumped fingerprints, frozen contract payloads, synced
registries, the closed error table, telemetry discipline — used to live
in CONTRIBUTING.md and reviewers' heads.  This package turns each into a
machine-checked gate behind ``repro-sim lint``:

========  ====================  ==================================================
rule      name                  enforces
========  ====================  ==================================================
RPR000    lint                  files parse; every pragma suppresses something
RPR001    determinism           no wall clocks outside obs/; no ambient RNG
RPR002    fingerprint-bump      changed key inputs ⇒ bumped version string
RPR003    frozen-dataclass      frozen contract payloads; no mutable defaults
RPR004    registry-sync         registered names CLI-reachable and test-covered
RPR005    closed-error-contract literal ApiError codes come from ERROR_CODES
RPR006    telemetry-discipline  defer on the hot path; guarded emission
========  ====================  ==================================================

Suppress a finding with ``# repro-lint: disable=RPR001`` on its line (or
``disable-file=`` near the top) and a comment saying why; unused pragmas
are themselves findings.  New rules register through
:func:`register_rule`, the same open-registry idiom as every other policy
surface (see CONTRIBUTING.md: "machine-checked invariants").
"""

from __future__ import annotations

import subprocess
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.lint.engine import (
    META_RULE,
    RULE_REGISTRY,
    Finding,
    Project,
    Rule,
    SourceFile,
    get_rule,
    register_rule,
    run_lint,
)

# Importing the rule modules populates RULE_REGISTRY.
from repro.lint import rules_determinism  # noqa: F401
from repro.lint import rules_fingerprint  # noqa: F401
from repro.lint import rules_dataclass  # noqa: F401
from repro.lint import rules_registry  # noqa: F401
from repro.lint import rules_api  # noqa: F401
from repro.lint import rules_telemetry  # noqa: F401

__all__ = [
    "META_RULE",
    "RULE_REGISTRY",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "discover_root",
    "get_rule",
    "git_base_reader",
    "lint_repository",
    "register_rule",
    "resolve_diff_base",
    "run_lint",
]

_ROOT_MARKERS = ("setup.py", "pyproject.toml", ".git")


def discover_root(start: Path | str = ".") -> Path:
    """The repository root: the nearest ancestor carrying a root marker."""
    start = Path(start).resolve()
    for candidate in (start, *start.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return start


def resolve_diff_base(root: Path, ref: str) -> str | None:
    """``ref``'s merge base with HEAD (falling back to ``ref`` itself).

    Returns ``None`` when the ref does not resolve — the caller should
    warn and skip the diff-aware rules rather than fail the run.
    """
    merge_base = subprocess.run(
        ["git", "merge-base", ref, "HEAD"],
        cwd=root, capture_output=True, text=True)
    if merge_base.returncode == 0:
        return merge_base.stdout.strip()
    verify = subprocess.run(
        ["git", "rev-parse", "--verify", f"{ref}^{{commit}}"],
        cwd=root, capture_output=True, text=True)
    if verify.returncode == 0:
        return verify.stdout.strip()
    return None


def git_base_reader(root: Path, base: str) -> Callable[[str], str | None]:
    """A ``Project.base_reader`` serving blobs from ``git show base:path``."""
    def read(rel: str) -> str | None:
        result = subprocess.run(
            ["git", "show", f"{base}:{rel}"],
            cwd=root, capture_output=True)
        if result.returncode != 0:
            return None
        return result.stdout.decode("utf-8", errors="replace")
    return read


def collect_targets(root: Path, paths: Sequence[str]) -> list[str]:
    """Expand CLI path arguments into sorted repo-relative ``.py`` files."""
    targets: set[str] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            targets.update(p.relative_to(root).as_posix()
                           for p in path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            targets.add(path.relative_to(root).as_posix())
    return sorted(targets)


def lint_repository(root: Path | str | None = None,
                    paths: Sequence[str] = ("src/repro",),
                    diff_base: str | None = None,
                    rules: Sequence[Rule] | None = None,
                    ) -> tuple[list[Finding], str | None]:
    """Lint the repository the way ``repro-sim lint`` does.

    Returns ``(findings, warning)`` — the warning is set when a requested
    ``diff_base`` could not be resolved and the diff-aware rules were
    skipped.
    """
    root = discover_root(root if root is not None else ".")
    warning: str | None = None
    resolved = None
    base_reader = None
    if diff_base is not None:
        resolved = resolve_diff_base(root, diff_base)
        if resolved is None:
            warning = (f"diff base '{diff_base}' does not resolve here; "
                       "skipping the diff-aware rules (RPR002)")
        else:
            base_reader = git_base_reader(root, resolved)
    project = Project(root, diff_base=resolved, base_reader=base_reader)
    targets = collect_targets(root, paths)
    return run_lint(project, targets, rules=rules), warning
