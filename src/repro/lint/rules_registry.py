"""RPR004 — registry sync: every registered policy is reachable and tested.

The repo's policy surfaces are open registries (routers, schedulers,
faults, overlays, autoscalers, objectives, search strategies, scenarios).
Registration alone is not enough: a policy nobody can reach from the CLI
is dead weight, and one no test references can rot silently.  For every
``register_*`` call in the linted tree this rule statically resolves the
registered name and checks two cross-file contracts:

* the backing ``*_REGISTRY`` symbol is referenced by ``src/repro/cli.py``
  (the CLI builds its ``choices=`` and help text from the live registry,
  so a referenced registry exposes every entry automatically);
* the registered name appears as a quoted string literal somewhere under
  ``tests/`` — at least one test exercises or pins the policy by name.

Name resolution follows the registration idioms used in the repo: a
literal first argument, an inline ``name="..."`` keyword, a helper call
whose first argument (or whose ``name`` parameter default) is the name,
and a module-level constant constructed with ``name="..."``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.lint.engine import Finding, Project, Rule, SourceFile, register_rule

RULE_ID = "RPR004"

#: register function -> the registry it feeds.
REGISTER_FUNCTIONS = {
    "register_router": "ROUTER_REGISTRY",
    "register_scheduler": "SCHEDULER_REGISTRY",
    "register_fault": "FAULT_REGISTRY",
    "register_overlay": "OVERLAY_REGISTRY",
    "register_autoscaler": "AUTOSCALER_REGISTRY",
    "register_objective": "OBJECTIVE_REGISTRY",
    "register_search": "SEARCH_REGISTRY",
    "register_scenario": "SCENARIO_REGISTRY",
}

_CLI_PATH = "src/repro/cli.py"
_TESTS_PREFIX = "tests"


def _constant_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _name_keyword(call: ast.Call) -> str | None:
    for keyword in call.keywords:
        if keyword.arg == "name":
            return _constant_str(keyword.value)
    return None


def _index_module(source: SourceFile) -> tuple[dict[str, str], dict[str, str]]:
    """(constant name -> registered name, function name -> name default)."""
    constants: dict[str, str] = {}
    helpers: dict[str, str] = {}
    for node in source.tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            name = _name_keyword(node.value)
            if name is not None:
                constants[node.targets[0].id] = name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            params = args.posonlyargs + args.args + args.kwonlyargs
            defaults = ([None] * (len(args.posonlyargs) + len(args.args)
                                  - len(args.defaults))
                        + list(args.defaults) + list(args.kw_defaults))
            for param, default in zip(params, defaults):
                if param.arg == "name" and default is not None:
                    value = _constant_str(default)
                    if value is not None:
                        helpers[node.name] = value
    return constants, helpers


def _resolve_name(arg: ast.AST, constants: dict[str, str],
                  helpers: dict[str, str]) -> str | None:
    """Statically resolve the policy name a registration argument carries."""
    direct = _constant_str(arg)
    if direct is not None:
        return direct
    if isinstance(arg, ast.Name):
        return constants.get(arg.id)
    if isinstance(arg, ast.Call):
        name = _name_keyword(arg)
        if name is not None:
            return name
        if arg.args:
            first = _constant_str(arg.args[0])
            if first is not None:
                return first
        if isinstance(arg.func, ast.Name):
            return helpers.get(arg.func.id)
    return None


def check_project(project: Project,
                  files: Sequence[SourceFile]) -> Iterable[Finding]:
    # Merge constant/helper indexes across the linted tree: scenario
    # constants are defined in workloads/*.py and registered from
    # workloads/registry.py.
    constants: dict[str, str] = {}
    helpers: dict[str, str] = {}
    for source in files:
        module_constants, module_helpers = _index_module(source)
        constants.update(module_constants)
        helpers.update(module_helpers)

    cli = project.source(_CLI_PATH)
    cli_names: set[str] | None = None
    if cli is not None:
        cli_names = {node.id for node in ast.walk(cli.tree)
                     if isinstance(node, ast.Name)}
        cli_names.update(node.attr for node in ast.walk(cli.tree)
                         if isinstance(node, ast.Attribute))

    test_files = project.python_files(_TESTS_PREFIX)
    test_text = "\n".join(project.read_text(rel) or "" for rel in test_files)

    findings: list[Finding] = []
    flagged_registries: set[str] = set()
    for source in files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            registry = REGISTER_FUNCTIONS.get(func_name or "")
            if registry is None or not node.args:
                continue

            name = _resolve_name(node.args[0], constants, helpers)
            if name is None:
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    f"cannot statically resolve the name registered in "
                    f"{registry}",
                    hint="pass a literal name (or name= keyword) so the "
                         "registry contract stays machine-checkable"))
                continue

            if (cli_names is not None and registry not in cli_names
                    and registry not in flagged_registries):
                flagged_registries.add(registry)
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    f"{registry} is never referenced by the CLI, so "
                    f"'{name}' (and every other entry) is unreachable from "
                    "repro-sim",
                    hint=f"wire {registry} into the CLI's choices/help"))

            if test_files and (f'"{name}"' not in test_text
                               and f"'{name}'" not in test_text):
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    f"registered name '{name}' ({registry}) is referenced "
                    "by no test",
                    hint="add a test that exercises the policy by name"))
    return findings


register_rule(Rule(
    id=RULE_ID,
    name="registry-sync",
    description="registered names are CLI-reachable and test-covered",
    check_project=check_project,
))
