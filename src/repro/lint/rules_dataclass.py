"""RPR003 — frozen dataclasses where immutability is the contract.

Report and API payloads are hashed, fingerprinted, cached and shipped
across process boundaries; a mutable one invites in-place edits that
silently desynchronise a cached row from its content key.  This rule
enforces two things:

* Dataclasses in the contract modules (everything under ``api/``, the
  serving metrics/report/spec modules, the Pareto frontier and the
  telemetry records) must declare ``frozen=True``.
* No dataclass field anywhere may carry a mutable default — neither a
  literal (``= []``) nor a ``field(default=...)`` smuggling one in.
  Shared-instance defaults alias state across every construction site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dataclass_frozen,
    dotted_name,
    is_dataclass_decorator,
    register_rule,
)

RULE_ID = "RPR003"

#: Path prefixes whose dataclasses must be frozen.
FROZEN_PREFIXES = ("src/repro/api/",)
#: Individual contract modules whose dataclasses must be frozen.
FROZEN_MODULES = frozenset({
    "src/repro/serving/metrics.py",
    "src/repro/serving/spec.py",
    "src/repro/serving/cluster.py",
    "src/repro/optimize/pareto.py",
    "src/repro/obs/telemetry.py",
})

_FROZEN_HINT = "declare @dataclass(frozen=True); contract payloads are immutable"
_MUTABLE_HINT = "use field(default_factory=...) so each instance owns its value"

#: Calls producing a fresh mutable container when used as a default.
_MUTABLE_CALLS = frozenset({"dict", "list", "set", "bytearray",
                            "collections.OrderedDict", "OrderedDict",
                            "defaultdict", "collections.defaultdict"})


def _requires_frozen(rel: str) -> bool:
    return rel in FROZEN_MODULES or any(rel.startswith(p) for p in FROZEN_PREFIXES)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _MUTABLE_CALLS
    return False


def _field_default(node: ast.AST) -> ast.AST | None:
    """The ``default=`` value of a ``field(...)`` call, if any."""
    if isinstance(node, ast.Call) and dotted_name(node.func) in (
            "field", "dataclasses.field"):
        for keyword in node.keywords:
            if keyword.arg == "default":
                return keyword.value
        return None
    return node


def check_file(source: SourceFile, project: Project) -> Iterable[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decorators = [d for d in node.decorator_list if is_dataclass_decorator(d)]
        if not decorators:
            continue

        if _requires_frozen(source.rel) and not any(
                dataclass_frozen(d) for d in decorators):
            findings.append(Finding(
                RULE_ID, source.rel, node.lineno, node.col_offset,
                f"dataclass '{node.name}' in a contract module is not frozen",
                hint=_FROZEN_HINT))

        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and statement.value is not None:
                default = _field_default(statement.value)
            elif (isinstance(statement, ast.Assign)
                  and len(statement.targets) == 1
                  and isinstance(statement.targets[0], ast.Name)):
                default = _field_default(statement.value)
            else:
                continue
            if default is not None and _is_mutable_default(default):
                findings.append(Finding(
                    RULE_ID, source.rel, statement.lineno, statement.col_offset,
                    f"mutable default on a field of dataclass '{node.name}'",
                    hint=_MUTABLE_HINT))
    return findings


register_rule(Rule(
    id=RULE_ID,
    name="frozen-dataclass",
    description="contract-module dataclasses are frozen; no mutable defaults",
    check_file=check_file,
))
