"""RPR002 — fingerprint-bump: content keys change ⇒ version strings change.

The persistent store's correctness rests on one rule (CONTRIBUTING: "the
persistent result store and its invalidation rule"): whenever the
*meaning* of a content fingerprint changes — a fingerprinted dataclass
gains/loses/retypes a field, a key-building function changes shape — the
version string baked into the key must be bumped in the same change, so
old stores miss instead of serving stale payloads.

This rule is git-diff-aware.  Each :class:`FingerprintContract` names the
version literal (file + regex) and the symbols whose definitions feed the
key.  When a lint run has a diff base (``repro-sim lint --diff-base
origin/main``), every watched symbol is snapshotted at the base and in the
working tree; if any snapshot changed while the version literal did not,
the rule fails at the version literal's line.

Snapshots are structural, not textual: a dataclass snapshot is the ordered
(name, annotation, default) field tuple, a function snapshot is the AST
dump minus the docstring — so comment and doc edits never demand a bump.
Contracts whose payloads tolerate appended defaulted fields (the API
schema policy) set ``allow_appended_fields`` and only fail when existing
fields change shape.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.lint.engine import Finding, Project, Rule, SourceFile, register_rule

RULE_ID = "RPR002"


@dataclass(frozen=True)
class WatchedSymbol:
    """One top-level class or function whose definition feeds a key."""

    path: str
    symbol: str


@dataclass(frozen=True)
class FingerprintContract:
    """One version literal and the definitions it must track."""

    name: str
    version_file: str
    #: Regex whose full match is the version literal (e.g. ``sweep-point/v6``).
    version_pattern: str
    watched: tuple[WatchedSymbol, ...]
    #: When True (the API-schema policy), appending new defaulted fields to a
    #: watched dataclass does not demand a bump — old payloads still decode.
    allow_appended_fields: bool = False


#: The repo's fingerprint/version contracts (see CONTRIBUTING.md).
CONTRACTS: tuple[FingerprintContract, ...] = (
    FingerprintContract(
        name="sweep-point",
        version_file="src/repro/sweep/engine.py",
        version_pattern=r"sweep-point/v\d+",
        watched=(
            WatchedSymbol("src/repro/sweep/grid.py", "SweepPoint"),
            WatchedSymbol("src/repro/sweep/engine.py", "point_key"),
            WatchedSymbol("src/repro/serving/spec.py", "ServingSpec"),
        ),
    ),
    FingerprintContract(
        name="cluster-report",
        version_file="src/repro/serving/cluster.py",
        version_pattern=r"cluster-report/v\d+",
        watched=(
            WatchedSymbol("src/repro/serving/cluster.py", "cluster_run_key"),
            WatchedSymbol("src/repro/serving/spec.py", "ServingSpec"),
        ),
    ),
    FingerprintContract(
        name="api-schema",
        version_file="src/repro/api/requests.py",
        version_pattern=r"SCHEMA_VERSION\s*=\s*\d+",
        watched=(
            WatchedSymbol("src/repro/api/requests.py", "SimulateRequest"),
            WatchedSymbol("src/repro/api/requests.py", "FleetRequest"),
            WatchedSymbol("src/repro/api/requests.py", "SweepRequest"),
            WatchedSymbol("src/repro/api/requests.py", "OptimizeRequest"),
            WatchedSymbol("src/repro/api/requests.py",
                          "AutoconfigPreviewRequest"),
            WatchedSymbol("src/repro/api/facade.py", "request_fingerprint"),
        ),
        allow_appended_fields=True,
    ),
    FingerprintContract(
        name="store-version",
        version_file="src/repro/sweep/store.py",
        version_pattern=r"STORE_VERSION\s*=\s*\d+",
        watched=(
            WatchedSymbol("src/repro/sweep/engine.py", "SweepResult"),
            WatchedSymbol("src/repro/serving/cluster.py", "ClusterReport"),
        ),
        allow_appended_fields=True,
    ),
)

_HINT = ("bump the version string in the same change so pre-change stores "
         "miss instead of serving stale payloads (CONTRIBUTING.md: the "
         "invalidation rule)")


def _find_symbol(tree: ast.Module, symbol: str) -> ast.stmt | None:
    for node in tree.body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)) and node.name == symbol:
            return node
    return None


def _strip_docstring(node: ast.stmt) -> ast.stmt:
    body = getattr(node, "body", None)
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        node = type(node)(**{f: getattr(node, f) for f in node._fields})
        node.body = body[1:]
    return node


def _class_fields(node: ast.ClassDef) -> tuple[tuple[str, str, str], ...]:
    """Ordered (name, annotation, default) triples of a dataclass body."""
    fields: list[tuple[str, str, str]] = []
    for statement in node.body:
        if (isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)):
            annotation = ast.unparse(statement.annotation)
            if "ClassVar" in annotation:
                continue
            default = (ast.unparse(statement.value)
                       if statement.value is not None else "")
            fields.append((statement.target.id, annotation, default))
    return tuple(fields)


def snapshot_symbol(text: str, symbol: str):
    """A comparable structural snapshot of one top-level definition.

    Returns ``("class", fields)`` for classes, ``("function", dump)`` for
    functions, and ``None`` when the symbol (or the file) has no parsable
    definition.
    """
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return None
    node = _find_symbol(tree, symbol)
    if node is None:
        return None
    if isinstance(node, ast.ClassDef):
        return ("class", _class_fields(node))
    return ("function", ast.dump(_strip_docstring(node)))


def _symbol_changed(base, head, allow_appended: bool) -> bool:
    if base == head:
        return False
    if base is None or head is None:
        return True
    if (allow_appended and base[0] == "class" and head[0] == "class"
            and len(head[1]) >= len(base[1])
            and head[1][:len(base[1])] == base[1]):
        # Pure append: every new trailing field must carry a default, or the
        # payload shape changed for old writers after all.
        return any(default == "" for _, _, default in head[1][len(base[1]):])
    return True


def _version_literals(text: str, pattern: str) -> list[tuple[str, int]]:
    """Every (match, line) of the version pattern in a file's text."""
    matches: list[tuple[str, int]] = []
    for match in re.finditer(pattern, text):
        line = text.count("\n", 0, match.start()) + 1
        matches.append((match.group(0), line))
    return matches


def check_project(project: Project,
                  files: Sequence[SourceFile]) -> Iterable[Finding]:
    if project.diff_base is None:
        return []

    findings: list[Finding] = []
    for contract in CONTRACTS:
        changed: list[str] = []
        for watched in contract.watched:
            head_text = project.read_text(watched.path)
            base_text = project.base_text(watched.path)
            if head_text is None or base_text is None:
                # File new (or gone) relative to the base: the contract is
                # being introduced or dismantled wholesale — out of scope
                # for a bump check.
                continue
            base = snapshot_symbol(base_text, watched.symbol)
            head = snapshot_symbol(head_text, watched.symbol)
            if base is None and head is None:
                continue
            if _symbol_changed(base, head, contract.allow_appended_fields):
                changed.append(f"{watched.path}:{watched.symbol}")
        if not changed:
            continue

        head_version_text = project.read_text(contract.version_file)
        base_version_text = project.base_text(contract.version_file)
        if head_version_text is None or base_version_text is None:
            continue
        head_versions = _version_literals(head_version_text,
                                          contract.version_pattern)
        base_versions = _version_literals(base_version_text,
                                          contract.version_pattern)
        if {v for v, _ in head_versions} != {v for v, _ in base_versions}:
            continue  # the version literal moved — contract honoured
        line = head_versions[0][1] if head_versions else 1
        findings.append(Finding(
            RULE_ID, contract.version_file, line, 0,
            f"definitions feeding the '{contract.name}' fingerprint changed "
            f"({', '.join(sorted(changed))}) but its version string did not",
            hint=_HINT))
    return findings


register_rule(Rule(
    id=RULE_ID,
    name="fingerprint-bump",
    description="changed fingerprint inputs demand a version-string bump",
    check_project=check_project,
))
