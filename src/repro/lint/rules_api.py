"""RPR005 — closed error contract: ApiError codes come from ERROR_CODES.

``repro.api.errors.ERROR_CODES`` is a wire contract — clients branch on
the codes and the gateway maps them to HTTP statuses — so a typo'd or
ad-hoc code is an API change that slipped past review.  This rule reads
the contract table straight from the AST of ``api/errors.py`` and checks
every ``ApiError(...)`` construction site whose code is a string literal
against it; it also checks that the gateway's code→status map only maps
codes the contract declares.

Constructions with a non-literal code (``ApiError.from_dict`` re-hydrating
a wire payload) are left to the runtime ``__post_init__`` check, which
enforces the same table.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.lint.engine import Finding, Project, Rule, SourceFile, register_rule

RULE_ID = "RPR005"

_ERRORS_PATH = "src/repro/api/errors.py"
_SERVER_PATH = "src/repro/gateway/server.py"
_HINT = ("use a code from ERROR_CODES, or extend the contract table in "
         "api/errors.py + the gateway status map + CONTRIBUTING.md together")


def _error_codes(project: Project) -> frozenset[str] | None:
    """The contract table, read statically from ``api/errors.py``."""
    source = project.source(_ERRORS_PATH)
    if source is None:
        return None
    for node in source.tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "ERROR_CODES"
                and isinstance(node.value, (ast.Tuple, ast.List))):
            codes = [element.value for element in node.value.elts
                     if isinstance(element, ast.Constant)
                     and isinstance(element.value, str)]
            return frozenset(codes)
    return None


def _code_argument(call: ast.Call) -> ast.AST | None:
    for keyword in call.keywords:
        if keyword.arg == "code":
            return keyword.value
    if call.args:
        return call.args[0]
    return None


def check_project(project: Project,
                  files: Sequence[SourceFile]) -> Iterable[Finding]:
    codes = _error_codes(project)
    if codes is None:
        return []

    findings: list[Finding] = []
    for source in files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if func_name != "ApiError":
                continue
            argument = _code_argument(node)
            if (isinstance(argument, ast.Constant)
                    and isinstance(argument.value, str)
                    and argument.value not in codes):
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    f"ApiError code '{argument.value}' is not in the "
                    "ERROR_CODES contract", hint=_HINT))

    server = project.source(_SERVER_PATH)
    if server is not None and server.rel in {f.rel for f in files}:
        for node in ast.walk(server.tree):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "_ERROR_STATUS"
                    and isinstance(node.value, ast.Dict)):
                for key in node.value.keys:
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value not in codes):
                        findings.append(Finding(
                            RULE_ID, server.rel, key.lineno, key.col_offset,
                            f"gateway status map entry '{key.value}' is not "
                            "in the ERROR_CODES contract", hint=_HINT))
    return findings


register_rule(Rule(
    id=RULE_ID,
    name="closed-error-contract",
    description="every literal ApiError code is declared in ERROR_CODES",
    check_project=check_project,
))
