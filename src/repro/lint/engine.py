"""The repro-lint rule engine: shared ASTs, pragmas, structured findings.

The engine parses every linted file exactly once into a :class:`SourceFile`
(source text, line table, AST, pragma table) and hands the shared trees to
every registered :class:`Rule`.  Rules come in two shapes — per-file
visitors (``check_file``) and whole-project passes (``check_project``, for
contracts that span files: registry/CLI/test sync, git-diff-aware version
bumps) — and emit :class:`Finding` records with an exact ``file:line:col``
location, the rule id, a message and a fix hint.

Suppression is explicit and auditable: a ``# repro-lint: disable=RPR001``
comment suppresses that rule's findings on its own line, and
``# repro-lint: disable-file=RPR001`` suppresses it for the whole file.
Every pragma must pay its way — one that suppresses nothing is itself a
finding (rule ``RPR000``), so stale escapes cannot accumulate.

Rules register through the same open-registry idiom as every other policy
surface in the repo (:data:`RULE_REGISTRY` / :func:`register_rule`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: The engine's own rule id: unparsable files and pragmas that suppress
#: nothing.  RPR000 findings cannot themselves be suppressed.
META_RULE = "RPR000"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)=(?P<rules>[A-Z0-9_]+(?:\s*,\s*[A-Z0-9_]+)*)")


@dataclass(frozen=True)
class Finding:
    """One lint violation: where, which rule, what, and how to fix it."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def render(self) -> str:
        """The CLI's one-line rendering (``path:line:col: RULE message``)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the ``--json`` findings artifact."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message, "hint": self.hint}


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    ``check_file`` runs once per linted file over the shared AST;
    ``check_project`` runs once per lint invocation and receives the whole
    :class:`Project` plus the linted files — use it for cross-file
    contracts.  A rule may define either or both.
    """

    id: str
    name: str
    description: str
    check_file: "Callable[[SourceFile, Project], Iterable[Finding]] | None" = None
    check_project: "Callable[[Project, Sequence[SourceFile]], Iterable[Finding]] | None" = None

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[A-Z][A-Z0-9_]*\d", self.id):
            raise ValueError(f"rule id '{self.id}' must look like 'RPR001'")
        if self.check_file is None and self.check_project is None:
            raise ValueError(f"rule '{self.id}' defines no check at all")


#: Registered lint rules, addressable by id.
RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(rule: Rule, overwrite: bool = False) -> None:
    """Add a rule to the registry.

    Raises
    ------
    ValueError
        If the id is taken and ``overwrite`` is not set.
    """
    if rule.id in RULE_REGISTRY and not overwrite:
        raise ValueError(f"lint rule '{rule.id}' is already registered")
    RULE_REGISTRY[rule.id] = rule


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by id.

    Raises
    ------
    KeyError
        If the rule is unknown; the error lists the registered ids.
    """
    try:
        return RULE_REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(RULE_REGISTRY))
        raise KeyError(
            f"unknown lint rule '{rule_id}'; registered rules: {known}") from None


def _comments(text: str) -> Iterable[tuple[int, str]]:
    """(line, comment text) for every comment token in ``text``."""
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return


class SourceFile:
    """One parsed source file shared by every rule: text, AST, pragmas."""

    def __init__(self, rel: str, text: str) -> None:
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text)
        #: line number -> rule ids disabled on that line.
        self.line_pragmas: dict[int, set[str]] = {}
        #: rule id -> line number of the file-wide pragma.
        self.file_pragmas: dict[str, int] = {}
        # Pragmas live in real comment tokens only — a docstring *describing*
        # the pragma syntax is not a pragma.
        for number, comment in _comments(text):
            match = _PRAGMA_RE.search(comment)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group("kind") == "disable":
                self.line_pragmas.setdefault(number, set()).update(rules)
            else:
                for rule_id in rules:
                    self.file_pragmas.setdefault(rule_id, number)
        self._parents: dict[ast.AST, ast.AST] | None = None

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the AST (built once, on first use)."""
        if self._parents is None:
            self._parents = {child: node for node in ast.walk(self.tree)
                             for child in ast.iter_child_nodes(node)}
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """The node's enclosing chain, innermost first."""
        parents = self.parents()
        while node in parents:
            node = parents[node]
            yield node


class Project:
    """Everything a lint run can see: linted files plus lazy project context.

    Rules may pull in files outside the linted set (``cli.py`` for the
    registry-sync check, ``tests/`` for coverage references, the merge-base
    blob for diff-aware rules) through :meth:`source` / :meth:`read_text`;
    those loads are cached and parsed once.  ``overlay`` maps relative
    paths to in-memory text and takes precedence over the filesystem — the
    fixture tests build whole synthetic projects from it.
    """

    def __init__(self, root: Path | str | None = None, *,
                 overlay: Mapping[str, str] | None = None,
                 diff_base: str | None = None,
                 base_reader: Callable[[str], str | None] | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self.overlay = {_normalize(rel): text for rel, text in (overlay or {}).items()}
        #: The ref the diff-aware rules compare against (``None`` disables them).
        self.diff_base = diff_base
        self._base_reader = base_reader
        self._sources: dict[str, SourceFile | None] = {}
        #: rel path -> (line, message) for files that failed to parse.
        self.parse_errors: dict[str, tuple[int, str]] = {}
        self._base_cache: dict[str, str | None] = {}

    def read_text(self, rel: str) -> str | None:
        """The working-tree text of ``rel``, or ``None`` if it does not exist."""
        rel = _normalize(rel)
        if rel in self.overlay:
            return self.overlay[rel]
        if self.root is not None:
            path = self.root / rel
            if path.is_file():
                return path.read_text(encoding="utf-8")
        return None

    def source(self, rel: str) -> SourceFile | None:
        """The parsed :class:`SourceFile`, or ``None`` (missing/unparsable)."""
        rel = _normalize(rel)
        if rel not in self._sources:
            text = self.read_text(rel)
            if text is None:
                self._sources[rel] = None
            else:
                try:
                    self._sources[rel] = SourceFile(rel, text)
                except SyntaxError as exc:
                    self.parse_errors[rel] = (exc.lineno or 1, exc.msg or "syntax error")
                    self._sources[rel] = None
        return self._sources[rel]

    def base_text(self, rel: str) -> str | None:
        """``rel`` as it reads at the diff base, or ``None`` if absent there."""
        rel = _normalize(rel)
        if self._base_reader is None:
            return None
        if rel not in self._base_cache:
            self._base_cache[rel] = self._base_reader(rel)
        return self._base_cache[rel]

    def python_files(self, prefix: str) -> list[str]:
        """Every known ``.py`` path under ``prefix`` (overlay + filesystem)."""
        prefix = _normalize(prefix).rstrip("/") + "/"
        found = {rel for rel in self.overlay
                 if rel.startswith(prefix) and rel.endswith(".py")}
        if self.root is not None and (self.root / prefix).is_dir():
            for path in (self.root / prefix).rglob("*.py"):
                found.add(path.relative_to(self.root).as_posix())
        return sorted(found)


def _normalize(rel: str) -> str:
    return rel.replace("\\", "/").lstrip("./")


def run_lint(project: Project, rel_paths: Sequence[str],
             rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint ``rel_paths`` with ``rules`` (default: every registered rule).

    Returns the surviving findings sorted by location — pragma-suppressed
    findings are dropped, and pragmas that suppressed nothing come back as
    :data:`META_RULE` findings of their own.
    """
    if rules is None:
        rules = [RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY)]

    files: list[SourceFile] = []
    findings: list[Finding] = []
    for rel in rel_paths:
        rel = _normalize(rel)
        parsed = project.source(rel)
        if parsed is None:
            line, message = project.parse_errors.get(rel, (1, "file not found"))
            findings.append(Finding(META_RULE, rel, line, 0,
                                    f"could not parse file: {message}"))
            continue
        files.append(parsed)

    for rule in rules:
        if rule.check_file is not None:
            for parsed in files:
                findings.extend(rule.check_file(parsed, project))
        if rule.check_project is not None:
            findings.extend(rule.check_project(project, files))

    linted = {parsed.rel: parsed for parsed in files}
    used_line: set[tuple[str, int, str]] = set()
    used_file: set[tuple[str, str]] = set()
    kept: list[Finding] = []
    for finding in findings:
        parsed = linted.get(finding.path)
        if parsed is not None and finding.rule != META_RULE:
            if finding.rule in parsed.file_pragmas:
                used_file.add((finding.path, finding.rule))
                continue
            if finding.rule in parsed.line_pragmas.get(finding.line, ()):
                used_line.add((finding.path, finding.line, finding.rule))
                continue
        kept.append(finding)

    for parsed in files:
        for line, rule_ids in parsed.line_pragmas.items():
            for rule_id in rule_ids:
                if (parsed.rel, line, rule_id) not in used_line:
                    kept.append(Finding(
                        META_RULE, parsed.rel, line, 0,
                        f"pragma 'disable={rule_id}' suppresses nothing",
                        hint="remove the stale pragma (or fix the rule id)"))
        for rule_id, line in parsed.file_pragmas.items():
            if (parsed.rel, rule_id) not in used_file:
                kept.append(Finding(
                    META_RULE, parsed.rel, line, 0,
                    f"pragma 'disable-file={rule_id}' suppresses nothing",
                    hint="remove the stale pragma (or fix the rule id)"))

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


# ----------------------------------------------------------------------
# Shared AST helpers for the rules
# ----------------------------------------------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_dataclass_decorator(node: ast.AST) -> bool:
    """True for ``@dataclass`` / ``@dataclasses.dataclass`` (bare or called)."""
    if isinstance(node, ast.Call):
        node = node.func
    return dotted_name(node) in ("dataclass", "dataclasses.dataclass")


def dataclass_frozen(decorator: ast.AST) -> bool:
    """True when a dataclass decorator passes ``frozen=True``."""
    if not isinstance(decorator, ast.Call):
        return False
    return any(kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
               and kw.value.value is True for kw in decorator.keywords)
