"""RPR006 — telemetry discipline: defer in the hot loop, guard the sink.

The telemetry core's two contracts (CONTRIBUTING: "observability is part
of a subsystem") have teeth here:

* **Record construction stays off the serving hot path.**  Inside
  ``serving/``, constructing ``Span``/``Event``/``Gauge`` records directly
  is only allowed inside a translator function registered through
  ``Telemetry.defer`` — bulk producers capture raw tuples and materialise
  records at read time, outside the <5 % enabled-overhead budget.
* **``telemetry=None`` paths are branch-free no-ops.**  Any emission call
  (``.span``/``.event``/``.gauge``/``.count``/``.wall_span``/
  ``.wall_event``) on a receiver following the nullable ``telemetry``
  naming convention must be guarded — an enclosing ``if`` that tests the
  receiver, or an early ``if telemetry is None ...: return`` in the same
  function — so the disabled path never even reaches the sink.

Receivers with other names (the narrowed ``tel`` locals the engines
assign under an enabledness check) are trusted: the convention is narrow
once, emit freely.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.engine import Finding, Project, Rule, SourceFile, register_rule

RULE_ID = "RPR006"

_RECORD_TYPES = frozenset({"Span", "Event", "Gauge"})
_EMIT_METHODS = frozenset({"span", "event", "gauge", "count",
                           "wall_span", "wall_event"})
_HOT_PREFIX = "src/repro/serving/"

_DEFER_HINT = ("capture raw tuples in the loop and register a "
               "Telemetry.defer translator; records materialise at read time")
_GUARD_HINT = ("guard the call site (`if telemetry:`) or narrow once — "
               "`tel = telemetry if telemetry is not None and "
               "telemetry.enabled else None`")


def _receiver_source(node: ast.AST) -> str | None:
    """The dotted receiver if it follows the nullable-telemetry convention."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    dotted = ".".join(reversed(parts))
    if dotted == "telemetry" or dotted.endswith(".telemetry"):
        return dotted
    return None


def _defer_translators(source: SourceFile) -> set[str]:
    """Names of functions registered via ``<sink>.defer(fn)`` in this file."""
    names: set[str] = set()
    for node in ast.walk(source.tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr == "defer"):
            for argument in node.args:
                if isinstance(argument, ast.Name):
                    names.add(argument.id)
                elif isinstance(argument, (ast.FunctionDef, ast.Lambda)):
                    pass  # lambdas carry no name; the visitor walks them anyway
    return names


def _mentions(test: ast.AST, receiver: str) -> bool:
    """Does a guard expression test the receiver (or its truthiness)?"""
    for node in ast.walk(test):
        if _receiver_source(node) == receiver:
            return True
    return False


def _terminates(statement: ast.stmt) -> bool:
    body = getattr(statement, "body", None)
    last = body[-1] if body else statement
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _is_guarded(source: SourceFile, call: ast.Call, receiver: str) -> bool:
    enclosing_function: ast.AST | None = None
    for ancestor in source.ancestors(call):
        if isinstance(ancestor, (ast.If, ast.IfExp, ast.While)):
            if _mentions(ancestor.test, receiver):
                return True
        elif isinstance(ancestor, ast.BoolOp) and _mentions(ancestor, receiver):
            return True
        elif (enclosing_function is None
              and isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                        ast.Lambda))):
            enclosing_function = ancestor
    if enclosing_function is None or isinstance(enclosing_function, ast.Lambda):
        return False
    # Early-out guard: an `if <receiver>...: return/raise/continue` that runs
    # before the call inside the same function body.
    for statement in ast.walk(enclosing_function):
        if (isinstance(statement, ast.If) and statement.lineno < call.lineno
                and _mentions(statement.test, receiver)
                and _terminates(statement)):
            return True
    return False


def check_file(source: SourceFile, project: Project) -> Iterable[Finding]:
    findings: list[Finding] = []
    if not source.rel.startswith("src/repro/"):
        return findings
    in_obs = source.rel.startswith("src/repro/obs/")

    translators = _defer_translators(source) if source.rel.startswith(
        _HOT_PREFIX) else set()

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue

        if (source.rel.startswith(_HOT_PREFIX)
                and isinstance(node.func, ast.Name)
                and node.func.id in _RECORD_TYPES):
            inside_translator = any(
                isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                and ancestor.name in translators
                for ancestor in source.ancestors(node))
            if not inside_translator:
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    f"telemetry record {node.func.id}(...) constructed on "
                    "the serving path outside a defer translator",
                    hint=_DEFER_HINT))

        if in_obs:
            continue  # the telemetry core itself owns its internals
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _EMIT_METHODS):
            receiver = _receiver_source(node.func.value)
            if receiver is not None and not _is_guarded(source, node, receiver):
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    f"unguarded telemetry emission {receiver}."
                    f"{node.func.attr}(...) — the telemetry=None path must "
                    "be a branch-free no-op", hint=_GUARD_HINT))
    return findings


register_rule(Rule(
    id=RULE_ID,
    name="telemetry-discipline",
    description="defer-translated records on the hot path; guarded emission",
    check_file=check_file,
))
