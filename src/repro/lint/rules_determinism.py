"""RPR001 — determinism: no wall clocks, no ambient randomness.

Every simulation result in this repo is a pure function of explicit
inputs.  Two conventions keep it that way, and this rule machine-checks
both inside ``src/repro/``:

* **No wall-clock reads** (``time.time``/``perf_counter``/``monotonic``,
  ``datetime.now`` and friends) outside the ``obs/`` wall-span helpers —
  the one place the telemetry contract allows the wall-clock domain.
  Benchmarks and scripts live outside ``src/repro/`` and are exempt.
* **No ambient randomness**: every draw goes through an explicitly seeded
  ``random.Random(seed)`` instance.  Module-level ``random.*`` calls hit
  the interpreter-global RNG, and a bare ``random.Random()`` seeds itself
  from the OS — both make reports unreproducible.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
    register_rule,
)

RULE_ID = "RPR001"

#: Fully-qualified wall-clock reads (matched on the dotted call target).
_WALL_CLOCK_FULL = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns",
})
#: Wall-clock reads matched on the last two components, so both
#: ``datetime.now()`` (class import) and ``datetime.datetime.now()`` hit.
_WALL_CLOCK_TAIL = frozenset({
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})
#: Names importable straight off the ``time`` module that read the wall.
_TIME_FUNCTIONS = frozenset(name.split(".", 1)[1] for name in _WALL_CLOCK_FULL)

_WALL_HINT = ("simulations must not read the wall clock; use the simulated "
              "clock, or obs wall_span/wall_event for search-side timing")
_RNG_HINT = ("thread randomness through an explicit random.Random(seed) "
             "instance (see CONTRIBUTING.md: determinism is a contract)")


def _wall_clock_target(node: ast.AST) -> str | None:
    """The offending dotted name if ``node`` names a wall-clock read."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    if dotted in _WALL_CLOCK_FULL:
        return dotted
    tail = ".".join(dotted.split(".")[-2:])
    if tail in _WALL_CLOCK_TAIL:
        return dotted
    return None


def _wall_clock_enforced(rel: str) -> bool:
    """Wall-clock reads are policed inside ``src/repro/`` except ``obs/``."""
    return rel.startswith("src/repro/") and not rel.startswith("src/repro/obs/")


def check_file(source: SourceFile, project: Project) -> Iterable[Finding]:
    police_wall = _wall_clock_enforced(source.rel)
    findings: list[Finding] = []

    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if police_wall and node.module == "time":
                bad = sorted(alias.name for alias in node.names
                             if alias.name in _TIME_FUNCTIONS)
                if bad:
                    findings.append(Finding(
                        RULE_ID, source.rel, node.lineno, node.col_offset,
                        f"imports wall-clock reader(s) {', '.join(bad)} "
                        "from the time module", hint=_WALL_HINT))
            if node.module == "random":
                bad = sorted(alias.name for alias in node.names
                             if alias.name != "Random")
                if bad:
                    findings.append(Finding(
                        RULE_ID, source.rel, node.lineno, node.col_offset,
                        "imports module-level RNG function(s) "
                        f"{', '.join(bad)} from the random module",
                        hint=_RNG_HINT))
            continue

        if not isinstance(node, ast.Call):
            continue

        if police_wall:
            target = _wall_clock_target(node.func)
            if target is not None:
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    f"wall-clock read {target}() outside obs/",
                    hint=_WALL_HINT))
            for keyword in node.keywords:
                if keyword.arg == "default_factory":
                    target = _wall_clock_target(keyword.value)
                    if target is not None:
                        findings.append(Finding(
                            RULE_ID, source.rel, node.lineno, node.col_offset,
                            f"wall-clock reader {target} as a default_factory",
                            hint=_WALL_HINT))

        dotted = dotted_name(node.func)
        if dotted == "random.Random" or dotted == "Random":
            if not node.args and not node.keywords:
                findings.append(Finding(
                    RULE_ID, source.rel, node.lineno, node.col_offset,
                    "unseeded Random() self-seeds from the OS",
                    hint=_RNG_HINT))
        elif dotted is not None and dotted.startswith("random."):
            findings.append(Finding(
                RULE_ID, source.rel, node.lineno, node.col_offset,
                f"module-level RNG call {dotted}() uses the global "
                "interpreter RNG", hint=_RNG_HINT))

    return findings


register_rule(Rule(
    id=RULE_ID,
    name="determinism",
    description="no wall-clock reads outside obs/; no global or unseeded RNG",
    check_file=check_file,
))
