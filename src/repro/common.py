"""Shared primitives used across the CIM-TPU model packages.

This module intentionally stays tiny: the numeric precision enum shared by
workloads and hardware models, and a couple of arithmetic helpers that appear
in every cycle-count derivation.
"""

from __future__ import annotations

import enum
import math


class Precision(enum.Enum):
    """Numeric formats supported by the MXUs (the paper evaluates both)."""

    INT8 = "int8"
    BF16 = "bf16"

    @property
    def bits(self) -> int:
        """Bit width of one operand."""
        return {Precision.INT8: 8, Precision.BF16: 16}[self]

    @property
    def bytes(self) -> int:
        """Byte width of one operand."""
        return self.bits // 8

    @property
    def mantissa_bits(self) -> int:
        """Bits that enter the integer MAC datapath (CIM FP mode loads mantissas)."""
        return {Precision.INT8: 8, Precision.BF16: 8}[self]

    @property
    def accumulator_bytes(self) -> int:
        """Byte width of an accumulated partial sum / output element."""
        return {Precision.INT8: 4, Precision.BF16: 4}[self]


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division; denominator must be positive."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"invalid clamp range [{low}, {high}]")
    return max(low, min(high, value))


def cycles_to_seconds(cycles: float, frequency_ghz: float) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    if frequency_ghz <= 0:
        raise ValueError("frequency must be positive")
    return cycles / (frequency_ghz * 1e9)


def seconds_to_cycles(seconds: float, frequency_ghz: float) -> float:
    """Convert a duration in seconds to clock cycles."""
    if frequency_ghz <= 0:
        raise ValueError("frequency must be positive")
    return seconds * frequency_ghz * 1e9


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (used for speedup aggregation)."""
    if not values:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
