"""Text dashboard for trace/metrics files: ``repro-sim report``.

Renders, from either exported format, the run at a glance:

* one sparkline per gauge series (queue depth, batch occupancy, KV
  utilisation, SLO attainment), binned onto a fixed-width time grid
  with min/mean/max annotations;
* the autoscaler action log and fault markers as a timestamped table;
* per-track span totals (where the time went);
* final counter totals.

Everything is plain ASCII plus the eight Unicode block characters used
for sparklines — no terminal control codes, so output is pipe- and
CI-log-friendly.
"""

from __future__ import annotations

SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Event tracks rendered in full in the action log (everything else —
#: per-request routing decisions included — is aggregated into per-name
#: counts to keep the dashboard bounded).
ACTION_TRACKS = ("autoscaler", "faults")

#: Maximum rows printed in the action log before truncation.
MAX_ACTION_ROWS = 40


def sparkline(values: list[float], width: int = 60) -> str:
    """Bin ``values`` into ``width`` buckets and render block chars."""
    if not values:
        return ""
    if len(values) > width:
        binned = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            binned.append(sum(chunk) / len(chunk))
    else:
        binned = list(values)
    lo, hi = min(binned), max(binned)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(binned)
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((value - lo) / span * len(SPARK_CHARS)))]
        for value in binned)


def _format_args(args: dict) -> str:
    return " ".join(f"{key}={value}" for key, value in sorted(args.items()))


def render_report(data: dict, *, width: int = 60) -> str:
    """Render the loaded trace dict (see ``repro.obs.export``) as text."""
    unit = "s (simulated)" if data.get("time_domain") == "simulated" \
        else "s (wall)"
    lines: list[str] = []
    out = lines.append

    # ---- gauge sparklines ------------------------------------------------
    series: dict[tuple[str, str], list[dict]] = {}
    for gauge in data.get("gauges", []):
        series.setdefault((gauge["track"], gauge["name"]), []).append(gauge)
    if series:
        out("== time-series gauges ==")
        label_width = max(len(f"{track}:{name}")
                          for track, name in series) + 2
        for (track, name), samples in sorted(series.items()):
            samples = sorted(samples, key=lambda s: s["t_s"])
            values = [s["value"] for s in samples]
            t0, t1 = samples[0]["t_s"], samples[-1]["t_s"]
            stats = (f"min {min(values):.3g}  "
                     f"mean {sum(values) / len(values):.3g}  "
                     f"max {max(values):.3g}")
            out(f"{f'{track}:{name}':<{label_width}}"
                f"{sparkline(values, width)}")
            out(f"{'':<{label_width}}[{t0:.2f}..{t1:.2f}{unit}]  {stats}")
        out("")

    # ---- action log (autoscaler / faults / router) -----------------------
    actions = [event for event in data.get("events", [])
               if event["track"] in ACTION_TRACKS]
    actions.sort(key=lambda event: event["t_s"])
    if actions:
        out("== action log ==")
        shown = actions[:MAX_ACTION_ROWS]
        for event in shown:
            args = _format_args(event.get("args") or {})
            out(f"  t={event['t_s']:>10.3f}  {event['track']:<10} "
                f"{event['name']:<14} {args}".rstrip())
        if len(actions) > len(shown):
            out(f"  ... {len(actions) - len(shown)} more")
        out("")

    # ---- other events, aggregated by (track, name) -----------------------
    other: dict[tuple[str, str], int] = {}
    for event in data.get("events", []):
        if event["track"] not in ACTION_TRACKS:
            key = (event["track"], event["name"])
            other[key] = other.get(key, 0) + 1
    if other:
        out("== events ==")
        for (track, name), count in sorted(other.items()):
            out(f"  {track}:{name}  x{count}")
        out("")

    # ---- span totals per track -------------------------------------------
    totals: dict[tuple[str, str], tuple[int, float]] = {}
    for span in data.get("spans", []):
        key = (span["track"], span["name"])
        count, total = totals.get(key, (0, 0.0))
        totals[key] = (count + 1, total + span["dur_s"])
    if totals:
        out("== span totals ==")
        for (track, name), (count, total) in sorted(totals.items()):
            out(f"  {track}:{name}  x{count}  {total:.4f}{unit}")
        out("")

    # ---- counters --------------------------------------------------------
    counters = data.get("counters") or {}
    if counters:
        out("== counters ==")
        for name, value in sorted(counters.items()):
            out(f"  {name} = {value:g}")
        out("")

    if not lines:
        return "(empty trace: no gauges, events, spans or counters)\n"
    return "\n".join(lines).rstrip() + "\n"
