"""The :class:`Telemetry` object: spans, events, counters, gauges.

One ``Telemetry`` instance collects everything a run emits.  Emission is
cheap by construction — no locks, no clock reads unless the caller asks
for a wall-clock span — because the serving engine's inner loop records
from inside its hottest path and the enabled-overhead budget is <5 %
wall (``benchmarks/bench_obs.py`` gates it).  Bulk producers go further:
they register a :meth:`Telemetry.defer` callable over their raw capture
tuples, and the per-record :class:`Span`/:class:`Event`/:class:`Gauge`
construction happens lazily on first read (export, report, summary) —
outside both the simulated run and the overhead budget.

Two time domains coexist, and deliberately never mix inside one file:

* **Simulated seconds** — the serving/cluster engines stamp spans,
  events and gauges with the simulation clock, so a trace renders the
  *modelled* timeline (a 10-minute fleet run spans 10 minutes in
  Perfetto however fast the replay ran).
* **Wall seconds** — the sweep engine and optimizer stamp spans with
  :func:`time.perf_counter` relative to the telemetry epoch, rendering
  where a search actually spent its budget.

The CLI wires one domain per output file, so exported timestamps are
always mutually comparable.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One timed operation on a named track: ``[start_s, end_s]``."""

    track: str
    name: str
    start_s: float
    end_s: float
    args: dict | None = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class Event:
    """One instantaneous marker (fault onset, scale decision, reject)."""

    track: str
    name: str
    time_s: float
    args: dict | None = None
    #: Chrome instant-event scope: ``"t"`` draws a tick on the track,
    #: ``"g"`` a full-height line across every track (fault markers).
    scope: str = "t"


@dataclass(frozen=True)
class Gauge:
    """One fixed-grid time-series sample of a named quantity."""

    track: str
    name: str
    time_s: float
    value: float


class Telemetry:
    """Collects spans/events/counters/gauges for one run.

    ``enabled=False`` constructs a recognisable no-op sink: every emit
    method returns immediately.  Hot paths should not even get that far —
    the convention throughout the codebase is ``telemetry=None`` off,
    an enabled instance on, with one truthiness check at the call site.
    """

    __slots__ = ("enabled", "gauge_interval_s", "counters", "_spans",
                 "_events", "_gauges", "_pending", "_wall_epoch")

    def __init__(self, *, enabled: bool = True,
                 gauge_interval_s: float = 1.0) -> None:
        if gauge_interval_s <= 0:
            raise ValueError("gauge_interval_s must be positive")
        self.enabled = enabled
        self.gauge_interval_s = gauge_interval_s
        self._spans: list[Span] = []
        self._events: list[Event] = []
        self.counters: dict[str, float] = {}
        self._gauges: list[Gauge] = []
        #: Deferred bulk producers (see :meth:`defer`) not yet materialised.
        self._pending: list = []
        self._wall_epoch = time.perf_counter()

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------
    # Storage — records materialise lazily
    # ------------------------------------------------------------------

    def defer(self, materialize) -> None:
        """Register a bulk producer whose records materialise on first read.

        ``materialize(spans, events, gauges)`` is called once, lazily, and
        appends :class:`Span`/:class:`Event`/:class:`Gauge` records to the
        lists it is handed.  Bulk emitters (the serving engine translates
        hundreds of thousands of raw capture tuples per run) register one
        callable instead of constructing every record inside the timed
        run — the construction cost lands at export/report time, where the
        <5 % enabled-overhead budget does not apply.
        """
        if not self.enabled:
            return
        self._pending.append(materialize)

    def _drain(self) -> None:
        pending, self._pending = self._pending, []
        for materialize in pending:
            materialize(self._spans, self._events, self._gauges)

    @property
    def spans(self) -> list[Span]:
        if self._pending:
            self._drain()
        return self._spans

    @property
    def events(self) -> list[Event]:
        if self._pending:
            self._drain()
        return self._events

    @property
    def gauges(self) -> list[Gauge]:
        if self._pending:
            self._drain()
        return self._gauges

    # ------------------------------------------------------------------
    # Emission — simulated-time domain
    # ------------------------------------------------------------------

    def span(self, track: str, name: str, start_s: float, end_s: float,
             args: dict | None = None) -> None:
        if not self.enabled:
            return
        if self._pending:
            self._drain()
        self._spans.append(Span(track, name, start_s, end_s, args))

    def event(self, track: str, name: str, time_s: float,
              args: dict | None = None, *, scope: str = "t") -> None:
        if not self.enabled:
            return
        if self._pending:
            self._drain()
        self._events.append(Event(track, name, time_s, args, scope))

    def gauge(self, track: str, name: str, time_s: float,
              value: float) -> None:
        if not self.enabled:
            return
        if self._pending:
            self._drain()
        self._gauges.append(Gauge(track, name, time_s, value))

    def count(self, name: str, delta: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    # ------------------------------------------------------------------
    # Emission — wall-clock domain (sweep engine, optimizer)
    # ------------------------------------------------------------------

    def wall_now(self) -> float:
        """Seconds since this telemetry object was created."""
        return time.perf_counter() - self._wall_epoch

    @contextmanager
    def wall_span(self, track: str, name: str,
                  args: dict | None = None) -> Iterator[None]:
        """Time a block against the wall clock and record it as a span."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            if self._pending:
                self._drain()
            self._spans.append(Span(track, name, start - self._wall_epoch,
                                    end - self._wall_epoch, args))

    def wall_event(self, track: str, name: str,
                   args: dict | None = None, *, scope: str = "t") -> None:
        if not self.enabled:
            return
        if self._pending:
            self._drain()
        self._events.append(Event(track, name, self.wall_now(), args, scope))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tracks(self) -> list[str]:
        """Distinct track names, sorted — the exporters' tid ordering."""
        names = {span.track for span in self.spans}
        names.update(event.track for event in self.events)
        names.update(gauge.track for gauge in self.gauges)
        return sorted(names)

    def sorted_events(self) -> list[Event]:
        """Events in monotonic time order (stable across equal stamps)."""
        return sorted(self.events, key=lambda event: event.time_s)

    def summary(self) -> dict:
        """Record counts — handy for tests and the bench record."""
        return {
            "spans": len(self.spans),
            "events": len(self.events),
            "gauges": len(self.gauges),
            "counters": dict(sorted(self.counters.items())),
        }
