"""Trace/metrics file formats: Chrome trace-event JSON and metrics JSONL.

The Chrome format targets chrome://tracing and Perfetto.  Mapping:

* every telemetry *track* becomes one thread (``tid``) inside a single
  process (``pid`` 1), named via ``thread_name`` metadata — replicas
  render as parallel tracks;
* spans are complete events (``ph: "X"``) with microsecond ``ts``/``dur``;
* events are instant events (``ph: "i"``) — fault markers use global
  scope (``s: "g"``) so they draw a line across every replica track;
* gauges become counter events (``ph: "C"``) that Perfetto plots as a
  step chart per (track, gauge-name) series;
* final counter totals ride in a ``repro.counters`` metadata record.

Track-to-tid assignment is sorted-by-name, so the mapping is a pure
function of the telemetry content — the golden schema test pins it.

The metrics JSONL stream is one self-describing object per line
(``{"type": "gauge" | "event" | "span" | "counter", ...}``), ordered by
timestamp within each type, counters last.  Both formats round-trip
through :func:`load_trace_file` / :func:`load_metrics_jsonl` into the
neutral dict shape the ``repro-sim report`` renderer consumes.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.telemetry import Telemetry

#: Trace-format version stamped into both file kinds.
TRACE_VERSION = 1

#: All telemetry lives in one trace process; tracks are its threads.
TRACE_PID = 1


def chrome_trace_dict(telemetry: Telemetry, *,
                      time_domain: str = "simulated") -> dict:
    """Render telemetry as a Chrome trace-event JSON object (dict)."""
    tids = {track: tid for tid, track in enumerate(telemetry.tracks())}
    events: list[dict] = [
        {"ph": "M", "pid": TRACE_PID, "tid": 0, "name": "process_name",
         "args": {"name": f"repro-sim ({time_domain} time)"}},
    ]
    for track, tid in tids.items():
        events.append({"ph": "M", "pid": TRACE_PID, "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
    for span in telemetry.spans:
        record = {"ph": "X", "pid": TRACE_PID, "tid": tids[span.track],
                  "name": span.name, "cat": "sim",
                  "ts": span.start_s * 1e6,
                  "dur": max(0.0, span.duration_s) * 1e6}
        if span.args:
            record["args"] = span.args
        events.append(record)
    for event in telemetry.sorted_events():
        record = {"ph": "i", "pid": TRACE_PID, "tid": tids[event.track],
                  "name": event.name, "cat": "sim",
                  "ts": event.time_s * 1e6, "s": event.scope}
        if event.args:
            record["args"] = event.args
        events.append(record)
    for gauge in telemetry.gauges:
        events.append({"ph": "C", "pid": TRACE_PID,
                       "tid": tids[gauge.track],
                       "name": f"{gauge.track}:{gauge.name}", "cat": "sim",
                       "ts": gauge.time_s * 1e6,
                       "args": {"value": gauge.value}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "repro.trace_version": TRACE_VERSION,
            "repro.time_domain": time_domain,
            "repro.counters": dict(sorted(telemetry.counters.items())),
        },
    }


def write_chrome_trace(telemetry: Telemetry, path: str | pathlib.Path, *,
                       time_domain: str = "simulated") -> pathlib.Path:
    trace = chrome_trace_dict(telemetry, time_domain=time_domain)
    path = pathlib.Path(path)
    path.write_text(json.dumps(trace, sort_keys=True), encoding="utf-8")
    return path


def metrics_lines(telemetry: Telemetry, *,
                  time_domain: str = "simulated") -> list[dict]:
    """Render telemetry as a list of metrics-JSONL records."""
    lines: list[dict] = [{"type": "meta", "trace_version": TRACE_VERSION,
                          "time_domain": time_domain}]
    for gauge in telemetry.gauges:
        lines.append({"type": "gauge", "track": gauge.track,
                      "name": gauge.name, "t_s": gauge.time_s,
                      "value": gauge.value})
    for event in telemetry.sorted_events():
        record = {"type": "event", "track": event.track,
                  "name": event.name, "t_s": event.time_s}
        if event.args:
            record["args"] = event.args
        lines.append(record)
    for span in telemetry.spans:
        record = {"type": "span", "track": span.track, "name": span.name,
                  "t_s": span.start_s, "dur_s": span.duration_s}
        if span.args:
            record["args"] = span.args
        lines.append(record)
    for name, value in sorted(telemetry.counters.items()):
        lines.append({"type": "counter", "name": name, "value": value})
    return lines


def write_metrics_jsonl(telemetry: Telemetry, path: str | pathlib.Path, *,
                        time_domain: str = "simulated") -> pathlib.Path:
    text = "\n".join(json.dumps(line, sort_keys=True)
                     for line in metrics_lines(telemetry,
                                               time_domain=time_domain))
    path = pathlib.Path(path)
    path.write_text(text + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Loading — both formats normalise to one dict shape for the renderer:
# {"time_domain", "gauges": [...], "events": [...], "spans": [...],
#  "counters": {...}}
# ----------------------------------------------------------------------


def load_metrics_jsonl(path: str | pathlib.Path) -> dict:
    data = {"time_domain": "simulated", "gauges": [], "events": [],
            "spans": [], "counters": {}}
    for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            data["time_domain"] = record.get("time_domain", "simulated")
        elif kind == "gauge":
            data["gauges"].append({"track": record["track"],
                                   "name": record["name"],
                                   "t_s": record["t_s"],
                                   "value": record["value"]})
        elif kind == "event":
            data["events"].append({"track": record["track"],
                                   "name": record["name"],
                                   "t_s": record["t_s"],
                                   "args": record.get("args") or {}})
        elif kind == "span":
            data["spans"].append({"track": record["track"],
                                  "name": record["name"],
                                  "t_s": record["t_s"],
                                  "dur_s": record["dur_s"],
                                  "args": record.get("args") or {}})
        elif kind == "counter":
            data["counters"][record["name"]] = record["value"]
    return data


def load_chrome_trace(path: str | pathlib.Path) -> dict:
    trace = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    other = trace.get("otherData", {})
    data = {"time_domain": other.get("repro.time_domain", "simulated"),
            "gauges": [], "events": [], "spans": [],
            "counters": dict(other.get("repro.counters", {}))}
    thread_names: dict[int, str] = {}
    for record in trace.get("traceEvents", []):
        if record.get("ph") == "M" and record.get("name") == "thread_name":
            thread_names[record["tid"]] = record["args"]["name"]
    for record in trace.get("traceEvents", []):
        ph = record.get("ph")
        track = thread_names.get(record.get("tid"), "main")
        if ph == "X":
            data["spans"].append({"track": track, "name": record["name"],
                                  "t_s": record["ts"] / 1e6,
                                  "dur_s": record.get("dur", 0.0) / 1e6,
                                  "args": record.get("args") or {}})
        elif ph == "i":
            data["events"].append({"track": track, "name": record["name"],
                                   "t_s": record["ts"] / 1e6,
                                   "args": record.get("args") or {}})
        elif ph == "C":
            # Counter names are exported as "track:gauge"; recover both.
            name = record["name"]
            gauge_name = name.split(":", 1)[1] if ":" in name else name
            data["gauges"].append({"track": track, "name": gauge_name,
                                   "t_s": record["ts"] / 1e6,
                                   "value": record["args"]["value"]})
    return data


def load_trace_file(path: str | pathlib.Path) -> dict:
    """Load either trace format, sniffing by content.

    Chrome traces are one JSON object with a ``traceEvents`` key; the
    metrics stream is JSONL whose first line is a ``meta`` record.
    """
    path = pathlib.Path(path)
    head = path.read_text(encoding="utf-8").lstrip()[:4096]
    if not head:
        raise ValueError(f"{path}: empty trace file")
    first_line = head.splitlines()[0]
    try:
        record = json.loads(first_line)
    except json.JSONDecodeError:
        record = None
    if isinstance(record, dict) and record.get("type") in (
            "meta", "gauge", "event", "span", "counter"):
        return load_metrics_jsonl(path)
    return load_chrome_trace(path)
