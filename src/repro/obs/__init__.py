"""Observability layer: spans, events, counters and time-series gauges.

Every subsystem — the discrete-event serving engine, the cluster, the
sweep engine, the result store and the co-design optimizer — emits its
structured telemetry through one :class:`~repro.obs.telemetry.Telemetry`
object.  The contract, test-gated end to end:

* **Zero overhead when off.**  Call sites receive ``telemetry=None`` by
  default and guard every emission behind a single truthiness check, so
  an uninstrumented run executes the exact pre-telemetry hot path.
* **Never perturbs results.**  Telemetry only *reads* simulation state;
  reports are bit-for-bit identical with tracing on vs off (serial,
  sharded and fluid — fluid emits summary events only).
* **Simulated-time gauges.**  Time-series samples are taken on a fixed
  grid in *simulated* seconds, so a trace of a 10-minute fleet run has
  the same gauge density however fast the simulator replayed it.

Exports: Chrome trace-event JSON (:func:`~repro.obs.export.write_chrome_trace`,
loadable in chrome://tracing or Perfetto), a metrics JSONL stream
(:func:`~repro.obs.export.write_metrics_jsonl`) and a text dashboard
(:func:`~repro.obs.report.render_report`, the ``repro-sim report``
subcommand).
"""

from repro.obs.export import (
    load_metrics_jsonl,
    load_trace_file,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.report import render_report
from repro.obs.telemetry import Event, Gauge, Span, Telemetry

__all__ = [
    "Event",
    "Gauge",
    "Span",
    "Telemetry",
    "load_metrics_jsonl",
    "load_trace_file",
    "render_report",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
