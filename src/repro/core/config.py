"""Chip-level configuration of a (CIM-based or baseline) TPU.

A :class:`TPUConfig` captures every architectural parameter of Table I plus
the design choices explored in Table IV: which matrix-unit flavour is
installed, how many MXUs there are, their dimensions, memory capacities and
bandwidths, and the scheduling options of the mapping engine.  Everything the
simulator does is derived from one of these objects, so sweeping design points
is just a matter of constructing new configs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common import Precision
from repro.mapping.schedule import ScheduleOptions


class MXUType(enum.Enum):
    """Matrix-unit flavour installed in the TensorCore."""

    SYSTOLIC = "systolic"
    CIM = "cim"


@dataclass(frozen=True)
class TPUConfig:
    """Full architectural description of one TPU chip model."""

    name: str = "tpuv4i"
    mxu_type: MXUType = MXUType.SYSTOLIC
    mxu_count: int = 4
    # Digital systolic MXU dimensions (used when mxu_type is SYSTOLIC).
    systolic_rows: int = 128
    systolic_cols: int = 128
    # CIM-MXU grid dimensions (used when mxu_type is CIM).
    cim_grid_rows: int = 16
    cim_grid_cols: int = 8
    cim_core_rows: int = 128
    cim_core_cols: int = 256
    # Chip-level parameters (Table I).
    frequency_ghz: float = 1.05
    vmem_bytes: int = 16 * 2**20
    cmem_bytes: int = 128 * 2**20
    main_memory_bytes: int = 8 * 2**30
    main_memory_bandwidth_gbps: float = 614.0
    oci_bytes_per_cycle: float = 2048.0
    ici_link_bandwidth_gbps: float = 100.0
    ici_link_count: int = 2
    vector_lanes: int = 8 * 128
    technology: str = "tsmc22"
    default_precision: Precision = Precision.INT8
    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("TPU configuration needs a non-empty name")
        positive = (
            "mxu_count", "systolic_rows", "systolic_cols", "cim_grid_rows", "cim_grid_cols",
            "cim_core_rows", "cim_core_cols", "frequency_ghz", "vmem_bytes", "cmem_bytes",
            "main_memory_bytes", "main_memory_bandwidth_gbps", "oci_bytes_per_cycle",
            "ici_link_bandwidth_gbps", "ici_link_count", "vector_lanes",
        )
        for field_name in positive:
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # ------------------------------------------------------------ derived
    @property
    def macs_per_cycle_per_mxu(self) -> int:
        """Peak MACs per cycle of one installed MXU."""
        if self.mxu_type is MXUType.SYSTOLIC:
            return self.systolic_rows * self.systolic_cols
        core_macs = self.cim_core_rows  # net MACs/cycle of one CIM core
        return self.cim_grid_rows * self.cim_grid_cols * core_macs

    @property
    def peak_macs_per_cycle(self) -> int:
        """Peak MACs per cycle of the whole chip."""
        return self.mxu_count * self.macs_per_cycle_per_mxu

    @property
    def peak_tops(self) -> float:
        """Peak INT8 TOPS of the chip."""
        return 2.0 * self.peak_macs_per_cycle * self.frequency_ghz * 1e9 / 1e12

    @property
    def mxu_description(self) -> str:
        """Human-readable MXU description used in reports."""
        if self.mxu_type is MXUType.SYSTOLIC:
            return f"{self.mxu_count} × {self.systolic_rows}×{self.systolic_cols} systolic"
        return (f"{self.mxu_count} × {self.cim_grid_rows}×{self.cim_grid_cols} CIM cores "
                f"({self.cim_core_rows}×{self.cim_core_cols} each)")

    def with_updates(self, **kwargs: object) -> "TPUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def table_rows(self) -> list[tuple[str, str]]:
        """Key architecture parameters as (name, value) rows (Table I style)."""
        return [
            ("Tensor Core count", "1"),
            ("MXU configuration", self.mxu_description),
            ("Peak throughput", f"{self.peak_tops:.1f} TOPS (INT8)"),
            ("Vector width", f"{self.vector_lanes // 128} × 128"),
            ("Vector memory size", f"{self.vmem_bytes // 2**20} MB"),
            ("Common memory size", f"{self.cmem_bytes // 2**20} MB"),
            ("Main memory size", f"{self.main_memory_bytes // 2**30} GB"),
            ("Main memory bandwidth", f"{self.main_memory_bandwidth_gbps:.0f} GB/s"),
            ("ICI link bandwidth", f"{self.ici_link_bandwidth_gbps:.0f} GB/s × {self.ici_link_count}"),
            ("Clock frequency", f"{self.frequency_ghz:.2f} GHz"),
        ]
