"""Architecture design-space exploration (Table IV / Fig. 7 of the paper).

The explorer sweeps the CIM-MXU design choices of Table IV — core-grid
dimensions 8×8, 16×8 and 16×16 combined with 2, 4 or 8 CIM-MXUs per chip —
runs LLM and DiT inference on every design point, and compares latency and
MXU energy against the TPUv4i baseline.  Its outputs are the rows plotted in
Fig. 7 and the provenance of Design A (LLM-optimal trade-off) and Design B
(DiT-optimal trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TPUConfig
from repro.core.designs import make_cim_tpu, tpuv4i_baseline
from repro.core.results import InferenceResult
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.workloads.dit import DIT_XL_2, DiTConfig
from repro.workloads.llm import GPT3_30B, LLMConfig


@dataclass(frozen=True)
class DesignPoint:
    """One CIM-MXU design choice from Table IV."""

    mxu_count: int
    grid_rows: int
    grid_cols: int

    def __post_init__(self) -> None:
        if self.mxu_count <= 0 or self.grid_rows <= 0 or self.grid_cols <= 0:
            raise ValueError("design point dimensions must be positive")

    @property
    def label(self) -> str:
        """Short label used in tables ("4 × 16x8")."""
        return f"{self.mxu_count} x {self.grid_rows}x{self.grid_cols}"

    def to_config(self) -> TPUConfig:
        """The TPU configuration of this design point."""
        return make_cim_tpu(self.mxu_count, self.grid_rows, self.grid_cols)


#: The nine design points spanned by Table IV (3 array dimensions × 3 counts).
TABLE_IV_DESIGN_POINTS: list[DesignPoint] = [
    DesignPoint(mxu_count=count, grid_rows=rows, grid_cols=cols)
    for rows, cols in ((8, 8), (16, 8), (16, 16))
    for count in (2, 4, 8)
]


@dataclass(frozen=True)
class ExplorationRow:
    """Evaluation of one design point on one workload."""

    design: str
    workload: str
    peak_tops: float
    latency_seconds: float
    mxu_energy_joules: float
    latency_vs_baseline: float
    energy_saving_vs_baseline: float

    @property
    def latency_change_percent(self) -> float:
        """Latency change relative to the baseline (negative = faster)."""
        return (self.latency_vs_baseline - 1.0) * 100.0


@dataclass
class ArchitectureExplorer:
    """Sweeps CIM-MXU design choices over LLM and DiT inference."""

    llm: LLMConfig = GPT3_30B
    dit: DiTConfig = DIT_XL_2
    llm_settings: LLMInferenceSettings = field(default_factory=LLMInferenceSettings)
    dit_settings: DiTInferenceSettings = field(default_factory=DiTInferenceSettings)
    design_points: list[DesignPoint] = field(default_factory=lambda: list(TABLE_IV_DESIGN_POINTS))

    def _run_workloads(self, config: TPUConfig) -> dict[str, InferenceResult]:
        simulator = InferenceSimulator(config)
        return {
            "llm": simulator.simulate_llm_inference(self.llm, self.llm_settings),
            "dit": simulator.simulate_dit_inference(self.dit, self.dit_settings),
        }

    def explore(self) -> list[ExplorationRow]:
        """Evaluate the baseline and every design point on both workloads."""
        baseline_config = tpuv4i_baseline()
        baseline_results = self._run_workloads(baseline_config)

        rows: list[ExplorationRow] = []
        for workload, result in baseline_results.items():
            rows.append(ExplorationRow(
                design="baseline", workload=workload,
                peak_tops=baseline_config.peak_tops,
                latency_seconds=result.total_seconds,
                mxu_energy_joules=result.mxu_energy,
                latency_vs_baseline=1.0,
                energy_saving_vs_baseline=1.0))

        for point in self.design_points:
            config = point.to_config()
            results = self._run_workloads(config)
            for workload, result in results.items():
                baseline = baseline_results[workload]
                rows.append(ExplorationRow(
                    design=point.label, workload=workload,
                    peak_tops=config.peak_tops,
                    latency_seconds=result.total_seconds,
                    mxu_energy_joules=result.mxu_energy,
                    latency_vs_baseline=result.total_seconds / baseline.total_seconds,
                    energy_saving_vs_baseline=baseline.mxu_energy / result.mxu_energy))
        return rows

    # --------------------------------------------------------------- optima
    @staticmethod
    def _workload_rows(rows: list[ExplorationRow], workload: str) -> list[ExplorationRow]:
        return [row for row in rows if row.workload == workload and row.design != "baseline"]

    def best_design(self, rows: list[ExplorationRow], workload: str,
                    max_latency_increase: float = 0.10) -> ExplorationRow:
        """Pick the best trade-off design for a workload.

        Mirrors the paper's reasoning: among design points whose latency is no
        more than ``max_latency_increase`` worse than the best-latency point,
        pick the one with the highest MXU-energy saving.
        """
        candidates = self._workload_rows(rows, workload)
        if not candidates:
            raise ValueError(f"no exploration rows for workload '{workload}'")
        best_latency = min(row.latency_seconds for row in candidates)
        tolerable = [row for row in candidates
                     if row.latency_seconds <= best_latency * (1.0 + max_latency_increase)]
        return max(tolerable, key=lambda row: row.energy_saving_vs_baseline)
