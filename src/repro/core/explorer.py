"""Architecture design-space exploration (Table IV / Fig. 7 of the paper).

The explorer sweeps the CIM-MXU design choices of Table IV — core-grid
dimensions 8×8, 16×8 and 16×16 combined with 2, 4 or 8 CIM-MXUs per chip —
runs LLM and DiT inference on every design point, and compares latency and
MXU energy against the TPUv4i baseline.  Its outputs are the rows plotted in
Fig. 7 and the provenance of Design A (LLM-optimal trade-off) and Design B
(DiT-optimal trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TPUConfig
from repro.core.designs import make_cim_tpu, tpuv4i_baseline
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.workloads.dit import DIT_XL_2, DiTConfig
from repro.workloads.llm import GPT3_30B, LLMConfig


@dataclass(frozen=True)
class DesignPoint:
    """One CIM-MXU design choice from Table IV."""

    mxu_count: int
    grid_rows: int
    grid_cols: int

    def __post_init__(self) -> None:
        if self.mxu_count <= 0 or self.grid_rows <= 0 or self.grid_cols <= 0:
            raise ValueError("design point dimensions must be positive")

    @property
    def label(self) -> str:
        """Short label used in tables ("4 × 16x8")."""
        return f"{self.mxu_count} x {self.grid_rows}x{self.grid_cols}"

    def to_config(self) -> TPUConfig:
        """The TPU configuration of this design point."""
        return make_cim_tpu(self.mxu_count, self.grid_rows, self.grid_cols)


#: The nine design points spanned by Table IV (3 array dimensions × 3 counts).
TABLE_IV_DESIGN_POINTS: list[DesignPoint] = [
    DesignPoint(mxu_count=count, grid_rows=rows, grid_cols=cols)
    for rows, cols in ((8, 8), (16, 8), (16, 16))
    for count in (2, 4, 8)
]


@dataclass(frozen=True)
class ExplorationRow:
    """Evaluation of one design point on one workload."""

    design: str
    workload: str
    peak_tops: float
    latency_seconds: float
    mxu_energy_joules: float
    latency_vs_baseline: float
    energy_saving_vs_baseline: float

    @property
    def latency_change_percent(self) -> float:
        """Latency change relative to the baseline (negative = faster)."""
        return (self.latency_vs_baseline - 1.0) * 100.0


@dataclass
class ArchitectureExplorer:
    """Sweeps CIM-MXU design choices over LLM and DiT inference.

    Since the sweep subsystem landed the explorer is a thin client of
    :class:`~repro.sweep.engine.SweepEngine`: it enumerates the baseline plus
    its design points on both workloads as sweep points, lets the engine
    evaluate them (memoised, optionally in parallel via ``workers``), and
    post-processes the structured rows into the Table IV ratios.
    """

    llm: LLMConfig = GPT3_30B
    dit: DiTConfig = DIT_XL_2
    llm_settings: LLMInferenceSettings = field(default_factory=LLMInferenceSettings)
    dit_settings: DiTInferenceSettings = field(default_factory=DiTInferenceSettings)
    design_points: list[DesignPoint] = field(default_factory=lambda: list(TABLE_IV_DESIGN_POINTS))
    #: Optional shared engine; a private one is created per ``explore()`` call
    #: otherwise.  Sharing an engine across explorations (or with other sweep
    #: clients) shares its simulation caches.
    engine: "SweepEngine | None" = None
    #: Worker processes for the sweep (``None`` = serial).
    workers: int | None = None

    def sweep_points(self) -> "list[SweepPoint]":
        """The explorer's scenario grid: (baseline + design points) × workloads."""
        from repro.sweep.grid import SweepPoint

        designs = [("baseline", tpuv4i_baseline())]
        designs += [(point.label, point.to_config()) for point in self.design_points]
        points: list[SweepPoint] = []
        for label, config in designs:
            points.append(SweepPoint(design=label, config=config,
                                     model=self.llm, settings=self.llm_settings))
            points.append(SweepPoint(design=label, config=config,
                                     model=self.dit, settings=self.dit_settings))
        return points

    def explore(self) -> list[ExplorationRow]:
        """Evaluate the baseline and every design point on both workloads."""
        from repro.sweep.engine import SweepEngine

        engine = self.engine if self.engine is not None else SweepEngine()
        results = engine.sweep(self.sweep_points(), workers=self.workers)

        baselines = {result.kind: result for result in results
                     if result.design == "baseline"}
        rows: list[ExplorationRow] = []
        for result in results:
            baseline = baselines[result.kind]
            rows.append(ExplorationRow(
                design=result.design, workload=result.kind,
                peak_tops=result.peak_tops,
                latency_seconds=result.latency_seconds,
                mxu_energy_joules=result.mxu_energy_joules,
                latency_vs_baseline=(1.0 if result.design == "baseline" else
                                     result.latency_seconds / baseline.latency_seconds),
                energy_saving_vs_baseline=(1.0 if result.design == "baseline" else
                                           baseline.mxu_energy_joules
                                           / result.mxu_energy_joules)))
        return rows

    # --------------------------------------------------------------- optima
    @staticmethod
    def _workload_rows(rows: list[ExplorationRow], workload: str) -> list[ExplorationRow]:
        return [row for row in rows if row.workload == workload and row.design != "baseline"]

    def best_design(self, rows: list[ExplorationRow], workload: str,
                    max_latency_increase: float = 0.10) -> ExplorationRow:
        """Pick the best trade-off design for a workload.

        Mirrors the paper's reasoning: among design points whose latency is no
        more than ``max_latency_increase`` worse than the best-latency point,
        pick the one with the highest MXU-energy saving.
        """
        candidates = self._workload_rows(rows, workload)
        if not candidates:
            raise ValueError(f"no exploration rows for workload '{workload}'")
        best_latency = min(row.latency_seconds for row in candidates)
        tolerable = [row for row in candidates
                     if row.latency_seconds <= best_latency * (1.0 + max_latency_increase)]
        return max(tolerable, key=lambda row: row.energy_saving_vs_baseline)
