"""Core of the reproduction: the CIM-based TPU model, simulator and explorer.

This package assembles the substrates (matrix units, memory hierarchy, vector
unit, mapping engine) into a chip-level TPU model, provides the inference
simulator used for every experiment in the paper, the predefined designs
(TPUv4i baseline, default CIM TPU, Design A, Design B) and the architecture
design-space explorer behind Table IV / Fig. 7.
"""

from repro.core.config import MXUType, TPUConfig
from repro.core.results import OperatorResult, GraphResult, StageResult, InferenceResult
from repro.core.tpu import TPUModel
from repro.core.units import (
    ExecutionUnit,
    ExecutionUnitRegistry,
    MatrixExecutionUnit,
    UnitCost,
    UnsupportedOperatorError,
    VectorExecutionUnit,
)
from repro.core.simulator import InferenceSimulator, LLMInferenceSettings, DiTInferenceSettings
from repro.core.designs import (
    tpuv4i_baseline,
    cim_tpu_default,
    design_a,
    design_b,
    make_cim_tpu,
    PREDEFINED_DESIGNS,
)
from repro.core.explorer import ArchitectureExplorer, DesignPoint, ExplorationRow

__all__ = [
    "MXUType",
    "TPUConfig",
    "OperatorResult",
    "GraphResult",
    "StageResult",
    "InferenceResult",
    "TPUModel",
    "ExecutionUnit",
    "ExecutionUnitRegistry",
    "MatrixExecutionUnit",
    "VectorExecutionUnit",
    "UnitCost",
    "UnsupportedOperatorError",
    "InferenceSimulator",
    "LLMInferenceSettings",
    "DiTInferenceSettings",
    "tpuv4i_baseline",
    "cim_tpu_default",
    "design_a",
    "design_b",
    "make_cim_tpu",
    "PREDEFINED_DESIGNS",
    "ArchitectureExplorer",
    "DesignPoint",
    "ExplorationRow",
]
