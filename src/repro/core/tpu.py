"""Chip-level TPU model: matrix units + vector unit + memory + mapping engine.

A :class:`TPUModel` is constructed from a :class:`repro.core.config.TPUConfig`
and exposes two entry points: :meth:`TPUModel.run_operator` evaluates a single
operator and :meth:`TPUModel.run_graph` evaluates an operator graph (a
Transformer layer, DiT block or whole model).  Operators are routed through
the chip's :class:`~repro.core.units.ExecutionUnitRegistry`, which also owns
the paper's energy convention: per-operator results include the dynamic energy
and the busy-time leakage of the unit doing the work *and* the idle leakage of
every other registered unit (e.g. the MXUs leak while the VPU computes a
Softmax), so that the per-category MXU energy bars of Fig. 6 add up to the
chip totals used in Fig. 7/8.  New operator types and execution units can be
registered on :attr:`TPUModel.units` without modifying this module.
"""

from __future__ import annotations

from repro.cim.macro import CIMMacroConfig
from repro.cim.mxu import CIMMXU, CIMMXUConfig
from repro.core.config import MXUType, TPUConfig
from repro.core.results import GraphResult, OperatorResult
from repro.core.units import (
    ExecutionUnitRegistry,
    MatrixExecutionUnit,
    VectorExecutionUnit,
)
from repro.hw.area import AreaModel
from repro.hw.calibration import PAPER_CALIBRATION, TPUSpec
from repro.hw.energy import EnergyModel
from repro.hw.technology import get_node
from repro.mapping.engine import MappingEngine, MappingObjective
from repro.memory.dram import MainMemoryConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.interconnect import OCIConfig
from repro.memory.sram import SRAMConfig
from repro.systolic.systolic_array import DigitalMXU, SystolicArrayConfig
from repro.vector.vpu import VectorUnit, VPUConfig
from repro.workloads.graph import OperatorGraph
from repro.workloads.operators import Operator


class TPUModel:
    """Analytical model of one TPU chip (baseline or CIM-based)."""

    def __init__(self, config: TPUConfig,
                 objective: MappingObjective = MappingObjective.LATENCY) -> None:
        self.config = config
        technology = get_node(config.technology)
        spec = TPUSpec(
            frequency_ghz=config.frequency_ghz,
            mxu_count=config.mxu_count,
            systolic_rows=config.systolic_rows,
            systolic_cols=config.systolic_cols,
            cim_grid_rows=config.cim_grid_rows,
            cim_grid_cols=config.cim_grid_cols,
            cim_core_rows=config.cim_core_rows,
            cim_core_cols=config.cim_core_cols,
            vector_lanes=config.vector_lanes,
            vmem_bytes=config.vmem_bytes,
            cmem_bytes=config.cmem_bytes,
            main_memory_bytes=config.main_memory_bytes,
            main_memory_bandwidth_gbps=config.main_memory_bandwidth_gbps,
            ici_link_bandwidth_gbps=config.ici_link_bandwidth_gbps,
            ici_link_count=config.ici_link_count,
        )
        self.energy_model = EnergyModel(technology=technology, calibration=PAPER_CALIBRATION,
                                        spec=spec)
        self.area_model = AreaModel(technology=technology, calibration=PAPER_CALIBRATION, spec=spec)
        self.mxu = self._build_mxu()
        self.vpu = VectorUnit(
            config=VPUConfig(lanes=config.vector_lanes, frequency_ghz=config.frequency_ghz),
            energy_model=self.energy_model)
        self.hierarchy = MemoryHierarchy(
            vmem=SRAMConfig(name="VMEM", capacity_bytes=config.vmem_bytes,
                            read_bytes_per_cycle=4096.0, write_bytes_per_cycle=4096.0, banks=128),
            cmem=SRAMConfig(name="CMEM", capacity_bytes=config.cmem_bytes,
                            read_bytes_per_cycle=2048.0, write_bytes_per_cycle=2048.0, banks=64),
            main_memory=MainMemoryConfig(capacity_bytes=config.main_memory_bytes,
                                         bandwidth_gbps=config.main_memory_bandwidth_gbps,
                                         frequency_ghz=config.frequency_ghz),
            oci=OCIConfig(bandwidth_bytes_per_cycle=config.oci_bytes_per_cycle),
            energy_model=self.energy_model)
        self.engine = MappingEngine(
            mxu_template=self.mxu, mxu_count=config.mxu_count,
            hierarchy=self.hierarchy, vpu=self.vpu,
            schedule=config.schedule, objective=objective)
        self.units = self._build_units()

    def _build_units(self) -> ExecutionUnitRegistry:
        """Assemble the chip's execution units and their dispatch registry.

        The built-in units claim operators via their capability declarations
        (``supported_operator_types`` on the wrapped component models), so no
        operator types are pinned here; callers extend the chip by
        registering further units — or pinning operator types to existing
        ones — on the returned registry.
        """
        registry = ExecutionUnitRegistry()
        registry.register_unit(MatrixExecutionUnit(
            engine=self.engine, template=self.mxu, count=self.config.mxu_count))
        registry.register_unit(VectorExecutionUnit(
            vpu=self.vpu, hierarchy=self.hierarchy,
            double_buffering=self.config.schedule.double_buffering))
        return registry

    # ----------------------------------------------------------- construction
    def _build_mxu(self) -> DigitalMXU | CIMMXU:
        cfg = self.config
        if cfg.mxu_type is MXUType.SYSTOLIC:
            return DigitalMXU(
                config=SystolicArrayConfig(rows=cfg.systolic_rows, cols=cfg.systolic_cols,
                                           frequency_ghz=cfg.frequency_ghz),
                energy_model=self.energy_model, area_model=self.area_model)
        core = CIMMacroConfig(input_channels=cfg.cim_core_rows, output_channels=cfg.cim_core_cols,
                              macs_per_cycle=cfg.cim_core_rows)
        return CIMMXU(
            config=CIMMXUConfig(grid_rows=cfg.cim_grid_rows, grid_cols=cfg.cim_grid_cols,
                                core=core, frequency_ghz=cfg.frequency_ghz),
            energy_model=self.energy_model, area_model=self.area_model)

    # ------------------------------------------------------------- properties
    @property
    def name(self) -> str:
        """Configuration name."""
        return self.config.name

    @property
    def mxu_area_mm2(self) -> float:
        """Total MXU silicon area of the chip."""
        return self.mxu.area_mm2 * self.config.mxu_count

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in hertz."""
        return self.config.frequency_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert cycles to seconds at the chip clock."""
        return cycles / self.frequency_hz

    # --------------------------------------------------------------- operators
    def run_operator(self, operator: Operator) -> OperatorResult:
        """Evaluate one operator on this chip.

        Raises
        ------
        repro.core.units.UnsupportedOperatorError
            If no registered execution unit can run the operator; the error
            lists the registered operator types.
        """
        return self.units.run(operator, self.cycles_to_seconds)

    # ------------------------------------------------------------------ graphs
    def run_graph(self, graph: OperatorGraph) -> GraphResult:
        """Evaluate an operator graph; operators execute back to back."""
        result = GraphResult(name=graph.name, tpu_name=self.config.name)
        for operator in graph:
            result.operator_results.append(self.run_operator(operator))
        return result
