"""Pluggable execution units and the operator-dispatch registry.

The chip model used to route operators with ``isinstance`` chains — MatMul to
the matrix units, everything else through a hard-coded vector-cost ladder.
This module replaces that with two open abstractions:

* :class:`ExecutionUnit` — the protocol a compute unit implements: a
  capability declaration (:meth:`ExecutionUnit.supports`), a cost model
  (:meth:`ExecutionUnit.cost` returning a :class:`UnitCost`), and an idle
  leakage model (:meth:`ExecutionUnit.idle_energy`).
* :class:`ExecutionUnitRegistry` — maps operator types to units and applies
  the paper's energy convention generically: the dispatched unit contributes
  its busy cost, and **every other registered unit** contributes idle leakage
  over the operator's runtime (the MXUs leak while the VPU computes a Softmax
  and vice versa), so per-category energy bars still add up to chip totals.

New operators and units register from anywhere — a workload module, a test —
without modifying ``repro.core``: implement the protocol, then call
:meth:`ExecutionUnitRegistry.register_unit` (and, for an operator type no
unit claims via its capability declaration,
:meth:`ExecutionUnitRegistry.register_operator`).
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.results import OperatorResult
from repro.hw.energy import EnergyBudget
from repro.mapping.engine import MappingEngine
from repro.memory.hierarchy import MemoryHierarchy
from repro.vector.costs import vector_cost
from repro.vector.vpu import VectorUnit
from repro.workloads.operators import Operator


class UnsupportedOperatorError(TypeError):
    """No registered execution unit can run the operator.

    Carries the registered operator types so callers (and error messages) can
    say exactly what the chip *does* support.
    """

    def __init__(self, operator: Operator, registered: tuple[type, ...]) -> None:
        self.operator = operator
        self.registered_types = registered
        known = ", ".join(sorted(t.__name__ for t in registered)) or "none"
        super().__init__(
            f"no execution unit supports operator '{operator.name}' of type "
            f"{type(operator).__name__}; registered operator types: {known}")


@dataclass(frozen=True)
class UnitCost:
    """Busy cost of one operator on its execution unit.

    This is the *intermediate* result the dispatch registry turns into an
    :class:`~repro.core.results.OperatorResult`: it covers the dispatched
    unit's own work (dynamic energy, busy leakage and unit-internal idle, e.g.
    MXUs a mapping leaves unused) but not the cross-unit idle leakage, which
    the registry adds uniformly.
    """

    cycles: float
    energy: EnergyBudget
    bound: str                    # "compute" or "memory"
    utilization: float
    busy_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.busy_cycles < 0:
            raise ValueError("cycle counts must be non-negative")


class ExecutionUnit(abc.ABC):
    """Protocol of a compute unit the dispatch registry can route to."""

    #: Short identifier used in :class:`OperatorResult.unit` and registries.
    name: str

    @abc.abstractmethod
    def supports(self, op: Operator) -> bool:
        """Capability declaration: whether this unit can execute ``op``."""

    def declared_operator_types(self) -> tuple[type, ...]:
        """Operator types this unit claims, for diagnostics.

        Optional: units whose capability is not enumerable may return an
        empty tuple; ``supports`` remains the authoritative check.
        """
        return ()

    @abc.abstractmethod
    def cost(self, op: Operator) -> UnitCost:
        """Cycles and busy energy of executing ``op`` on this unit."""

    @abc.abstractmethod
    def idle_energy(self, cycles: float) -> EnergyBudget:
        """Leakage burned while this unit waits ``cycles`` for another unit."""


class ExecutionUnitRegistry:
    """Routes operators to execution units with uniform energy accounting."""

    def __init__(self) -> None:
        self._units: dict[str, ExecutionUnit] = {}
        self._dispatch: dict[type, str] = {}

    # ---------------------------------------------------------- registration
    def register_unit(self, unit: ExecutionUnit, overwrite: bool = False) -> None:
        """Add a unit; it becomes a dispatch target and an idle-leakage payer.

        Raises
        ------
        ValueError
            If a unit of the same name exists and ``overwrite`` is not set.
        """
        if unit.name in self._units and not overwrite:
            raise ValueError(f"execution unit '{unit.name}' is already registered")
        self._units[unit.name] = unit

    def register_operator(self, operator_type: type, unit_name: str,
                          overwrite: bool = False) -> None:
        """Pin an operator type to a unit, overriding capability scans.

        Raises
        ------
        KeyError
            If no unit of that name is registered.
        ValueError
            If the type is already pinned and ``overwrite`` is not set.
        """
        if unit_name not in self._units:
            known = ", ".join(sorted(self._units)) or "none"
            raise KeyError(f"unknown execution unit '{unit_name}' (registered: {known})")
        if operator_type in self._dispatch and not overwrite:
            raise ValueError(
                f"operator type '{operator_type.__name__}' is already mapped to "
                f"'{self._dispatch[operator_type]}'")
        self._dispatch[operator_type] = unit_name

    # ------------------------------------------------------------ inspection
    @property
    def units(self) -> tuple[ExecutionUnit, ...]:
        """Registered units in registration order."""
        return tuple(self._units.values())

    def unit(self, name: str) -> ExecutionUnit:
        """Look up a unit by name (KeyError if absent)."""
        return self._units[name]

    def registered_operator_types(self) -> tuple[type, ...]:
        """Explicitly pinned operator types (capability scans add more)."""
        return tuple(self._dispatch)

    def known_operator_types(self) -> tuple[type, ...]:
        """Every operator type reachable: pins plus unit capability declarations."""
        types = dict.fromkeys(self._dispatch)
        for unit in self._units.values():
            types.update(dict.fromkeys(unit.declared_operator_types()))
        return tuple(types)

    def unit_for(self, op: Operator) -> ExecutionUnit:
        """Resolve the unit that will execute ``op``.

        Resolution order: explicit pins (walking the operator's MRO, so
        subclasses follow their base type), then each unit's capability
        declaration in registration order.

        Raises
        ------
        UnsupportedOperatorError
            If neither a pin nor a capability declaration covers the type.
        """
        for base in type(op).__mro__:
            unit_name = self._dispatch.get(base)
            if unit_name is not None:
                return self._units[unit_name]
        for unit in self._units.values():
            if unit.supports(op):
                return unit
        raise UnsupportedOperatorError(op, self.known_operator_types())

    # -------------------------------------------------------------- dispatch
    def run(self, op: Operator,
            cycles_to_seconds: Callable[[float], float]) -> OperatorResult:
        """Execute ``op`` on its unit with uniform busy+idle accounting."""
        unit = self.unit_for(op)
        cost = unit.cost(op)
        energy = cost.energy
        for other in self._units.values():
            if other is not unit:
                energy.merge(other.idle_energy(cost.cycles))
        return OperatorResult(
            operator=op,
            cycles=cost.cycles,
            seconds=cycles_to_seconds(cost.cycles),
            energy=energy,
            unit=unit.name,
            bound=cost.bound,
            utilization=cost.utilization,
            mxu_busy_cycles=cost.busy_cycles,
        )


# ------------------------------------------------------------- built-in units
class MatrixExecutionUnit(ExecutionUnit):
    """The chip's matrix units behind the mapping engine.

    Wraps whichever MXU flavour the chip installs (digital systolic or CIM);
    both declare their operator capability via ``supported_operator_types``
    and expose the same compute/idle interfaces, so this adapter is agnostic
    to the flavour.
    """

    name = "mxu"

    def __init__(self, engine: MappingEngine, template, count: int) -> None:
        self.engine = engine
        self.template = template
        self.count = count

    def supports(self, op: Operator) -> bool:
        return isinstance(op, self.template.supported_operator_types())

    def declared_operator_types(self) -> tuple[type, ...]:
        return self.template.supported_operator_types()

    def cost(self, op: Operator) -> UnitCost:
        mapping = self.engine.map_matmul(op)
        energy = mapping.energy

        # Unit-internal idle: MXUs the mapping does not use, plus the stall
        # time of the used MXUs when the operator is memory-bound.
        used = mapping.candidate.mxu_count
        idle_mxu_cycles = (self.count * mapping.total_cycles
                           - used * mapping.mxu_busy_cycles)
        if idle_mxu_cycles > 0:
            energy.merge(self.template.idle_energy(idle_mxu_cycles))

        return UnitCost(
            cycles=mapping.total_cycles,
            energy=energy,
            bound=mapping.bound,
            utilization=mapping.utilization,
            busy_cycles=mapping.mxu_busy_cycles,
        )

    def idle_energy(self, cycles: float) -> EnergyBudget:
        """All matrix units leak while another unit runs an operator."""
        return self.template.idle_energy(self.count * cycles)


class VectorExecutionUnit(ExecutionUnit):
    """The chip's vector unit plus its CMEM↔VMEM operand staging."""

    name = "vpu"

    def __init__(self, vpu: VectorUnit, hierarchy: MemoryHierarchy,
                 double_buffering: bool) -> None:
        self.vpu = vpu
        self.hierarchy = hierarchy
        self.double_buffering = double_buffering

    def supports(self, op: Operator) -> bool:
        """Capability: any operator with a registered vector cost model."""
        return isinstance(op, self.vpu.supported_operator_types())

    def declared_operator_types(self) -> tuple[type, ...]:
        return self.vpu.supported_operator_types()

    def cost(self, op: Operator) -> UnitCost:
        op_cost = vector_cost(op)
        vpu_result = self.vpu.execute(op_cost.total_ops, op_cost.input_bytes,
                                      op_cost.output_bytes)
        transfer = self.hierarchy.cmem_to_vmem(op_cost.input_bytes + op_cost.output_bytes)
        if self.double_buffering:
            cycles = max(vpu_result.cycles, transfer.cycles)
        else:
            cycles = vpu_result.cycles + transfer.cycles

        energy = vpu_result.energy
        energy.merge(transfer.energy)
        bound = "compute" if vpu_result.cycles >= transfer.cycles else "memory"
        return UnitCost(cycles=cycles, energy=energy, bound=bound, utilization=0.0)

    def idle_energy(self, cycles: float) -> EnergyBudget:
        return self.vpu.idle_energy(cycles)
