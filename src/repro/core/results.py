"""Result containers produced by the simulator.

Three levels of aggregation mirror the granularity of the paper's figures:

* :class:`OperatorResult` — one operator on one chip (bars inside Fig. 6).
* :class:`GraphResult` — one operator graph (a Transformer layer, a DiT
  block, or a whole model), with by-category latency and energy breakdowns.
* :class:`InferenceResult` — a full inference composed of stages (prefill +
  decode, or repeated DiT blocks over sampling steps), used by Fig. 7 / 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.energy import EnergyBudget
from repro.workloads.operators import LayerCategory, Operator


@dataclass(frozen=True)
class OperatorResult:
    """Cost of one operator on the simulated chip."""

    operator: Operator
    cycles: float
    seconds: float
    energy: EnergyBudget
    unit: str                      # "mxu" or "vpu"
    bound: str                     # "compute" or "memory"
    utilization: float
    mxu_busy_cycles: float = 0.0

    @property
    def name(self) -> str:
        """Operator name."""
        return self.operator.name

    @property
    def category(self) -> LayerCategory:
        """Layer category used by the breakdowns."""
        return self.operator.category

    @property
    def mxu_energy(self) -> float:
        """Energy attributed to the matrix units for this operator."""
        return self.energy.component_total("mxu")


@dataclass
class GraphResult:
    """Cost of one operator graph (layer, block or model)."""

    name: str
    tpu_name: str
    operator_results: list[OperatorResult] = field(default_factory=list)
    #: Idle leakage accumulated by units waiting for other units, added by the
    #: chip model on top of the per-operator energies.
    idle_energy: EnergyBudget = field(default_factory=EnergyBudget)

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles of the graph (operators execute sequentially)."""
        return sum(result.cycles for result in self.operator_results)

    @property
    def total_seconds(self) -> float:
        """End-to-end latency in seconds."""
        return sum(result.seconds for result in self.operator_results)

    @property
    def total_energy(self) -> EnergyBudget:
        """Total chip energy including idle leakage."""
        budget = EnergyBudget()
        for result in self.operator_results:
            budget.merge(result.energy)
        budget.merge(self.idle_energy)
        return budget

    @property
    def mxu_energy(self) -> float:
        """MXU energy (the quantity the paper's energy axes report)."""
        return self.total_energy.component_total("mxu")

    @property
    def total_macs(self) -> float:
        """Useful MACs executed by the graph."""
        return sum(getattr(result.operator, "macs", 0) for result in self.operator_results)

    # ------------------------------------------------------------ breakdowns
    def latency_by_category(self) -> dict[LayerCategory, float]:
        """Latency (seconds) grouped by layer category."""
        breakdown: dict[LayerCategory, float] = {}
        for result in self.operator_results:
            breakdown[result.category] = breakdown.get(result.category, 0.0) + result.seconds
        return breakdown

    def mxu_energy_by_category(self) -> dict[LayerCategory, float]:
        """MXU energy (J) grouped by layer category."""
        breakdown: dict[LayerCategory, float] = {}
        for result in self.operator_results:
            breakdown[result.category] = breakdown.get(result.category, 0.0) + result.mxu_energy
        return breakdown

    def latency_fraction(self, category: LayerCategory) -> float:
        """Fraction of total latency spent in the given category."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return self.latency_by_category().get(category, 0.0) / total

    def category_fractions(self) -> dict[LayerCategory, float]:
        """Latency fraction of every category present in the graph."""
        total = self.total_seconds
        if total == 0:
            return {}
        return {category: seconds / total
                for category, seconds in self.latency_by_category().items()}


@dataclass(frozen=True)
class StageResult:
    """One inference stage: an evaluated graph plus how often it repeats."""

    name: str
    graph: GraphResult
    repeat: float = 1.0

    def __post_init__(self) -> None:
        if self.repeat <= 0:
            raise ValueError("repeat must be positive")

    @property
    def seconds(self) -> float:
        """Total latency contribution of the stage."""
        return self.graph.total_seconds * self.repeat

    @property
    def mxu_energy(self) -> float:
        """Total MXU energy contribution of the stage."""
        return self.graph.mxu_energy * self.repeat

    @property
    def total_energy(self) -> float:
        """Total chip energy contribution of the stage."""
        return self.graph.total_energy.total * self.repeat


@dataclass
class InferenceResult:
    """A complete simulated inference (one or more stages)."""

    model_name: str
    tpu_name: str
    stages: list[StageResult] = field(default_factory=list)
    #: Number of "items" produced (generated tokens for LLMs, images for DiT),
    #: used to convert latency to throughput.
    items: float = 1.0
    item_unit: str = "token"

    @property
    def total_seconds(self) -> float:
        """End-to-end inference latency."""
        return sum(stage.seconds for stage in self.stages)

    @property
    def mxu_energy(self) -> float:
        """Total MXU energy over the inference."""
        return sum(stage.mxu_energy for stage in self.stages)

    @property
    def total_energy(self) -> float:
        """Total chip energy over the inference."""
        return sum(stage.total_energy for stage in self.stages)

    @property
    def throughput(self) -> float:
        """Items per second (tokens/s for LLMs, images/s for DiT)."""
        seconds = self.total_seconds
        return self.items / seconds if seconds > 0 else 0.0

    def stage(self, name: str) -> StageResult:
        """Look up a stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        known = ", ".join(s.name for s in self.stages)
        raise KeyError(f"no stage named '{name}' (stages: {known})")

    def speedup_over(self, baseline: "InferenceResult") -> float:
        """Latency speedup of this result relative to a baseline result."""
        if self.total_seconds == 0:
            raise ZeroDivisionError("cannot compute speedup for a zero-latency result")
        return baseline.total_seconds / self.total_seconds

    def mxu_energy_reduction_over(self, baseline: "InferenceResult") -> float:
        """MXU energy reduction factor relative to a baseline result."""
        if self.mxu_energy == 0:
            raise ZeroDivisionError("cannot compute energy reduction for a zero-energy result")
        return baseline.mxu_energy / self.mxu_energy
