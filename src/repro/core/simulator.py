"""Inference simulator: run generative-model workloads on a TPU model.

The simulator reproduces the paper's evaluation methodology:

* **LLM layer analysis** (Fig. 6) — one Transformer layer of GPT-3-30B in the
  prefill stage (prompt length 1024, batch 8) and in the decode stage
  (processing the 256th output token), INT8.
* **LLM end-to-end inference** (Fig. 7/8) — prefill of the whole prompt plus
  the full decode phase (paper setting: 1024 input / 512 output tokens); the
  per-layer results are scaled by the layer count, and the decode phase is
  sampled at several KV-cache lengths to capture its growth.
* **DiT block / end-to-end** — one DiT-XL/2 block at 512×512 (Fig. 6) and the
  full sampling loop (blocks × depth × diffusion steps) for Fig. 7/8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision
from repro.core.config import TPUConfig
from repro.core.results import GraphResult, InferenceResult, StageResult
from repro.core.tpu import TPUModel
from repro.workloads.dit import DiTConfig, build_dit_block
from repro.workloads.llm import LLMConfig, build_llm_layer
from repro.workloads.graph import OperatorGraph


@dataclass(frozen=True)
class LLMInferenceSettings:
    """Evaluation settings for LLM inference (paper defaults)."""

    batch: int = 8
    input_tokens: int = 1024
    output_tokens: int = 512
    precision: Precision = Precision.INT8
    #: Number of KV-cache lengths at which the decode layer is evaluated; the
    #: decode phase cost is the average of these samples times the token count.
    decode_kv_samples: int = 4

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("batch, input_tokens and output_tokens must be positive")
        if self.decode_kv_samples <= 0:
            raise ValueError("decode_kv_samples must be positive")

    def decode_kv_lengths(self) -> list[int]:
        """Representative KV-cache lengths spanning the decode phase."""
        samples = min(self.decode_kv_samples, self.output_tokens)
        if samples == 1:
            return [self.input_tokens + self.output_tokens // 2]
        step = self.output_tokens / samples
        return [int(self.input_tokens + step * (i + 0.5)) for i in range(samples)]


@dataclass(frozen=True)
class DiTInferenceSettings:
    """Evaluation settings for DiT inference (paper defaults)."""

    batch: int = 8
    image_resolution: int = 512
    sampling_steps: int = 50
    precision: Precision = Precision.INT8

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.image_resolution <= 0 or self.sampling_steps <= 0:
            raise ValueError("batch, image_resolution and sampling_steps must be positive")


class InferenceSimulator:
    """Drives a :class:`TPUModel` over generative-model workloads."""

    def __init__(self, tpu_config: TPUConfig) -> None:
        self.tpu_config = tpu_config
        self.model = TPUModel(tpu_config)

    # ------------------------------------------------------------- primitives
    def run_graph(self, graph: OperatorGraph) -> GraphResult:
        """Evaluate an arbitrary operator graph on the configured TPU.

        Every ``simulate_*`` helper funnels graph execution through this
        method, so subclasses can intercept it — the sweep engine's caching
        simulator memoises here.
        """
        return self.model.run_graph(graph)

    # ------------------------------------------------------------------- LLM
    def simulate_llm_prefill_layer(self, llm: LLMConfig,
                                   settings: LLMInferenceSettings) -> GraphResult:
        """One Transformer layer processing the whole prompt (Fig. 6 left)."""
        graph = build_llm_layer(llm, "prefill", settings.batch, settings.input_tokens,
                                precision=settings.precision)
        return self.run_graph(graph)

    def simulate_llm_decode_layer(self, llm: LLMConfig, settings: LLMInferenceSettings,
                                  kv_len: int | None = None) -> GraphResult:
        """One Transformer layer processing one decode token (Fig. 6 middle).

        The paper simulates the 256th output token, i.e. a KV length of the
        prompt plus 256; that is the default when ``kv_len`` is not given.
        """
        effective_kv = kv_len if kv_len is not None else settings.input_tokens + 256
        graph = build_llm_layer(llm, "decode", settings.batch, settings.input_tokens,
                                kv_len=effective_kv, precision=settings.precision)
        return self.run_graph(graph)

    def simulate_llm_inference(self, llm: LLMConfig,
                               settings: LLMInferenceSettings | None = None) -> InferenceResult:
        """End-to-end LLM inference: prefill plus the full decode phase."""
        settings = settings if settings is not None else LLMInferenceSettings()
        result = InferenceResult(model_name=llm.name, tpu_name=self.tpu_config.name,
                                 items=float(settings.batch * settings.output_tokens),
                                 item_unit="token")

        prefill = self.simulate_llm_prefill_layer(llm, settings)
        result.stages.append(StageResult(name="prefill", graph=prefill,
                                         repeat=float(llm.num_layers)))

        kv_lengths = settings.decode_kv_lengths()
        tokens_per_sample = settings.output_tokens / len(kv_lengths)
        for index, kv_len in enumerate(kv_lengths):
            decode = self.simulate_llm_decode_layer(llm, settings, kv_len=kv_len)
            result.stages.append(StageResult(
                name=f"decode[kv={kv_len}]" if len(kv_lengths) > 1 else "decode",
                graph=decode,
                repeat=float(llm.num_layers) * tokens_per_sample))
            del index
        return result

    # ------------------------------------------------------------------- DiT
    def simulate_dit_block(self, dit: DiTConfig,
                           settings: DiTInferenceSettings) -> GraphResult:
        """One DiT block at the configured resolution (Fig. 6 right)."""
        graph = build_dit_block(dit, settings.batch, settings.image_resolution,
                                precision=settings.precision)
        return self.run_graph(graph)

    def simulate_dit_inference(self, dit: DiTConfig,
                               settings: DiTInferenceSettings | None = None) -> InferenceResult:
        """End-to-end DiT sampling: blocks × depth × diffusion steps."""
        settings = settings if settings is not None else DiTInferenceSettings()
        result = InferenceResult(model_name=dit.name, tpu_name=self.tpu_config.name,
                                 items=float(settings.batch), item_unit="image")
        block = self.simulate_dit_block(dit, settings)
        result.stages.append(StageResult(
            name="dit_blocks", graph=block,
            repeat=float(dit.depth * settings.sampling_steps)))
        return result
