"""Inference simulator: run generative-model scenarios on a TPU model.

The simulator reproduces the paper's evaluation methodology:

* **LLM layer analysis** (Fig. 6) — one Transformer layer of GPT-3-30B in the
  prefill stage (prompt length 1024, batch 8) and in the decode stage
  (processing the 256th output token), INT8.
* **LLM end-to-end inference** (Fig. 7/8) — prefill of the whole prompt plus
  the full decode phase (paper setting: 1024 input / 512 output tokens); the
  per-layer results are scaled by the layer count, and the decode phase is
  sampled at several KV-cache lengths to capture its growth.
* **DiT block / end-to-end** — one DiT-XL/2 block at 512×512 (Fig. 6) and the
  full sampling loop (blocks × depth × diffusion steps) for Fig. 7/8.

End-to-end execution is generic: every workload (LLM serving, DiT sampling,
MoE, chat-serving mixes, anything registered in
:mod:`repro.workloads.registry`) declares a
:class:`~repro.workloads.scenario.Scenario` — a list of stages, each an
operator graph plus a repeat factor — and :meth:`InferenceSimulator.run_scenario`
executes any of them.  The ``simulate_llm_inference`` / ``simulate_dit_inference``
methods remain as thin, named clients of that pipeline.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import TPUConfig
from repro.core.results import GraphResult, InferenceResult, StageResult
from repro.core.tpu import TPUModel
from repro.workloads.dit import DiTConfig, build_dit_block, build_dit_sampling_scenario
from repro.workloads.llm import LLMConfig, build_llm_layer, build_llm_serving_scenario
from repro.workloads.graph import OperatorGraph
from repro.workloads.scenario import (
    DiTInferenceSettings,
    LLMInferenceSettings,
    Scenario,
)

__all__ = [
    "DiTInferenceSettings",
    "InferenceSimulator",
    "LLMInferenceSettings",
]


class InferenceSimulator:
    """Drives a :class:`TPUModel` over generative-model scenarios."""

    def __init__(self, tpu_config: TPUConfig) -> None:
        self.tpu_config = tpu_config
        self.model = TPUModel(tpu_config)

    # ------------------------------------------------------------- primitives
    def run_graph(self, graph: OperatorGraph) -> GraphResult:
        """Evaluate an arbitrary operator graph on the configured TPU.

        Every scenario stage funnels graph execution through this method, so
        subclasses can intercept it — the sweep engine's caching simulator
        memoises here.
        """
        return self.model.run_graph(graph)

    def run_scenario(self, scenario: Scenario) -> InferenceResult:
        """Execute a declarative scenario: every stage's graph, repeated.

        This is the single generic end-to-end path; anything that can
        describe itself as a :class:`~repro.workloads.scenario.Scenario`
        (via the scenario registry or ad hoc) runs here.
        """
        result = InferenceResult(model_name=scenario.model_name,
                                 tpu_name=self.tpu_config.name,
                                 items=scenario.items, item_unit=scenario.item_unit)
        for stage in scenario.stages:
            result.stages.append(StageResult(
                name=stage.name,
                graph=self.run_graph(stage.graph),
                repeat=stage.repeats_per_unit * scenario.pipeline_units))
        return result

    def simulate(self, model: Any, settings: Any = None,
                 scenario: str | None = None) -> InferenceResult:
        """Run a model under a registered scenario (default: by model type).

        ``scenario`` names an entry of the scenario registry; when omitted
        the model's default scenario is used (LLM serving for LLMs, the
        sampling loop for DiT, the MoE scenario for MoE models, ...).  When
        ``settings`` is omitted the scenario's paper-default settings apply.
        """
        from repro.workloads.registry import get_scenario, scenario_for

        spec = get_scenario(scenario) if scenario is not None else scenario_for(model)
        if settings is None:
            from repro.workloads.scenario import ScenarioKnobs

            settings = spec.make_settings(ScenarioKnobs())
        spec.check(model, settings)
        return self.run_scenario(spec.build(model, settings))

    # ------------------------------------------------------------------- LLM
    def simulate_llm_prefill_layer(self, llm: LLMConfig,
                                   settings: LLMInferenceSettings) -> GraphResult:
        """One Transformer layer processing the whole prompt (Fig. 6 left)."""
        graph = build_llm_layer(llm, "prefill", settings.batch, settings.input_tokens,
                                precision=settings.precision)
        return self.run_graph(graph)

    def simulate_llm_decode_layer(self, llm: LLMConfig, settings: LLMInferenceSettings,
                                  kv_len: int | None = None) -> GraphResult:
        """One Transformer layer processing one decode token (Fig. 6 middle).

        The paper simulates the 256th output token, i.e. a KV length of the
        prompt plus 256; that is the default when ``kv_len`` is not given.
        """
        effective_kv = kv_len if kv_len is not None else settings.input_tokens + 256
        graph = build_llm_layer(llm, "decode", settings.batch, settings.input_tokens,
                                kv_len=effective_kv, precision=settings.precision)
        return self.run_graph(graph)

    def simulate_llm_inference(self, llm: LLMConfig,
                               settings: LLMInferenceSettings | None = None) -> InferenceResult:
        """End-to-end LLM inference: prefill plus the full decode phase."""
        settings = settings if settings is not None else LLMInferenceSettings()
        return self.run_scenario(build_llm_serving_scenario(llm, settings))

    # ------------------------------------------------------------------- DiT
    def simulate_dit_block(self, dit: DiTConfig,
                           settings: DiTInferenceSettings) -> GraphResult:
        """One DiT block at the configured resolution (Fig. 6 right)."""
        graph = build_dit_block(dit, settings.batch, settings.image_resolution,
                                precision=settings.precision)
        return self.run_graph(graph)

    def simulate_dit_inference(self, dit: DiTConfig,
                               settings: DiTInferenceSettings | None = None) -> InferenceResult:
        """End-to-end DiT sampling: blocks × depth × diffusion steps."""
        settings = settings if settings is not None else DiTInferenceSettings()
        return self.run_scenario(build_dit_sampling_scenario(dit, settings))
