"""Predefined TPU designs used throughout the paper's evaluation.

* :func:`tpuv4i_baseline` — the baseline TPUv4i with four 128×128 digital
  systolic MXUs (Table I, left column).
* :func:`cim_tpu_default` — the paper's default CIM-based TPU: the same chip
  with the MXUs replaced by four 16×8 grids of 128×256 CIM cores (Table I,
  right column), used in the Fig. 6 analysis.
* :func:`design_a` — the LLM-optimised design from the exploration: four
  CIM-MXUs with 8×8 CIM-core grids.
* :func:`design_b` — the DiT-optimised design: eight CIM-MXUs with 16×8 grids.
* :func:`make_cim_tpu` — arbitrary Table IV design points.
"""

from __future__ import annotations

from repro.core.config import MXUType, TPUConfig


def tpuv4i_baseline(name: str = "tpuv4i-baseline") -> TPUConfig:
    """The baseline TPUv4i configuration (four 128×128 systolic MXUs)."""
    return TPUConfig(name=name, mxu_type=MXUType.SYSTOLIC, mxu_count=4,
                     systolic_rows=128, systolic_cols=128)


def make_cim_tpu(mxu_count: int, grid_rows: int, grid_cols: int,
                 name: str | None = None) -> TPUConfig:
    """A CIM-based TPU with the given CIM-MXU count and core-grid dimensions.

    Everything else (memory capacities, bandwidths, frequency, VPU) stays at
    the Table I values, exactly as in the paper's exploration.
    """
    if name is None:
        name = f"cim-{mxu_count}x{grid_rows}x{grid_cols}"
    return TPUConfig(name=name, mxu_type=MXUType.CIM, mxu_count=mxu_count,
                     cim_grid_rows=grid_rows, cim_grid_cols=grid_cols)


def cim_tpu_default(name: str = "cim-tpu") -> TPUConfig:
    """The default CIM-based TPU: four 16×8 CIM-MXUs (Table I)."""
    return make_cim_tpu(mxu_count=4, grid_rows=16, grid_cols=8, name=name)


def design_a(name: str = "design-a") -> TPUConfig:
    """Design A: LLM-optimised CIM TPU (four CIM-MXUs, 8×8 CIM cores)."""
    return make_cim_tpu(mxu_count=4, grid_rows=8, grid_cols=8, name=name)


def design_b(name: str = "design-b") -> TPUConfig:
    """Design B: DiT-optimised CIM TPU (eight CIM-MXUs, 16×8 CIM cores)."""
    return make_cim_tpu(mxu_count=8, grid_rows=16, grid_cols=8, name=name)


#: The named designs used by the benchmarks and examples.
PREDEFINED_DESIGNS: dict[str, TPUConfig] = {
    "baseline": tpuv4i_baseline(),
    "cim-default": cim_tpu_default(),
    "design-a": design_a(),
    "design-b": design_b(),
}
