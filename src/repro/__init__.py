"""repro — CIM-TPU: compute-in-memory based TPU architecture model and simulator.

A from-scratch Python reproduction of *"Leveraging Compute-in-Memory for
Efficient Generative Model Inference in TPUs"* (DATE 2025): an analytical
architecture model of a TPUv4i-class accelerator whose matrix multiply units
are replaced by grids of digital SRAM compute-in-memory cores, together with
the workload descriptions (LLM prefill/decode, DiT blocks), the mapping
engine, the design-space explorer and the multi-TPU parallelism models used by
the paper's evaluation.

Typical usage::

    from repro import (
        tpuv4i_baseline, cim_tpu_default, InferenceSimulator,
        GPT3_30B, LLMInferenceSettings,
    )

    baseline = InferenceSimulator(tpuv4i_baseline())
    cim = InferenceSimulator(cim_tpu_default())
    settings = LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512)
    print(cim.simulate_llm_inference(GPT3_30B, settings).total_seconds)
"""

import logging as _logging

from repro import api
from repro.common import Precision
from repro.core.config import MXUType, TPUConfig
from repro.core.designs import (
    PREDEFINED_DESIGNS,
    cim_tpu_default,
    design_a,
    design_b,
    make_cim_tpu,
    tpuv4i_baseline,
)
from repro.core.explorer import ArchitectureExplorer, DesignPoint, ExplorationRow, TABLE_IV_DESIGN_POINTS
from repro.core.results import GraphResult, InferenceResult, OperatorResult, StageResult
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.core.tpu import TPUModel
from repro.core.units import (
    ExecutionUnit,
    ExecutionUnitRegistry,
    UnitCost,
    UnsupportedOperatorError,
)
from repro.parallel.multi_device import MultiDeviceResult, MultiTPUSystem
from repro.serving import (
    SLO,
    Request,
    ServingReport,
    ServingSimulator,
    ServingSpec,
    generate_trace,
)
from repro.sweep import (
    SweepEngine,
    SweepGrid,
    SweepPoint,
    SweepResult,
    default_grid,
    make_point,
)
from repro.workloads.chat import ChatServingSettings, RequestClass
from repro.workloads.dit import DIT_XL_2, DiTConfig
from repro.workloads.llm import GPT3_30B, GPT3_175B, LLAMA2_7B, LLAMA2_13B, LLMConfig
from repro.workloads.moe import MIXTRAL_8X7B, MoEConfig
from repro.workloads.registry import (
    MODEL_REGISTRY,
    SCENARIO_REGISTRY,
    get_model,
    get_scenario,
    register_model,
    register_scenario,
    scenario_for,
)
from repro.workloads.scenario import Scenario, ScenarioSpec, ScenarioStage

# Library code logs under the ``repro.*`` hierarchy and never configures
# handlers; the NullHandler keeps imports silent in host applications.
# The CLI opts into output via ``repro.log.configure_logging`` (-v/-vv).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "0.1.0"

__all__ = [
    "api",
    "Precision",
    "MXUType",
    "TPUConfig",
    "PREDEFINED_DESIGNS",
    "tpuv4i_baseline",
    "cim_tpu_default",
    "design_a",
    "design_b",
    "make_cim_tpu",
    "ArchitectureExplorer",
    "DesignPoint",
    "ExplorationRow",
    "TABLE_IV_DESIGN_POINTS",
    "GraphResult",
    "InferenceResult",
    "OperatorResult",
    "StageResult",
    "InferenceSimulator",
    "LLMInferenceSettings",
    "DiTInferenceSettings",
    "ChatServingSettings",
    "RequestClass",
    "TPUModel",
    "ExecutionUnit",
    "ExecutionUnitRegistry",
    "UnitCost",
    "UnsupportedOperatorError",
    "Scenario",
    "ScenarioSpec",
    "ScenarioStage",
    "MultiTPUSystem",
    "MultiDeviceResult",
    "SLO",
    "Request",
    "ServingReport",
    "ServingSimulator",
    "ServingSpec",
    "generate_trace",
    "SweepEngine",
    "SweepGrid",
    "SweepPoint",
    "SweepResult",
    "default_grid",
    "make_point",
    "DiTConfig",
    "DIT_XL_2",
    "LLMConfig",
    "GPT3_30B",
    "GPT3_175B",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "MoEConfig",
    "MIXTRAL_8X7B",
    "MODEL_REGISTRY",
    "SCENARIO_REGISTRY",
    "get_model",
    "get_scenario",
    "register_model",
    "register_scenario",
    "scenario_for",
    "__version__",
]
