"""The gateway's async job queue: submit, poll, fetch, cancel.

Simulations take seconds to minutes, so the gateway never runs one on an
HTTP handler thread.  :class:`JobManager` owns a FIFO queue and a small
pool of daemon worker threads; submitting a validated API request
enqueues a :class:`Job` and returns immediately with its id, and workers
drain the queue through the unified facade (:func:`repro.api.run`)
against the manager's shared :class:`~repro.sweep.store.ResultStore` —
the multi-tenant cache that lets one client's run serve every later
client's repeat with zero new simulations.

Lifecycle: ``queued → running → done | failed``, plus ``cancelled`` for
jobs cancelled while still queued.  A running simulation is never killed
mid-flight — the engines are pure functions without abort points, and a
completed run is worth keeping in the store anyway — so cancelling a
running job is a no-op that reports the current state.  Every transition
is guarded by one condition variable; :meth:`JobManager.wait` lets tests
and clients block for terminal states without polling.

Each job records wall-clock timing and, when the run succeeds, the
telemetry summary of its engine run (span/event/counter totals) — enough
provenance to answer "what did this job cost" without shipping whole
traces over the status endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.api.errors import ApiError, ApiRequestError

#: States a job moves through; ``TERMINAL`` ones never change again.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted run and everything the status endpoint reports.

    Mutable by design — the manager's lock guards every transition — but
    only the manager mutates it; handlers read snapshots via
    :meth:`to_dict`.
    """

    job_id: str
    kind: str
    #: Content fingerprint of the request (execution hints excluded).
    fingerprint: str
    request: Any
    status: str = "queued"
    submitted_s: float = field(default_factory=time.time)  # repro-lint: disable=RPR001 (job wall timestamp, not simulation state)
    started_s: float | None = None
    finished_s: float | None = None
    #: The facade response once ``done``.
    response: Any = None
    #: The structured failure once ``failed``.
    error: ApiError | None = None
    #: Engine-run telemetry totals once ``done`` (spans/events/counters).
    telemetry: Mapping[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """The status payload of ``GET /v1/jobs/<id>``."""
        payload: dict[str, Any] = {
            "job_id": self.job_id, "kind": self.kind,
            "fingerprint": self.fingerprint, "status": self.status,
            "submitted_s": self.submitted_s, "started_s": self.started_s,
            "finished_s": self.finished_s,
        }
        if self.status == "done" and self.response is not None:
            payload["new_simulations"] = self.response.new_simulations
            payload["served_from_store"] = self.response.served_from_store
        if self.telemetry is not None:
            payload["telemetry"] = dict(self.telemetry)
        if self.error is not None:
            payload["error"] = self.error.to_dict()
        return payload


class JobManager:
    """FIFO job queue drained by a pool of daemon worker threads.

    ``runner`` is the facade dispatcher (``repro.api.run`` by default;
    tests inject stubs); every job runs against the manager's shared
    ``store``.  Job ids are dense (``job-000001``...) so logs and tests
    read deterministically.
    """

    def __init__(self, store=None, *, workers: int = 2,
                 runner: Callable[..., Any] | None = None,
                 telemetry_factory: Callable[[], Any] | None = None) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if runner is None:
            from repro.api import run as runner  # noqa: F811 - default wiring
        self.store = store
        self._runner = runner
        self._telemetry_factory = telemetry_factory or self._default_telemetry
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._queue: deque[Job] = deque()
        self._jobs: dict[str, Job] = {}
        self._next_id = 0
        self._shutdown = False
        self._workers = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"gateway-worker-{index}")
            for index in range(workers)]
        for thread in self._workers:
            thread.start()

    @staticmethod
    def _default_telemetry():
        from repro.obs.telemetry import Telemetry

        return Telemetry()

    # ---------------------------------------------------------------- submit
    def submit(self, request) -> Job:
        """Enqueue a validated API request; returns the queued :class:`Job`."""
        from repro.api import request_fingerprint

        with self._changed:
            if self._shutdown:
                raise RuntimeError("gateway is shutting down")
            self._next_id += 1
            job = Job(job_id=f"job-{self._next_id:06d}",
                      kind=request.kind,
                      fingerprint=request_fingerprint(request),
                      request=request)
            self._jobs[job.job_id] = job
            self._queue.append(job)
            self._changed.notify_all()
            return job

    # ----------------------------------------------------------------- reads
    def get(self, job_id: str) -> Job:
        """The job with this id, or :class:`ApiRequestError` (unknown-job)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ApiRequestError(ApiError(
                code="unknown-job", message=f"no job '{job_id}'"))
        return job

    def jobs(self) -> list[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def result(self, job_id: str):
        """The finished job's facade response.

        Raises :class:`ApiRequestError` with ``job-not-finished`` /
        ``job-cancelled`` / ``job-failed`` when there is no result to
        serve — the gateway maps these onto 409/409/500.
        """
        job = self.get(job_id)
        with self._lock:
            status, response, error = job.status, job.response, job.error
        if status == "done":
            return response
        if status == "cancelled":
            raise ApiRequestError(ApiError(
                code="job-cancelled",
                message=f"job '{job_id}' was cancelled before running"))
        if status == "failed":
            raise ApiRequestError(error if error is not None else ApiError(
                code="job-failed", message=f"job '{job_id}' failed"))
        raise ApiRequestError(ApiError(
            code="job-not-finished",
            message=f"job '{job_id}' is {status}; poll its status URL "
                    f"until it is done"))

    # ---------------------------------------------------------------- cancel
    def cancel(self, job_id: str) -> Job:
        """Cancel the job if still queued; running/terminal jobs are left be."""
        job = self.get(job_id)
        with self._changed:
            if job.status == "queued":
                self._queue.remove(job)
                job.status = "cancelled"
                job.finished_s = time.time()  # repro-lint: disable=RPR001 (job wall timestamp, not simulation state)
                self._changed.notify_all()
        return job

    # ------------------------------------------------------------------ wait
    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until the job reaches a terminal state (tests, CLI clients)."""
        job = self.get(job_id)
        deadline = time.time() + timeout  # repro-lint: disable=RPR001 (job wall timestamp, not simulation state)
        with self._changed:
            while job.status not in TERMINAL_STATES:
                remaining = deadline - time.time()  # repro-lint: disable=RPR001 (job wall timestamp, not simulation state)
                if remaining <= 0:
                    raise TimeoutError(
                        f"job '{job_id}' still {job.status} after {timeout}s")
                self._changed.wait(remaining)
        return job

    def shutdown(self) -> None:
        """Stop accepting and dispatching; lets in-flight runs finish."""
        with self._changed:
            self._shutdown = True
            self._changed.notify_all()

    # --------------------------------------------------------------- workers
    def _worker(self) -> None:
        while True:
            with self._changed:
                while not self._queue and not self._shutdown:
                    self._changed.wait()
                if self._shutdown and not self._queue:
                    return
                job = self._queue.popleft()
                job.status = "running"
                job.started_s = time.time()  # repro-lint: disable=RPR001 (job wall timestamp, not simulation state)
                self._changed.notify_all()
            telemetry = self._telemetry_factory()
            try:
                response = self._runner(job.request, store=self.store,
                                        telemetry=telemetry)
            except ApiRequestError as error:
                self._finish(job, status="failed", error=error.error)
            except Exception as error:  # noqa: BLE001 - worker must survive
                # Anything the facade did not classify is a gateway bug, not
                # a client mistake: job-failed maps to HTTP 500.
                self._finish(job, status="failed", error=ApiError(
                    code="job-failed",
                    message=f"{type(error).__name__}: {error}"))
            else:
                summary = (telemetry.summary()
                           if hasattr(telemetry, "summary") else None)
                self._finish(job, status="done", response=response,
                             telemetry=summary)

    def _finish(self, job: Job, *, status: str, response=None,
                error: ApiError | None = None, telemetry=None) -> None:
        with self._changed:
            job.status = status
            job.finished_s = time.time()  # repro-lint: disable=RPR001 (job wall timestamp, not simulation state)
            job.response = response
            job.error = error
            job.telemetry = telemetry
            self._changed.notify_all()
