"""Simulation as a service: the stdlib-only HTTP gateway.

A :class:`ThreadingHTTPServer` front-end over the unified API facade and
the async job queue.  Stdlib only — ``http.server`` + ``json`` — so the
gateway runs anywhere the simulator does, with no new dependencies.

Routes (all payloads JSON):

================================  =========================================
``POST /v1/simulate``             submit a :class:`~repro.api.SimulateRequest`
``POST /v1/fleet``                submit a fleet-sizing plan
``POST /v1/sweep``                submit a scenario-grid sweep
``POST /v1/optimize``             submit a Pareto co-design search
``POST /v1/autoconfig-preview``   submit a zero-simulation sizing preview
``GET  /v1/jobs``                 list all jobs (status payloads)
``GET  /v1/jobs/<id>``            poll one job's status
``GET  /v1/jobs/<id>/result``     fetch the finished response envelope
``POST /v1/jobs/<id>/cancel``     cancel a still-queued job
``GET  /v1/health``               liveness + queue/store snapshot
================================  =========================================

Submissions validate synchronously — a malformed body is a structured
4xx *now*, not a failed job later — and return ``202 Accepted`` with the
job id and its status/result URLs.  Results are the facade's response
envelopes verbatim, so a body fetched over HTTP is byte-identical to the
same request run through ``repro.api`` or the CLI, and a warm repeat
reports ``new_simulations == 0``.  Errors are always
:class:`~repro.api.errors.ApiError` JSON: ``unknown-route`` 404,
``method-not-allowed`` 405, ``job-not-finished``/``job-cancelled`` 409,
``job-failed`` 500, everything else 400.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api import REQUEST_TYPES, request_from_dict
from repro.api.errors import ApiError, ApiRequestError
from repro.gateway.jobs import JobManager

logger = logging.getLogger("repro.gateway")

#: Largest request body the gateway will read (sweeps are lists of short
#: strings; anything bigger than this is a mistake, not a workload).
MAX_BODY_BYTES = 1 << 20

#: HTTP status per error code; codes not listed here are client errors (400).
_ERROR_STATUS = {
    "unknown-route": 404,
    "unknown-job": 404,
    "method-not-allowed": 405,
    "job-not-finished": 409,
    "job-cancelled": 409,
    "job-failed": 500,
    "engine-error": 422,
}


def error_status(error: ApiError) -> int:
    """The HTTP status an :class:`ApiError` travels with."""
    return _ERROR_STATUS.get(error.code, 400)


def _make_handler(manager: JobManager) -> type[BaseHTTPRequestHandler]:
    """Build the handler class over a closure (no globals, testable)."""

    class GatewayHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-gateway/1"

        # ------------------------------------------------------------ plumbing
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            logger.debug("%s %s", self.address_string(), format % args)

        def _send_json(self, status: int, payload: dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error(self, error: ApiError) -> None:
            self._send_json(error_status(error), {"error": error.to_dict()})

        def _read_request(self):
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ApiRequestError(ApiError(
                    code="invalid-json",
                    message=f"request body exceeds {MAX_BODY_BYTES} bytes"))
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8") or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ApiRequestError(ApiError(
                    code="invalid-json",
                    message=f"request body is not valid JSON: {error}"
                )) from None
            return request_from_dict(payload)

        # -------------------------------------------------------------- routes
        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                parts = [p for p in self.path.split("/") if p]
                if len(parts) == 2 and parts[0] == "v1":
                    kind = parts[1]
                    if kind == "jobs":
                        raise ApiRequestError(ApiError(
                            code="method-not-allowed",
                            message="jobs are submitted via the engine "
                                    "routes; GET /v1/jobs lists them"))
                    if kind not in REQUEST_TYPES:
                        raise self._no_route()
                    request = self._read_request()
                    if request.kind != kind:
                        raise ApiRequestError(ApiError(
                            code="invalid-kind",
                            message=f"route /v1/{kind} cannot run a "
                                    f"'{request.kind}' request", field="kind"))
                    job = manager.submit(request)
                    self._send_json(202, {
                        "job_id": job.job_id, "status": job.status,
                        "kind": job.kind, "fingerprint": job.fingerprint,
                        "status_url": f"/v1/jobs/{job.job_id}",
                        "result_url": f"/v1/jobs/{job.job_id}/result"})
                    return
                if (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                        and parts[3] == "cancel"):
                    job = manager.cancel(parts[2])
                    self._send_json(200, job.to_dict())
                    return
                raise self._no_route()
            except ApiRequestError as error:
                self._send_error(error.error)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                parts = [p for p in self.path.split("/") if p]
                if parts == ["v1", "health"]:
                    jobs = manager.jobs()
                    self._send_json(200, {
                        "status": "ok",
                        "jobs": len(jobs),
                        "queued": sum(j.status == "queued" for j in jobs),
                        "running": sum(j.status == "running" for j in jobs),
                        "store_entries": (len(manager.store)
                                          if manager.store is not None
                                          else None)})
                    return
                if parts == ["v1", "jobs"]:
                    self._send_json(200, {
                        "jobs": [job.to_dict() for job in manager.jobs()]})
                    return
                if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                    self._send_json(200, manager.get(parts[2]).to_dict())
                    return
                if (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                        and parts[3] == "result"):
                    response = manager.result(parts[2])
                    self._send_json(200, response.to_dict())
                    return
                raise self._no_route()
            except ApiRequestError as error:
                self._send_error(error.error)

        def _no_route(self) -> ApiRequestError:
            known = ("/v1/simulate", "/v1/fleet", "/v1/sweep", "/v1/optimize",
                     "/v1/autoconfig-preview", "/v1/jobs", "/v1/health")
            parts = [p for p in self.path.split("/") if p]
            exists = ("/" + "/".join(parts[:2]) in known) if parts else False
            code = "method-not-allowed" if exists else "unknown-route"
            return ApiRequestError(ApiError(
                code=code,
                message=f"no handler for {self.command} {self.path}; "
                        f"routes: {', '.join(known)}"))

    return GatewayHandler


class GatewayServer:
    """The assembled gateway: HTTP front-end + job queue + shared store.

    ``port=0`` binds an ephemeral port (the tests' pattern); ``port`` is
    the bound port after construction.  Use as a context manager or call
    :meth:`close` — the underlying server is a daemon-threaded
    :class:`ThreadingHTTPServer`, so handlers never block each other and
    shutdown does not hang on idle keep-alive connections.
    """

    def __init__(self, store=None, *, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, runner=None) -> None:
        self.manager = JobManager(store, workers=workers, runner=runner)
        self._httpd = ThreadingHTTPServer((host, port),
                                          _make_handler(self.manager))
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = None

    @property
    def url(self) -> str:
        """Base URL of the bound server (``http://host:port``)."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI entry)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> None:
        """Serve on a background daemon thread (tests, embedding)."""
        import threading

        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True, name="gateway-http")
        self._thread.start()

    def close(self) -> None:
        """Stop the HTTP loop and the job dispatchers."""
        self.manager.shutdown()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_gateway(store=None, *, host: str = "127.0.0.1", port: int = 8080,
                  workers: int = 2) -> None:
    """Blocking entry point used by ``repro-sim gateway``."""
    server = GatewayServer(store, host=host, port=port, workers=workers)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
