"""Simulation as a service: HTTP gateway + async job queue.

Stdlib-only front-end over :mod:`repro.api`: ``POST`` a request payload
to ``/v1/<kind>``, get ``202`` with a job id, poll ``/v1/jobs/<id>``,
fetch the response envelope from ``/v1/jobs/<id>/result``.  All jobs run
against one shared persistent :class:`~repro.sweep.store.ResultStore`,
so the gateway is a multi-tenant simulation cache: any request any
client has run before is served with zero new simulations.

Typical usage::

    from repro.gateway import GatewayServer
    from repro.sweep.store import ResultStore

    with GatewayServer(ResultStore("runs.jsonl"), port=0) as gw:
        print(gw.url)       # e.g. http://127.0.0.1:49152
        ...                 # POST /v1/simulate, poll, fetch

or from the command line: ``repro-sim gateway --store runs.jsonl``.
"""

from repro.gateway.jobs import JOB_STATES, TERMINAL_STATES, Job, JobManager
from repro.gateway.server import (
    MAX_BODY_BYTES,
    GatewayServer,
    error_status,
    serve_gateway,
)

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobManager",
    "MAX_BODY_BYTES",
    "GatewayServer",
    "error_status",
    "serve_gateway",
]
