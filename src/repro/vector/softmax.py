"""Operation-count model of Softmax using the online-normalizer algorithm.

The paper implements Softmax with the online normalizer calculation of
Milakov & Gimelshein [27]: a single pass fuses the running maximum and the
running sum of exponentials, followed by a normalisation pass.  On a vector
unit without a hardware exponential, ``exp`` is evaluated with a range
reduction plus polynomial, which is what makes Softmax the DiT-inference
bottleneck the paper observes (36.9 % of a DiT block's latency).
"""

from __future__ import annotations

from dataclasses import dataclass


#: Scalar-operation cost of one exponential evaluated on the VPU
#: (range reduction, 6th-order polynomial via Horner's rule, reconstruction).
EXP_OPS = 16

#: Scalar-operation cost of one division (Newton–Raphson reciprocal + multiply).
DIV_OPS = 6


@dataclass(frozen=True)
class SoftmaxCost:
    """Scalar-operation and traffic counts of a batched Softmax."""

    rows: int
    row_length: int
    total_ops: int
    ops_per_element: float
    input_bytes: int
    output_bytes: int

    @property
    def elements(self) -> int:
        """Number of elements the Softmax normalises."""
        return self.rows * self.row_length


def softmax_op_counts(rows: int, row_length: int, element_bytes: int = 1) -> SoftmaxCost:
    """Count scalar VPU operations for Softmax over ``rows × row_length``.

    Per element, the online-normalizer pass performs: one comparison/update of
    the running maximum, one exponential, one multiply (rescaling the running
    sum when the maximum moves — charged every element as an upper bound), and
    one add into the running sum.  The second pass performs one exponential
    reuse (kept in registers for row lengths that fit, otherwise recomputed —
    we charge the recompute to stay conservative) and one multiply by the
    reciprocal of the sum; the reciprocal itself is one division per row.
    """
    if rows <= 0 or row_length <= 0:
        raise ValueError("rows and row_length must be positive")
    if element_bytes <= 0:
        raise ValueError("element_bytes must be positive")

    pass_one = row_length * (1 + EXP_OPS + 1 + 1)
    pass_two = row_length * (EXP_OPS + 1)
    per_row = pass_one + pass_two + DIV_OPS
    total = rows * per_row
    elements = rows * row_length
    return SoftmaxCost(
        rows=rows,
        row_length=row_length,
        total_ops=total,
        ops_per_element=total / elements,
        input_bytes=elements * element_bytes,
        output_bytes=elements * element_bytes,
    )
