"""Operation-count models for activation and elementwise operators.

GeLU is approximated with the tanh formulation, matching both the DiT
reference implementation and the paper's methodology; tanh itself is costed as
a rational polynomial approximation on the vector unit.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scalar-operation cost of one tanh (rational approximation + range clamp).
TANH_OPS = 14


@dataclass(frozen=True)
class ActivationCost:
    """Scalar-operation and traffic counts of an elementwise operator."""

    name: str
    elements: int
    total_ops: int
    ops_per_element: float
    input_bytes: int
    output_bytes: int


def gelu_tanh_op_counts(elements: int, element_bytes: int = 1) -> ActivationCost:
    """Count scalar VPU operations for tanh-approximated GeLU.

    ``gelu(x) ≈ 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`` — per element:
    two multiplies for ``x³``, one multiply-add for the inner polynomial, one
    multiply by the constant, one tanh, one add, and two multiplies for the
    outer product.
    """
    if elements <= 0:
        raise ValueError("elements must be positive")
    if element_bytes <= 0:
        raise ValueError("element_bytes must be positive")
    per_element = 2 + 2 + 1 + TANH_OPS + 1 + 2
    total = elements * per_element
    return ActivationCost(
        name="gelu_tanh",
        elements=elements,
        total_ops=total,
        ops_per_element=per_element,
        input_bytes=elements * element_bytes,
        output_bytes=elements * element_bytes,
    )


def elementwise_op_counts(name: str, elements: int, ops_per_element: float = 1.0,
                          operands: int = 2, element_bytes: int = 1) -> ActivationCost:
    """Generic elementwise operator (residual add, shift & scale, masking).

    ``operands`` counts the input tensors read per output element, which
    drives the traffic estimate (e.g. a residual add reads two operands; a
    DiT shift-and-scale reads the activation plus two conditioning vectors,
    but the conditioning vectors are broadcast so they are charged once per
    row by the caller).
    """
    if elements <= 0:
        raise ValueError("elements must be positive")
    if ops_per_element <= 0:
        raise ValueError("ops_per_element must be positive")
    if operands <= 0:
        raise ValueError("operands must be positive")
    if element_bytes <= 0:
        raise ValueError("element_bytes must be positive")
    total = int(round(elements * ops_per_element))
    return ActivationCost(
        name=name,
        elements=elements,
        total_ops=total,
        ops_per_element=ops_per_element,
        input_bytes=elements * operands * element_bytes,
        output_bytes=elements * element_bytes,
    )
