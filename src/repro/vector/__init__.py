"""Vector processing unit (VPU) substrate.

The VPU handles every non-matmul operator in the generative models: Softmax
(with the online-normalizer algorithm [27]), LayerNorm, tanh-approximated GeLU
(the approximation DiT uses), residual additions, and the DiT conditioning
shift-and-scale operations.  The paper keeps the VPU unchanged between the
baseline and the CIM-based TPU, so it is shared by both chip models.
"""

from repro.vector.vpu import VPUConfig, VectorUnit, VectorOpResult
from repro.vector.softmax import softmax_op_counts, SoftmaxCost
from repro.vector.layernorm import layernorm_op_counts, LayerNormCost
from repro.vector.activations import gelu_tanh_op_counts, ActivationCost, elementwise_op_counts
from repro.vector.costs import (
    VectorOpCost,
    register_vector_cost,
    registered_vector_operator_types,
    vector_cost,
)

__all__ = [
    "VPUConfig",
    "VectorUnit",
    "VectorOpResult",
    "VectorOpCost",
    "register_vector_cost",
    "registered_vector_operator_types",
    "vector_cost",
    "softmax_op_counts",
    "SoftmaxCost",
    "layernorm_op_counts",
    "LayerNormCost",
    "gelu_tanh_op_counts",
    "ActivationCost",
    "elementwise_op_counts",
]
