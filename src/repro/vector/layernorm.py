"""Operation-count model of LayerNorm on the vector unit."""

from __future__ import annotations

from dataclasses import dataclass

#: Scalar-operation cost of one reciprocal square root (Newton iteration).
RSQRT_OPS = 8


@dataclass(frozen=True)
class LayerNormCost:
    """Scalar-operation and traffic counts of a batched LayerNorm."""

    rows: int
    hidden_dim: int
    total_ops: int
    ops_per_element: float
    input_bytes: int
    output_bytes: int

    @property
    def elements(self) -> int:
        """Number of normalised elements."""
        return self.rows * self.hidden_dim


def layernorm_op_counts(rows: int, hidden_dim: int, element_bytes: int = 1,
                        elementwise_affine: bool = True) -> LayerNormCost:
    """Count scalar VPU operations for LayerNorm over ``rows × hidden_dim``.

    Per element: one add for the mean reduction, one subtract, one multiply
    and one add for the variance reduction, one multiply by the reciprocal
    standard deviation, and (optionally) a scale and a shift for the affine
    parameters.  Per row: the mean/variance finalisation and one rsqrt.
    """
    if rows <= 0 or hidden_dim <= 0:
        raise ValueError("rows and hidden_dim must be positive")
    if element_bytes <= 0:
        raise ValueError("element_bytes must be positive")

    per_element = 1 + 1 + 2 + 1
    if elementwise_affine:
        per_element += 2
    per_row = hidden_dim * per_element + 4 + RSQRT_OPS
    total = rows * per_row
    elements = rows * hidden_dim
    return LayerNormCost(
        rows=rows,
        hidden_dim=hidden_dim,
        total_ops=total,
        ops_per_element=total / elements,
        input_bytes=elements * element_bytes,
        output_bytes=elements * element_bytes,
    )
