"""Open registry of vector-operator cost models.

The chip model used to hard-code an ``isinstance`` chain mapping each vector
operator type to its scalar-op/traffic cost function.  This module replaces
that chain with a registry keyed by :class:`~repro.workloads.operators.Operator`
subclass, so new vector operators (e.g. the MoE gating operator in
:mod:`repro.workloads.moe`) plug in without touching ``repro.core``.

A cost model reduces one operator instance to the triple the
:class:`~repro.vector.vpu.VectorUnit` consumes: total scalar operations,
input bytes and output bytes.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.vector.activations import elementwise_op_counts, gelu_tanh_op_counts
from repro.vector.layernorm import layernorm_op_counts
from repro.vector.softmax import softmax_op_counts
from repro.workloads.operators import (
    ElementwiseOp,
    GeLUOp,
    LayerNormOp,
    Operator,
    SoftmaxOp,
)


@dataclass(frozen=True)
class VectorOpCost:
    """Scalar-op count and operand traffic of one vector operator."""

    total_ops: int
    input_bytes: int
    output_bytes: int

    def __post_init__(self) -> None:
        if self.total_ops < 0 or self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("vector cost components must be non-negative")


#: A cost model maps one operator instance to its :class:`VectorOpCost`.
VectorCostModel = Callable[[Operator], VectorOpCost]

_COST_MODELS: dict[type, VectorCostModel] = {}


def register_vector_cost(operator_type: type, model: VectorCostModel,
                         overwrite: bool = False) -> None:
    """Register the cost model of a vector operator type.

    Raises
    ------
    ValueError
        If the type already has a cost model and ``overwrite`` is not set.
    """
    if operator_type in _COST_MODELS and not overwrite:
        raise ValueError(
            f"operator type '{operator_type.__name__}' already has a vector cost model")
    _COST_MODELS[operator_type] = model


def registered_vector_operator_types() -> tuple[type, ...]:
    """Operator types with a registered vector cost model."""
    return tuple(_COST_MODELS)


def has_vector_cost(operator_type: type) -> bool:
    """Whether the type (or one of its bases) has a cost model."""
    return any(base in _COST_MODELS for base in operator_type.__mro__)


def vector_cost(op: Operator) -> VectorOpCost:
    """Evaluate the registered cost model of ``op``.

    Resolution walks the operator's MRO so subclasses inherit the cost model
    of their base type unless they register a more specific one.

    Raises
    ------
    TypeError
        If no registered cost model covers the operator's type.
    """
    for base in type(op).__mro__:
        model = _COST_MODELS.get(base)
        if model is not None:
            return model(op)
    known = ", ".join(sorted(t.__name__ for t in _COST_MODELS))
    raise TypeError(
        f"no vector cost model for operator type '{type(op).__name__}' "
        f"(registered: {known})")


# ------------------------------------------------------- built-in cost models
def _softmax_cost(op: SoftmaxOp) -> VectorOpCost:
    cost = softmax_op_counts(op.rows, op.row_length, op.precision.bytes)
    return VectorOpCost(cost.total_ops, cost.input_bytes, cost.output_bytes)


def _layernorm_cost(op: LayerNormOp) -> VectorOpCost:
    cost = layernorm_op_counts(op.rows, op.hidden_dim, op.precision.bytes)
    return VectorOpCost(cost.total_ops, cost.input_bytes, cost.output_bytes)


def _gelu_cost(op: GeLUOp) -> VectorOpCost:
    cost = gelu_tanh_op_counts(op.elements, op.precision.bytes)
    return VectorOpCost(cost.total_ops, cost.input_bytes, cost.output_bytes)


def _elementwise_cost(op: ElementwiseOp) -> VectorOpCost:
    cost = elementwise_op_counts(op.name, op.elements, op.ops_per_element,
                                 op.operands, op.precision.bytes)
    return VectorOpCost(cost.total_ops, cost.input_bytes, cost.output_bytes)


register_vector_cost(SoftmaxOp, _softmax_cost)
register_vector_cost(LayerNormOp, _layernorm_cost)
register_vector_cost(GeLUOp, _gelu_cost)
register_vector_cost(ElementwiseOp, _elementwise_cost)
