"""Vector processing unit (VPU) component model.

The TPUv4i VPU is an 8×128-lane SIMD engine.  The model converts the scalar
operation counts produced by the softmax / layernorm / activation cost models
into cycles (operations divided by lanes, plus a per-invocation ramp) and
energy, and reports the operand traffic so the chip model can overlap VPU
work with memory transfers exactly as it does for the MXUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.energy import EnergyBudget, EnergyModel


@dataclass(frozen=True)
class VPUConfig:
    """Static configuration of the vector unit."""

    lanes: int = 8 * 128
    #: ALUs per lane (the TPUv4i VPU issues several ops per lane per cycle).
    alus_per_lane: int = 4
    frequency_ghz: float = 1.05
    #: Fixed cycles to launch a vector operation (decode, operand staging).
    launch_overhead_cycles: int = 16
    #: Fraction of peak lane throughput sustained on real kernels.
    efficiency: float = 0.85
    #: Leakage power of the whole VPU in watts.
    leakage_power_w: float = 0.6

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.frequency_ghz <= 0:
            raise ValueError("lanes and frequency must be positive")
        if self.alus_per_lane <= 0:
            raise ValueError("alus_per_lane must be positive")
        if self.launch_overhead_cycles < 0:
            raise ValueError("launch overhead must be non-negative")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.leakage_power_w < 0:
            raise ValueError("leakage power must be non-negative")

    @property
    def ops_per_cycle(self) -> float:
        """Sustained scalar operations per cycle."""
        return self.lanes * self.alus_per_lane * self.efficiency


@dataclass(frozen=True)
class VectorOpResult:
    """Cycles, energy and traffic of one vector-unit operator."""

    cycles: float
    ops: int
    energy: EnergyBudget
    input_bytes: int
    output_bytes: int

    @property
    def total_operand_bytes(self) -> int:
        """Bytes of operands crossing the VPU boundary."""
        return self.input_bytes + self.output_bytes


@dataclass
class VectorUnit:
    """The TPU's vector processing unit."""

    config: VPUConfig = field(default_factory=VPUConfig)
    energy_model: EnergyModel = field(default_factory=EnergyModel)

    @property
    def name(self) -> str:
        """Short descriptor used in reports."""
        return f"vpu-{self.config.lanes}"

    @staticmethod
    def supported_operator_types() -> tuple[type, ...]:
        """Capability declaration consumed by the execution-unit registry.

        The VPU can run any operator with a registered vector cost model, so
        the declaration is live: operator types registered after the chip was
        built (e.g. the MoE gating operator) are picked up automatically.
        """
        from repro.vector.costs import registered_vector_operator_types

        return registered_vector_operator_types()

    def execute(self, total_ops: int, input_bytes: int, output_bytes: int) -> VectorOpResult:
        """Run an operator described by its scalar-op count and traffic."""
        if total_ops < 0 or input_bytes < 0 or output_bytes < 0:
            raise ValueError("operation and byte counts must be non-negative")
        cycles = self.config.launch_overhead_cycles + total_ops / self.config.ops_per_cycle
        energy = EnergyBudget()
        energy.add_dynamic("vpu", self.energy_model.vpu_op_energy(total_ops))
        seconds = cycles / (self.config.frequency_ghz * 1e9)
        energy.add_leakage("vpu", self.config.leakage_power_w * seconds)
        return VectorOpResult(
            cycles=cycles,
            ops=total_ops,
            energy=energy,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
        )

    def idle_energy(self, cycles: float) -> EnergyBudget:
        """Leakage energy while the VPU waits for matrix work to finish."""
        if cycles < 0:
            raise ValueError("idle cycles must be non-negative")
        budget = EnergyBudget()
        seconds = cycles / (self.config.frequency_ghz * 1e9)
        budget.add_leakage("vpu", self.config.leakage_power_w * seconds)
        return budget
