"""Logging setup for the ``repro.*`` logger hierarchy.

Library modules log through ``logging.getLogger(__name__)`` — which puts
every logger under the ``repro`` root — and never configure handlers
themselves.  The package attaches a :class:`logging.NullHandler` to the
root so importing the library stays silent under any host application.

The CLI calls :func:`configure_logging` once at startup: diagnostics go
to **stderr** (result output owns stdout), at WARNING by default, INFO
with ``-v`` and DEBUG with ``-vv``.
"""

from __future__ import annotations

import logging
import sys

#: The root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

_LEVELS = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger (idempotent).

    ``verbosity`` is the count of ``-v`` flags: 0 → WARNING, 1 → INFO,
    2+ → DEBUG.  Re-invocation (tests call the CLI in-process many
    times) updates the level instead of stacking handlers.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    level = _LEVELS.get(min(verbosity, 2), logging.DEBUG)
    handler = next((h for h in root.handlers
                    if getattr(h, "_repro_cli", False)), None)
    if handler is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        handler._repro_cli = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    root.setLevel(level)
    return root
