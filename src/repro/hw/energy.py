"""Energy models derived from the silicon calibration constants.

The paper's evaluation reports *MXU energy*: the energy consumed by the matrix
units during an inference, combining dynamic (per-MAC and per-weight-update)
energy with static (leakage) energy accumulated over the runtime.  This module
turns the Table II efficiencies into those per-operation quantities and also
provides per-byte energies for the on-chip SRAMs and HBM so that full-chip
energy breakdowns can be produced.

Conventions
-----------
* Energies are expressed in joules, powers in watts, times in seconds.
* One MAC counts as two operations (the TOPS convention used by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.calibration import CalibrationConstants, PAPER_CALIBRATION, TPUSpec, TPUV4I_SPEC
from repro.hw.technology import TechnologyNode, CALIBRATION_NODE, scale_energy, scale_leakage_density


def peak_tops(macs_per_cycle: int, frequency_ghz: float) -> float:
    """Peak INT8 throughput in TOPS for a unit executing ``macs_per_cycle``."""
    return 2.0 * macs_per_cycle * frequency_ghz * 1e9 / 1e12


@dataclass
class EnergyBudget:
    """An accumulating energy breakdown keyed by component name.

    Dynamic and leakage contributions are tracked separately so reports can
    show both "energy per operation" effects and "idle energy over runtime"
    effects, which is what differentiates the paper's Fig. 6 ratios (9.2×–13.4×)
    from the raw per-MAC ratio (9.43×).
    """

    dynamic_joules: dict[str, float] = field(default_factory=dict)
    leakage_joules: dict[str, float] = field(default_factory=dict)

    def add_dynamic(self, component: str, joules: float) -> None:
        """Add dynamic energy for ``component``."""
        if joules < 0:
            raise ValueError(f"dynamic energy must be non-negative, got {joules}")
        self.dynamic_joules[component] = self.dynamic_joules.get(component, 0.0) + joules

    def add_leakage(self, component: str, joules: float) -> None:
        """Add leakage energy for ``component``."""
        if joules < 0:
            raise ValueError(f"leakage energy must be non-negative, got {joules}")
        self.leakage_joules[component] = self.leakage_joules.get(component, 0.0) + joules

    def merge(self, other: "EnergyBudget") -> None:
        """Accumulate another budget into this one."""
        for component, joules in other.dynamic_joules.items():
            self.add_dynamic(component, joules)
        for component, joules in other.leakage_joules.items():
            self.add_leakage(component, joules)

    def scaled(self, factor: float) -> "EnergyBudget":
        """Return a copy with every contribution multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        scaled_budget = EnergyBudget()
        for component, joules in self.dynamic_joules.items():
            scaled_budget.add_dynamic(component, joules * factor)
        for component, joules in self.leakage_joules.items():
            scaled_budget.add_leakage(component, joules * factor)
        return scaled_budget

    def component_total(self, component: str) -> float:
        """Total (dynamic + leakage) energy of a single component."""
        return self.dynamic_joules.get(component, 0.0) + self.leakage_joules.get(component, 0.0)

    @property
    def components(self) -> set[str]:
        """Names of every component with a recorded contribution."""
        return set(self.dynamic_joules) | set(self.leakage_joules)

    @property
    def total_dynamic(self) -> float:
        """Total dynamic energy across all components."""
        return sum(self.dynamic_joules.values())

    @property
    def total_leakage(self) -> float:
        """Total leakage energy across all components."""
        return sum(self.leakage_joules.values())

    @property
    def total(self) -> float:
        """Total energy across all components."""
        return self.total_dynamic + self.total_leakage


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energies and leakage powers for every chip component.

    The MXU-level numbers are derived from the Table II calibration: a unit
    that delivers ``peak_tops`` at ``tops_per_watt`` consumes
    ``peak_tops / tops_per_watt`` watts at full utilisation; a configurable
    fraction of that is static, the rest is dynamic and divides evenly over
    the MACs executed per second.

    Memory access energies are representative 22 nm per-byte figures (register
    file < SRAM < large SRAM < HBM) and are scaled with the technology node.
    """

    technology: TechnologyNode = CALIBRATION_NODE
    calibration: CalibrationConstants = PAPER_CALIBRATION
    spec: TPUSpec = TPUV4I_SPEC
    # Representative per-byte access energies at the 22 nm calibration node.
    vmem_pj_per_byte: float = 0.9
    cmem_pj_per_byte: float = 2.1
    hbm_pj_per_byte: float = 31.2
    register_pj_per_byte: float = 0.06
    ici_pj_per_byte: float = 10.0
    vpu_pj_per_op: float = 0.55
    # Fraction of a CIM macro's per-MAC dynamic energy charged for writing one
    # weight byte through the weight I/O (SRAM write + drivers).
    cim_weight_write_pj_per_byte: float = 1.1
    digital_weight_load_pj_per_byte: float = 0.35

    # ------------------------------------------------------------------ MXU
    def _mxu_power_budget(self, macs_per_cycle: int, tops_per_watt: float,
                          leakage_fraction: float) -> tuple[float, float]:
        """Return ``(dynamic_energy_per_mac_j, leakage_power_w)`` for one MXU."""
        tops = peak_tops(macs_per_cycle, self.spec.frequency_ghz)
        full_power_w = tops / tops_per_watt
        leakage_power_w = full_power_w * leakage_fraction
        dynamic_power_w = full_power_w - leakage_power_w
        macs_per_second = macs_per_cycle * self.spec.frequency_ghz * 1e9
        energy_per_mac_j = dynamic_power_w / macs_per_second
        energy_per_mac_j = scale_energy(energy_per_mac_j, CALIBRATION_NODE, self.technology)
        leakage_power_w = scale_leakage_density(leakage_power_w, CALIBRATION_NODE, self.technology)
        return energy_per_mac_j, leakage_power_w

    def digital_mac_energy(self, precision_bits: int = 8) -> float:
        """Dynamic energy of one MAC on the digital systolic MXU, in joules."""
        energy, _ = self._mxu_power_budget(
            self.spec.systolic_macs_per_cycle,
            self.calibration.digital_tops_per_watt,
            self.calibration.digital_leakage_fraction,
        )
        return energy * self._precision_energy_factor(precision_bits)

    def digital_mxu_leakage_power(self) -> float:
        """Leakage power (W) of one 128×128 digital MXU."""
        _, leakage = self._mxu_power_budget(
            self.spec.systolic_macs_per_cycle,
            self.calibration.digital_tops_per_watt,
            self.calibration.digital_leakage_fraction,
        )
        return leakage

    def cim_mac_energy(self, precision_bits: int = 8) -> float:
        """Dynamic energy of one MAC inside a digital CIM core, in joules."""
        energy, _ = self._mxu_power_budget(
            self.spec.cim_macs_per_cycle,
            self.calibration.cim_tops_per_watt,
            self.calibration.cim_leakage_fraction,
        )
        return energy * self._precision_energy_factor(precision_bits)

    def cim_core_leakage_power(self) -> float:
        """Leakage power (W) of a single 128×256 CIM core."""
        _, leakage = self._mxu_power_budget(
            self.spec.cim_macs_per_cycle,
            self.calibration.cim_tops_per_watt,
            self.calibration.cim_leakage_fraction,
        )
        default_core_count = self.spec.cim_grid_rows * self.spec.cim_grid_cols
        return leakage / default_core_count

    def _precision_energy_factor(self, precision_bits: int) -> float:
        if precision_bits == 8:
            return 1.0
        if precision_bits == 16:
            return self.calibration.bf16_energy_overhead
        raise ValueError(f"unsupported precision: {precision_bits} bits (use 8 or 16)")

    # --------------------------------------------------------------- memory
    def _scaled_pj(self, pj: float) -> float:
        return scale_energy(pj * 1e-12, CALIBRATION_NODE, self.technology)

    def vmem_access_energy(self, num_bytes: float) -> float:
        """Energy (J) of moving ``num_bytes`` into or out of VMEM."""
        return self._scaled_pj(self.vmem_pj_per_byte) * num_bytes

    def cmem_access_energy(self, num_bytes: float) -> float:
        """Energy (J) of moving ``num_bytes`` into or out of CMEM."""
        return self._scaled_pj(self.cmem_pj_per_byte) * num_bytes

    def hbm_access_energy(self, num_bytes: float) -> float:
        """Energy (J) of moving ``num_bytes`` across the HBM interface."""
        # HBM I/O energy is dominated by the PHY and does not scale with the
        # logic node, so it is left unscaled.
        return self.hbm_pj_per_byte * 1e-12 * num_bytes

    def ici_transfer_energy(self, num_bytes: float) -> float:
        """Energy (J) of moving ``num_bytes`` across one ICI link."""
        return self.ici_pj_per_byte * 1e-12 * num_bytes

    def vpu_op_energy(self, num_ops: float) -> float:
        """Energy (J) of ``num_ops`` scalar operations on the vector unit."""
        return self._scaled_pj(self.vpu_pj_per_op) * num_ops

    def cim_weight_write_energy(self, num_bytes: float) -> float:
        """Energy (J) of writing ``num_bytes`` of weights into CIM macros."""
        return self._scaled_pj(self.cim_weight_write_pj_per_byte) * num_bytes

    def digital_weight_load_energy(self, num_bytes: float) -> float:
        """Energy (J) of loading ``num_bytes`` of weights into the systolic array."""
        return self._scaled_pj(self.digital_weight_load_pj_per_byte) * num_bytes
