"""Hardware cost models: technology scaling, energy, area and calibration.

This package provides the low-level cost models that every higher-level
component model (systolic MXU, CIM-MXU, SRAM buffers, HBM, VPU) builds on:

* :mod:`repro.hw.technology` — technology-node descriptions and scaling rules.
* :mod:`repro.hw.calibration` — the silicon-calibrated constants reported by the
  paper (Table II) together with the TPUv4i public specifications.
* :mod:`repro.hw.energy` — per-operation dynamic energy and leakage power models.
* :mod:`repro.hw.area` — area models for MXUs, CIM cores and SRAM.
"""

from repro.hw.technology import TechnologyNode, TECHNOLOGY_NODES, scale_energy, scale_area
from repro.hw.calibration import (
    CalibrationConstants,
    PAPER_CALIBRATION,
    TPUV4I_SPEC,
)
from repro.hw.energy import EnergyModel, EnergyBudget
from repro.hw.area import AreaModel

__all__ = [
    "TechnologyNode",
    "TECHNOLOGY_NODES",
    "scale_energy",
    "scale_area",
    "CalibrationConstants",
    "PAPER_CALIBRATION",
    "TPUV4I_SPEC",
    "EnergyModel",
    "EnergyBudget",
    "AreaModel",
]
