"""Technology node descriptions and first-order scaling rules.

The paper implements both the digital MXU and the CIM-MXU in TSMC 22 nm and
evaluates the full chip against a TPUv4i baseline that is fabricated in 7 nm.
For fair comparisons the paper scales both designs "to the same technology and
frequency".  This module provides that scaling: a small table of technology
nodes with relative energy, area and frequency factors, normalised to the
22 nm node used for the silicon calibration.

The scaling rules are first-order (capacitance-driven dynamic energy scaling
and classic area shrink); they are sufficient for the relative comparisons the
paper performs, where baseline and CIM design are always placed at the *same*
node so the ratios are node-independent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS technology node with scaling factors relative to 22 nm.

    Attributes
    ----------
    name:
        Human-readable node name, e.g. ``"tsmc22"``.
    feature_nm:
        Drawn feature size in nanometres.
    energy_factor:
        Dynamic energy per switched operation relative to the 22 nm node
        (smaller is better).
    area_factor:
        Logic/SRAM area for the same function relative to the 22 nm node.
    leakage_factor:
        Leakage power density (W/mm²) relative to the 22 nm node.  Leakage
        density tends to *rise* at advanced nodes.
    max_frequency_ghz:
        A representative achievable clock frequency for datapath logic.
    """

    name: str
    feature_nm: float
    energy_factor: float
    area_factor: float
    leakage_factor: float
    max_frequency_ghz: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ValueError(f"feature_nm must be positive, got {self.feature_nm}")
        for field_name in ("energy_factor", "area_factor", "leakage_factor", "max_frequency_ghz"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")


#: Technology nodes known to the model.  Factors are normalised to 22 nm, the
#: node used for the paper's post-P&R calibration (Table II).
TECHNOLOGY_NODES: dict[str, TechnologyNode] = {
    "tsmc65": TechnologyNode("tsmc65", 65.0, energy_factor=4.6, area_factor=7.4, leakage_factor=0.55, max_frequency_ghz=0.6),
    "tsmc28": TechnologyNode("tsmc28", 28.0, energy_factor=1.35, area_factor=1.55, leakage_factor=0.9, max_frequency_ghz=1.0),
    "tsmc22": TechnologyNode("tsmc22", 22.0, energy_factor=1.0, area_factor=1.0, leakage_factor=1.0, max_frequency_ghz=1.05),
    "tsmc12": TechnologyNode("tsmc12", 12.0, energy_factor=0.52, area_factor=0.42, leakage_factor=1.25, max_frequency_ghz=1.4),
    "tsmc7": TechnologyNode("tsmc7", 7.0, energy_factor=0.34, area_factor=0.21, leakage_factor=1.5, max_frequency_ghz=1.8),
    "tsmc5": TechnologyNode("tsmc5", 5.0, energy_factor=0.27, area_factor=0.15, leakage_factor=1.7, max_frequency_ghz=2.0),
}

#: The node at which the paper's Table II silicon numbers were measured.
CALIBRATION_NODE = TECHNOLOGY_NODES["tsmc22"]


def get_node(name: str) -> TechnologyNode:
    """Look up a technology node by name.

    Raises
    ------
    KeyError
        If the node name is unknown; the error lists the available nodes.
    """
    try:
        return TECHNOLOGY_NODES[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_NODES))
        raise KeyError(f"unknown technology node '{name}'; known nodes: {known}") from None


def scale_energy(energy: float, source: TechnologyNode, target: TechnologyNode) -> float:
    """Scale a dynamic energy value from ``source`` node to ``target`` node."""
    return energy * target.energy_factor / source.energy_factor


def scale_area(area: float, source: TechnologyNode, target: TechnologyNode) -> float:
    """Scale an area value from ``source`` node to ``target`` node."""
    return area * target.area_factor / source.area_factor


def scale_leakage_density(density: float, source: TechnologyNode, target: TechnologyNode) -> float:
    """Scale a leakage power density (W/mm²) from ``source`` to ``target`` node."""
    return density * target.leakage_factor / source.leakage_factor
