"""Silicon-calibrated constants used by the cost models.

The paper calibrates its architecture model against two physical
implementations in TSMC 22 nm (Table II):

* a Gemmini-generated 128×128 digital systolic array, taken through synthesis
  and place & route with Cadence Genus/Innovus, and
* a CIM-MXU built from a 16×8 grid of 128×256 digital SRAM CIM cores, with a
  manually drawn CIM core layout.

We cannot run a commercial P&R flow from Python, so — as documented in
DESIGN.md — those measured efficiencies are carried here as calibration
constants, exactly as the paper itself consumes them: scalar inputs to the
architecture-level simulator.  Everything derived from them (per-MAC energy,
leakage power, per-core area, MXU area) is computed in
:mod:`repro.hw.energy` and :mod:`repro.hw.area` so the derivation is explicit
and testable.

The TPUv4i chip-level specification (Table I of the paper, originally from
Jouppi et al., ISCA'21) is also collected here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationConstants:
    """Measured MXU-level efficiencies at the calibration node (22 nm, 1.05 GHz).

    All "TOPS" figures are INT8 tera-operations per second where one
    multiply-accumulate counts as two operations, matching the convention of
    the paper and of vendor datasheets.

    Attributes
    ----------
    digital_tops_per_watt:
        Energy efficiency of the digital 128×128 systolic MXU.
    digital_tops_per_mm2:
        Area efficiency of the digital MXU.
    cim_tops_per_watt:
        Energy efficiency of the CIM-MXU (16×8 grid of CIM cores).
    cim_tops_per_mm2:
        Area efficiency of the CIM-MXU.
    digital_leakage_fraction:
        Fraction of the digital MXU's full-utilisation power that is static
        (leakage + always-on clocking).  Post-P&R digital arrays at 22 nm
        typically sit in the 15–25 % range; the value is exposed so ablations
        can sweep it.
    cim_leakage_fraction:
        Same for the CIM-MXU.  The CIM array's static share is dominated by
        the retention leakage of its dense SRAM bitcells plus the always-on
        weight I/O; it is lower than the digital array's in absolute watts but
        forms a comparable fraction of its (much smaller) full-power budget.
    bf16_energy_overhead:
        Multiplicative dynamic-energy overhead of BF16 (mantissa alignment in
        the pre-processing unit plus wider accumulation) relative to INT8 for
        the same MAC count.
    bf16_throughput_factor:
        Peak-throughput factor of BF16 relative to INT8 (both MXU flavours
        keep the same MACs/cycle in the paper, hence 1.0).
    """

    digital_tops_per_watt: float = 0.77
    digital_tops_per_mm2: float = 0.648
    cim_tops_per_watt: float = 7.26
    cim_tops_per_mm2: float = 1.31
    digital_leakage_fraction: float = 0.22
    cim_leakage_fraction: float = 0.20
    bf16_energy_overhead: float = 1.45
    bf16_throughput_factor: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "digital_tops_per_watt",
            "digital_tops_per_mm2",
            "cim_tops_per_watt",
            "cim_tops_per_mm2",
            "bf16_energy_overhead",
            "bf16_throughput_factor",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        for field_name in ("digital_leakage_fraction", "cim_leakage_fraction"):
            value = getattr(self, field_name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{field_name} must be in [0, 1), got {value}")

    @property
    def cim_energy_efficiency_gain(self) -> float:
        """Energy-efficiency ratio of CIM-MXU over digital MXU (paper: 9.43×)."""
        return self.cim_tops_per_watt / self.digital_tops_per_watt

    @property
    def cim_area_efficiency_gain(self) -> float:
        """Area-efficiency ratio of CIM-MXU over digital MXU (paper: 2.02×)."""
        return self.cim_tops_per_mm2 / self.digital_tops_per_mm2


#: The constants reported in Table II of the paper.
PAPER_CALIBRATION = CalibrationConstants()


@dataclass(frozen=True)
class TPUSpec:
    """Chip-level specification shared by the baseline and CIM-based TPU.

    These are the Table I parameters that the paper keeps identical between
    the baseline TPUv4i and its CIM-based variant: memory capacities,
    bandwidths, the vector unit width and the clock frequency.
    """

    frequency_ghz: float = 1.05
    tensor_core_count: int = 1
    mxu_count: int = 4
    systolic_rows: int = 128
    systolic_cols: int = 128
    cim_grid_rows: int = 16
    cim_grid_cols: int = 8
    cim_core_rows: int = 128
    cim_core_cols: int = 256
    vector_lanes: int = 8 * 128
    vmem_bytes: int = 16 * 2**20
    cmem_bytes: int = 128 * 2**20
    main_memory_bytes: int = 8 * 2**30
    main_memory_bandwidth_gbps: float = 614.0
    ici_link_bandwidth_gbps: float = 100.0
    ici_link_count: int = 2

    def __post_init__(self) -> None:
        positive_fields = (
            "frequency_ghz",
            "tensor_core_count",
            "mxu_count",
            "systolic_rows",
            "systolic_cols",
            "cim_grid_rows",
            "cim_grid_cols",
            "cim_core_rows",
            "cim_core_cols",
            "vector_lanes",
            "vmem_bytes",
            "cmem_bytes",
            "main_memory_bytes",
            "main_memory_bandwidth_gbps",
            "ici_link_bandwidth_gbps",
            "ici_link_count",
        )
        for field_name in positive_fields:
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def systolic_macs_per_cycle(self) -> int:
        """MAC operations per cycle of one digital systolic MXU."""
        return self.systolic_rows * self.systolic_cols

    @property
    def cim_macs_per_cycle(self) -> int:
        """MAC operations per cycle of one default (16×8) CIM-MXU."""
        return self.cim_grid_rows * self.cim_grid_cols * 128

    @property
    def main_memory_bytes_per_cycle(self) -> float:
        """HBM bandwidth expressed in bytes per core clock cycle."""
        return self.main_memory_bandwidth_gbps * 1e9 / (self.frequency_ghz * 1e9)

    @property
    def ici_bytes_per_cycle(self) -> float:
        """Single ICI link bandwidth in bytes per core clock cycle."""
        return self.ici_link_bandwidth_gbps * 1e9 / (self.frequency_ghz * 1e9)


#: Table I parameters of the TPUv4i baseline used throughout the paper.
TPUV4I_SPEC = TPUSpec()
