"""Area models for MXUs, CIM cores and SRAM buffers.

Areas are derived from the Table II area efficiencies at the 22 nm calibration
node and scaled with the selected technology node.  The chip-level evaluation
in the paper only uses MXU area for two statements — the CIM-MXU reaches the
baseline peak throughput in about half the area, and larger CIM-MXU
configurations spend the freed-up area on more CIM cores — both of which this
model reproduces directly from the calibrated densities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.calibration import CalibrationConstants, PAPER_CALIBRATION, TPUSpec, TPUV4I_SPEC
from repro.hw.energy import peak_tops
from repro.hw.technology import TechnologyNode, CALIBRATION_NODE, scale_area


@dataclass(frozen=True)
class AreaModel:
    """Area estimates (mm²) for the matrix units and on-chip SRAM."""

    technology: TechnologyNode = CALIBRATION_NODE
    calibration: CalibrationConstants = PAPER_CALIBRATION
    spec: TPUSpec = TPUV4I_SPEC
    #: SRAM macro density at 22 nm, in Mbit per mm² (large compiled arrays).
    sram_mbit_per_mm2: float = 1.6

    def _scale(self, area_mm2: float) -> float:
        return scale_area(area_mm2, CALIBRATION_NODE, self.technology)

    def digital_mxu_area(self, rows: int | None = None, cols: int | None = None) -> float:
        """Area of a digital systolic MXU with the given dimensions.

        The 128×128 reference point comes from the calibrated area efficiency;
        other dimensions scale with the MAC count, which is accurate to first
        order because the array is dominated by the MAC cells themselves.
        """
        rows = self.spec.systolic_rows if rows is None else rows
        cols = self.spec.systolic_cols if cols is None else cols
        if rows <= 0 or cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        reference_macs = self.spec.systolic_macs_per_cycle
        reference_tops = peak_tops(reference_macs, self.spec.frequency_ghz)
        reference_area = reference_tops / self.calibration.digital_tops_per_mm2
        return self._scale(reference_area * (rows * cols) / reference_macs)

    def cim_core_area(self) -> float:
        """Area of one 128×256 CIM core (macro + local accumulation logic)."""
        reference_macs = self.spec.cim_macs_per_cycle
        reference_tops = peak_tops(reference_macs, self.spec.frequency_ghz)
        reference_area = reference_tops / self.calibration.cim_tops_per_mm2
        core_count = self.spec.cim_grid_rows * self.spec.cim_grid_cols
        return self._scale(reference_area / core_count)

    def cim_mxu_area(self, grid_rows: int | None = None, grid_cols: int | None = None) -> float:
        """Area of a CIM-MXU made of a ``grid_rows × grid_cols`` grid of cores."""
        grid_rows = self.spec.cim_grid_rows if grid_rows is None else grid_rows
        grid_cols = self.spec.cim_grid_cols if grid_cols is None else grid_cols
        if grid_rows <= 0 or grid_cols <= 0:
            raise ValueError("CIM grid dimensions must be positive")
        return self.cim_core_area() * grid_rows * grid_cols

    def sram_area(self, capacity_bytes: int) -> float:
        """Area of an on-chip SRAM of the given capacity."""
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        mbit = capacity_bytes * 8 / 2**20
        return self._scale(mbit / self.sram_mbit_per_mm2)

    def cim_area_saving_vs_digital(self) -> float:
        """Area of the default CIM-MXU relative to the digital MXU (paper: ≈0.5)."""
        return self.cim_mxu_area() / self.digital_mxu_area()
