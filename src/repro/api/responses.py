"""Frozen response envelopes of the unified API.

Every facade call returns one envelope per request kind, all sharing the
same provenance header:

``fingerprint``
    Content fingerprint of the *request* (``fingerprint("repro-api/v1",
    request)``) — the multi-tenant cache identity a gateway client can use
    to correlate submissions.
``served_from_store`` / ``new_simulations`` / ``store_hits`` /
``store_misses``
    Exactly what the run cost: a warm repeat of any request reports
    ``new_simulations == 0`` and a positive ``store_hits``, which is the
    property the gateway tests and the CI smoke gate assert.

Result payloads are carried as plain JSON dicts (the engines' own
``to_dict`` forms), so an envelope serialises exactly over HTTP and the
``*_object`` helpers decode them back into the engines' report
dataclasses for rich consumers like the CLI printers.  ``to_dict`` /
``from_dict`` round-trip byte-exactly: a response decoded from the wire
re-encodes to the same JSON.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.api.errors import ApiError, ApiRequestError
from repro.api.requests import SCHEMA_VERSION


def _decode_response(cls, payload: Mapping[str, Any]):
    if not isinstance(payload, Mapping):
        raise ApiRequestError(ApiError(
            code="invalid-json",
            message=f"response body must be a JSON object, "
                    f"got {type(payload).__name__}"))
    data = dict(payload)
    kind = data.pop("kind", cls.kind)
    if kind != cls.kind:
        raise ApiRequestError(ApiError(
            code="invalid-kind",
            message=f"payload kind '{kind}' does not match "
                    f"'{cls.kind}'", field="kind"))
    version = data.pop("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ApiRequestError(ApiError(
            code="unsupported-schema-version",
            message=f"schema_version {version!r} is not supported "
                    f"(this build speaks {SCHEMA_VERSION})",
            field="schema_version"))
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = [key for key in data if key not in names]
    if unknown:
        raise ApiRequestError(ApiError(
            code="unknown-field",
            message=f"unknown field '{unknown[0]}' for kind '{cls.kind}'",
            field=str(unknown[0])))
    return cls(**data)


@dataclass(frozen=True)
class _Response:
    """Provenance header every response kind shares."""

    kind: ClassVar[str] = ""

    fingerprint: str
    served_from_store: bool
    new_simulations: int
    store_hits: int
    store_misses: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-primitive payload; ``from_dict`` round-trips it exactly."""
        payload: dict[str, Any] = {"kind": self.kind,
                                   "schema_version": SCHEMA_VERSION}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            payload[f.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]):
        """Strictly decode an envelope of this kind."""
        decoded = _decode_response(cls, payload)
        return decoded


@dataclass(frozen=True)
class SimulateResponse(_Response):
    """A serving run's report (single-deployment or fleet-shaped)."""

    kind: ClassVar[str] = "simulate"

    #: Whether the run took the cluster path (``replicas > 1`` or faults);
    #: selects the decoder for :meth:`report_object`.
    fleet: bool = False
    #: ``ServingReport.to_dict()`` (with per-request rows) for single
    #: deployments; ``ClusterReport.to_dict(include_requests=False)`` for
    #: fleets — matching what the shared store persists, so cold and warm
    #: responses are byte-identical.
    report: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def report_object(self):
        """The decoded report dataclass (ServingReport / ClusterReport)."""
        from repro.serving.cluster import cluster_report_from_dict
        from repro.serving.simulator import serving_report_from_dict

        decode = cluster_report_from_dict if self.fleet else serving_report_from_dict
        return decode(dict(self.report))


@dataclass(frozen=True)
class FleetResponse(_Response):
    """A fleet-sizing plan (the ``repro-sim fleet --json`` payload shape)."""

    kind: ClassVar[str] = "fleet"

    plan: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def plan_object(self):
        """The decoded :class:`~repro.analysis.capacity.FleetPlan`."""
        from repro.analysis.capacity import FleetEvaluation, FleetPlan
        from repro.sweep.store import decode_dataclass

        data = dict(self.plan)
        evaluations = tuple(decode_dataclass(FleetEvaluation, dict(row))
                            for row in data.get("evaluations", ()))
        return FleetPlan(model_name=data["model"], tpu_name=data["tpu"],
                         arrival_rate=data["arrival_rate"],
                         attainment_target=data["attainment_target"],
                         met=data["met"], replicas=data["replicas"],
                         evaluations=evaluations)


@dataclass(frozen=True)
class SweepResponse(_Response):
    """A sweep's result rows plus the engine's cache accounting."""

    kind: ClassVar[str] = "sweep"

    rows: tuple[Mapping[str, Any], ...] = ()
    #: Engine counters: simulations, graph_hits, point_hits, store_hits,
    #: store_misses — the exact provenance the CLI stats line prints.
    stats: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.rows, tuple):
            object.__setattr__(self, "rows", tuple(self.rows))

    def row_objects(self):
        """The decoded :class:`~repro.sweep.engine.SweepResult` rows."""
        from repro.sweep.engine import SweepResult

        return [SweepResult.from_dict(dict(row)) for row in self.rows]


@dataclass(frozen=True)
class OptimizeResponse(_Response):
    """A co-design search's Pareto frontier (``ParetoFrontier.to_dict``)."""

    kind: ClassVar[str] = "optimize"

    frontier: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def frontier_object(self):
        """The decoded :class:`~repro.optimize.pareto.ParetoFrontier`."""
        from repro.optimize.pareto import frontier_from_dict

        return frontier_from_dict(dict(self.frontier))


@dataclass(frozen=True)
class AutoconfigPreviewResponse(_Response):
    """Deterministic sizing analytics (always ``new_simulations == 0``)."""

    kind: ClassVar[str] = "autoconfig-preview"

    preview: Mapping[str, Any] = dataclasses.field(default_factory=dict)


#: kind -> response class (the inverse of each facade call).
RESPONSE_TYPES: dict[str, type] = {
    cls.kind: cls for cls in (SimulateResponse, FleetResponse, SweepResponse,
                              OptimizeResponse, AutoconfigPreviewResponse)
}


def response_from_dict(payload: Mapping[str, Any]):
    """Decode any response payload by its ``kind`` field."""
    if not isinstance(payload, Mapping):
        raise ApiRequestError(ApiError(
            code="invalid-json",
            message=f"response body must be a JSON object, "
                    f"got {type(payload).__name__}"))
    kind = payload.get("kind")
    if kind not in RESPONSE_TYPES:
        known = ", ".join(sorted(RESPONSE_TYPES))
        raise ApiRequestError(ApiError(
            code="invalid-kind",
            message=f"unknown response kind {kind!r}; "
                    f"choose one of: {known}", field="kind"))
    return RESPONSE_TYPES[kind].from_dict(payload)
