"""Frozen request schemas of the unified API.

One request dataclass per engine — :class:`SimulateRequest`,
:class:`FleetRequest`, :class:`SweepRequest`, :class:`OptimizeRequest`,
:class:`AutoconfigPreviewRequest` — each a flat record of JSON primitives
(strings, numbers, lists; chaos axes as the CLI's compact ``--faults`` /
``--overlay`` strings) whose defaults mirror the CLI defaults exactly.
The same payload therefore means the same run whether it arrives as CLI
flags, a Python call or an HTTP body, and the response is byte-identical
across the three.

The contract, stated explicitly:

* **Strict decoding.**  ``from_dict`` rejects unknown keys, missing
  required fields, a mismatched ``kind`` and an unsupported
  ``schema_version`` — each with a structured :class:`~repro.api.errors.ApiError`
  naming the field.  Silence never reinterprets a typo as a default.
* **Exact JSON round-trip.**  ``to_dict`` emits only JSON primitives
  (tuples as lists) and ``from_dict(to_dict(r))`` reconstructs ``r``
  exactly; floats survive by JSON's ``repr`` round-trip.
* **Validation at construction.**  ``__post_init__`` validates every
  field against the live registries (schedulers, routers, autoscalers,
  traces, objectives, search strategies, designs, models, scenarios) and
  re-uses the engines' own error wording, so the facade, the CLI and the
  gateway all report the same message for the same mistake.
* **Execution hints stay out of content.**  ``shards``/``workers`` tune
  *how* a run executes, never *what* it computes (sharded == serial, bit
  for bit), so they ride on the request but are documented as
  non-semantic; store keys never include them.

``SCHEMA_VERSION`` stamps every payload.  Bump it when a field changes
meaning or shape — never for adding optional fields with defaults — and
see CONTRIBUTING.md for the stability policy.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.api.errors import ApiError, ApiRequestError, invalid_field
from repro.common import Precision
from repro.core.designs import PREDEFINED_DESIGNS
from repro.optimize import DesignSpace, get_objective, parse_constraint
from repro.optimize.search import SEARCH_REGISTRY
from repro.serving.autoscaler import AUTOSCALER_REGISTRY
from repro.serving.faults import parse_fault
from repro.serving.metrics import SLO
from repro.serving.router import ROUTER_REGISTRY
from repro.serving.scheduler import SCHEDULER_REGISTRY
from repro.serving.spec import ServingSpec
from repro.serving.trace import TRACE_REGISTRY, parse_overlay
from repro.sweep.grid import SweepGrid
from repro.workloads.llm import GPT3_30B, LLMConfig
from repro.workloads.registry import MODEL_REGISTRY, get_model, get_scenario
from repro.workloads.scenario import ScenarioKnobs

#: Version of the request/response schemas.  Payloads carrying a different
#: version are rejected with ``unsupported-schema-version`` instead of
#: being silently reinterpreted.
SCHEMA_VERSION = 1

_PRECISIONS = tuple(p.value for p in Precision)


# ------------------------------------------------------------ shared checks
def _check_choice(value: object, names, field_name: str, what: str) -> None:
    if value not in names:
        known = ", ".join(sorted(names))
        raise invalid_field(field_name,
                            f"unknown {what} '{value}'; choose one of: {known}")


def _check_positive(value: object, field_name: str) -> None:
    try:
        bad = not value > 0  # type: ignore[operator]
    except TypeError:
        raise invalid_field(field_name,
                            f"{field_name} must be a positive number") from None
    if bad:
        raise invalid_field(field_name, f"{field_name} must be positive")


def _parse_faults(texts, field_name: str = "faults"):
    specs = []
    for index, text in enumerate(texts):
        try:
            specs.append(parse_fault(text))
        except (KeyError, ValueError) as error:
            raise ApiRequestError(ApiError(
                code="invalid-field", message=str(error).strip('"'),
                field=f"{field_name}[{index}]")) from None
    return tuple(specs)


def _parse_overlay(text, field_name: str = "overlay"):
    if text is None:
        return None
    try:
        return parse_overlay(text)
    except (KeyError, ValueError) as error:
        raise ApiRequestError(ApiError(
            code="invalid-field", message=str(error).strip('"'),
            field=field_name)) from None


def _resolve_workload(llm: str, design: str, scenario: str, *, batch: int,
                      precision: str, input_tokens: int, output_tokens: int):
    """(model, chip config, scenario settings) shared by serve/fleet runs.

    Re-uses the CLI's exact error wording so the same mistake reads the
    same on every surface.
    """
    _check_choice(design, PREDEFINED_DESIGNS, "design", "design")
    try:
        model = get_model(llm)
    except KeyError as error:
        raise invalid_field("llm", str(error.args[0])) from None
    if not isinstance(model, LLMConfig):
        raise invalid_field(
            "llm", f"'{llm}' is not an LLM; serving is modelled "
                   "for LLM workloads")
    try:
        spec = get_scenario(scenario)
    except KeyError as error:
        raise invalid_field("scenario", str(error.args[0])) from None
    if not spec.supports(model):
        raise invalid_field("scenario",
                            f"scenario '{scenario}' does not support "
                            f"model '{model.name}'")
    _check_choice(precision, _PRECISIONS, "precision", "precision")
    try:
        settings = spec.make_settings(ScenarioKnobs(
            batch=batch, precision=Precision(precision),
            input_tokens=input_tokens, output_tokens=output_tokens))
    except (TypeError, ValueError) as error:
        raise ApiRequestError(ApiError(code="invalid-field",
                                       message=str(error))) from None
    return model, PREDEFINED_DESIGNS[design], settings


def _slo(ttft: float, tpot: float) -> SLO:
    try:
        return SLO(ttft_s=ttft, tpot_s=tpot)
    except (TypeError, ValueError) as error:
        raise invalid_field("slo_ttft", str(error)) from None


# ----------------------------------------------------------- strict decoding
def _decode_request(cls, payload: Mapping[str, Any]):
    """Strictly decode a payload into a request dataclass."""
    if not isinstance(payload, Mapping):
        raise ApiRequestError(ApiError(
            code="invalid-json",
            message=f"request body must be a JSON object, "
                    f"got {type(payload).__name__}"))
    data = dict(payload)
    kind = data.pop("kind", cls.kind)
    if kind != cls.kind:
        raise ApiRequestError(ApiError(
            code="invalid-kind",
            message=f"payload kind '{kind}' does not match "
                    f"'{cls.kind}'", field="kind"))
    version = data.pop("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ApiRequestError(ApiError(
            code="unsupported-schema-version",
            message=f"schema_version {version!r} is not supported "
                    f"(this build speaks {SCHEMA_VERSION})",
            field="schema_version"))
    names = {f.name for f in dataclasses.fields(cls)}
    for key in data:
        if key not in names:
            raise ApiRequestError(ApiError(
                code="unknown-field",
                message=f"unknown field '{key}' for kind "
                        f"'{cls.kind}'", field=str(key)))
    for f in dataclasses.fields(cls):
        required = (f.default is dataclasses.MISSING
                    and f.default_factory is dataclasses.MISSING)
        if required and f.name not in data:
            raise ApiRequestError(ApiError(
                code="missing-field",
                message=f"required field '{f.name}' is missing for "
                        f"kind '{cls.kind}'", field=f.name))
    return cls(**data)


class _Request:
    """Shared encode/decode surface of every request kind."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-primitive payload; ``from_dict`` round-trips it exactly."""
        payload: dict[str, Any] = {"kind": self.kind,
                                   "schema_version": SCHEMA_VERSION}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            payload[f.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]):
        """Strictly decode ``payload`` (see the module contract)."""
        return _decode_request(cls, payload)

    def _freeze(self, *names: str) -> None:
        """Coerce list-valued fields to tuples (frozen + JSON-friendly)."""
        for name in names:
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                try:
                    object.__setattr__(self, name, tuple(value))
                except TypeError:
                    raise invalid_field(name,
                                        f"{name} must be a list") from None


# ----------------------------------------------------------------- simulate
@dataclass(frozen=True)
class SimulateRequest(_Request):
    """One serving run: a single deployment, or a fleet when ``replicas > 1``.

    Defaults mirror ``repro-sim serve``.  ``shards`` is an execution hint
    (quiescence-boundary trace sharding; sharded == serial bit for bit)
    and deliberately never enters store keys.
    """

    kind: ClassVar[str] = "simulate"

    design: str = "design-a"
    llm: str = GPT3_30B.name
    scenario: str = "chat-serving"
    trace: str = "poisson"
    rate: float = 8.0
    requests: int = 200
    scheduler: str = "fcfs"
    replicas: int = 1
    router: str = "round-robin"
    autoscaler: str = "fixed"
    min_replicas: int = 1
    seed: int = 0
    max_batch: int = 32
    bucket: int = 256
    devices: int | None = None
    precision: str = Precision.INT8.value
    batch: int = 8
    input_tokens: int = 1024
    output_tokens: int = 512
    slo_ttft: float = 1.0
    slo_tpot: float = 0.1
    fidelity: str = "exact"
    faults: tuple[str, ...] = ()
    overlay: str | None = None
    #: Execution hint, not content: worker processes for exact
    #: single-deployment runs.  Excluded from fingerprints and stores.
    shards: int = 1

    def __post_init__(self) -> None:
        self._freeze("faults")
        self.resolve()
        spec = self.spec()
        _check_positive(self.shards, "shards")
        if self.shards > 1 and spec.fidelity == "fluid":
            raise invalid_field("shards",
                                "shards split the exact event loop; fluid "
                                "fidelity has no trace to shard")
        if self.shards > 1 and (spec.replicas > 1 or spec.faults):
            raise invalid_field("shards",
                                "shards apply to single-deployment runs; the "
                                "cluster path already interleaves replicas")

    def resolve(self):
        """(model, chip config, scenario settings) of this run."""
        _check_choice(self.scheduler, SCHEDULER_REGISTRY, "scheduler",
                      "scheduler")
        _check_choice(self.router, ROUTER_REGISTRY, "router", "router")
        _check_choice(self.autoscaler, AUTOSCALER_REGISTRY, "autoscaler",
                      "autoscaler")
        _check_choice(self.trace, TRACE_REGISTRY, "trace", "trace kind")
        return _resolve_workload(self.llm, self.design, self.scenario,
                                 batch=self.batch, precision=self.precision,
                                 input_tokens=self.input_tokens,
                                 output_tokens=self.output_tokens)

    def spec(self) -> ServingSpec:
        """The run's :class:`ServingSpec` (validated; chaos strings parsed)."""
        try:
            return ServingSpec(
                scheduler=self.scheduler, trace=self.trace,
                arrival_rate=self.rate, num_requests=self.requests,
                seed=self.seed, max_batch=self.max_batch,
                bucket_tokens=self.bucket, devices=self.devices,
                slo=_slo(self.slo_ttft, self.slo_tpot),
                replicas=self.replicas, router=self.router,
                autoscaler=self.autoscaler, min_replicas=self.min_replicas,
                faults=_parse_faults(self.faults),
                overlay=_parse_overlay(self.overlay),
                fidelity=self.fidelity)
        except (TypeError, ValueError) as error:
            raise ApiRequestError(ApiError(code="invalid-field",
                                           message=str(error))) from None


# -------------------------------------------------------------------- fleet
@dataclass(frozen=True)
class FleetRequest(_Request):
    """Size a replica fleet for an SLO at a target request rate.

    Defaults mirror ``repro-sim fleet``; ``rate`` is the one required
    field, exactly like the CLI flag.
    """

    kind: ClassVar[str] = "fleet"

    rate: float
    design: str = "design-a"
    llm: str = GPT3_30B.name
    scenario: str = "chat-serving"
    attainment: float = 0.95
    max_replicas: int = 16
    requests: int = 400
    trace: str = "poisson"
    scheduler: str = "fcfs"
    router: str = "least-outstanding-requests"
    max_batch: int = 32
    precision: str = Precision.INT8.value
    batch: int = 8
    input_tokens: int = 1024
    output_tokens: int = 512
    slo_ttft: float = 1.0
    slo_tpot: float = 0.1
    seed: int = 0
    fidelity: str = "exact"
    faults: tuple[str, ...] = ()
    overlay: str | None = None

    def __post_init__(self) -> None:
        self._freeze("faults")
        self.resolve()
        _check_positive(self.rate, "rate")
        _check_positive(self.max_replicas, "max_replicas")
        _check_positive(self.requests, "requests")
        if not isinstance(self.attainment, (int, float)) or \
                not 0 < self.attainment <= 1:
            raise invalid_field("attainment",
                                "attainment_target must be in (0, 1]")
        if self.fidelity not in ("exact", "fluid"):
            raise invalid_field("fidelity",
                                "fidelity must be 'exact' or 'fluid'")
        if self.fidelity == "fluid" and (self.faults or self.overlay):
            raise invalid_field("fidelity",
                                "fluid fidelity cannot replay faults or "
                                "overlays; chaos runs need the exact event "
                                "loop")
        _slo(self.slo_ttft, self.slo_tpot)
        _parse_faults(self.faults)
        _parse_overlay(self.overlay)

    def resolve(self):
        """(model, chip config, scenario settings) of this plan."""
        _check_choice(self.scheduler, SCHEDULER_REGISTRY, "scheduler",
                      "scheduler")
        _check_choice(self.router, ROUTER_REGISTRY, "router", "router")
        _check_choice(self.trace, TRACE_REGISTRY, "trace", "trace kind")
        return _resolve_workload(self.llm, self.design, self.scenario,
                                 batch=self.batch, precision=self.precision,
                                 input_tokens=self.input_tokens,
                                 output_tokens=self.output_tokens)


# -------------------------------------------------------------------- sweep
@dataclass(frozen=True)
class SweepRequest(_Request):
    """A scenario-grid sweep (defaults mirror ``repro-sim sweep``).

    ``workers`` is an execution hint (multiprocessing fan-out; parallel ==
    serial bit for bit) and never enters fingerprints.
    """

    kind: ClassVar[str] = "sweep"

    designs: tuple[str, ...] = tuple(sorted(PREDEFINED_DESIGNS))
    models: tuple[str, ...] = tuple(sorted(MODEL_REGISTRY))
    scenarios: tuple[str, ...] | None = None
    precisions: tuple[str, ...] = _PRECISIONS
    batches: tuple[int, ...] = (1, 8)
    device_counts: tuple[int, ...] = (1,)
    parallelism: str = "pipeline"
    input_tokens: int = 1024
    output_tokens: int = 512
    resolution: int = 512
    steps: int = 50
    schedulers: tuple[str, ...] = ()
    arrival_rates: tuple[float, ...] = ()
    trace: str = "poisson"
    trace_requests: int = 200
    routers: tuple[str, ...] = ()
    replica_counts: tuple[int, ...] = ()
    autoscaler: str = "fixed"
    seed: int = 0
    #: Execution hint, not content: worker processes for the sweep.
    workers: int | None = None

    def __post_init__(self) -> None:
        self._freeze("designs", "models", "scenarios", "precisions",
                     "batches", "device_counts", "schedulers",
                     "arrival_rates", "routers", "replica_counts")
        self.grid()
        if self.workers is not None:
            _check_positive(self.workers, "workers")

    def grid(self) -> SweepGrid:
        """The validated :class:`~repro.sweep.grid.SweepGrid` to evaluate."""
        designs = {}
        for name in self.designs:
            _check_choice(name, PREDEFINED_DESIGNS, "designs", "design")
            designs[name] = PREDEFINED_DESIGNS[name]
        for name in self.models:
            try:
                get_model(name)
            except KeyError as error:
                raise invalid_field("models", str(error.args[0])) from None
        for name in self.precisions:
            _check_choice(name, _PRECISIONS, "precisions", "precision")
        try:
            return SweepGrid(
                designs=designs, models=list(self.models),
                scenarios=(list(self.scenarios)
                           if self.scenarios is not None else None),
                precisions=tuple(Precision(p) for p in self.precisions),
                batches=self.batches, device_counts=self.device_counts,
                parallelism=self.parallelism,
                input_tokens=self.input_tokens,
                output_tokens=self.output_tokens,
                decode_kv_samples=2,
                image_resolution=self.resolution,
                sampling_steps=self.steps,
                schedulers=self.schedulers, arrival_rates=self.arrival_rates,
                serving_trace=self.trace,
                serving_requests=self.trace_requests,
                routers=self.routers, replica_counts=self.replica_counts,
                serving_autoscaler=self.autoscaler,
                seed=self.seed)
        except (KeyError, TypeError, ValueError) as error:
            raise ApiRequestError(ApiError(
                code="invalid-field",
                message=str(error).strip('"'))) from None


# ----------------------------------------------------------------- optimize
@dataclass(frozen=True)
class OptimizeRequest(_Request):
    """A Pareto co-design search (defaults mirror ``repro-sim optimize``)."""

    kind: ClassVar[str] = "optimize"

    llm: str = GPT3_30B.name
    designs: tuple[str, ...] = tuple(sorted(PREDEFINED_DESIGNS))
    precisions: tuple[str, ...] = (Precision.INT8.value,)
    schedulers: tuple[str, ...] = ("fcfs",)
    routers: tuple[str, ...] = ("round-robin",)
    autoscalers: tuple[str, ...] = ("fixed",)
    replica_counts: tuple[int, ...] = (1, 2, 4)
    max_batches: tuple[int, ...] = (32,)
    objectives: tuple[str, ...] = ("cost-per-million-tokens", "p99-ttft")
    constraints: tuple[str, ...] = ()
    strategy: str = "successive-halving"
    budget: int | None = None
    rate: float = 8.0
    requests: int = 200
    trace: str = "poisson"
    scenario: str = "chat-serving"
    input_tokens: int = 1024
    output_tokens: int = 512
    slo_ttft: float = 1.0
    slo_tpot: float = 0.1
    seed: int = 0
    capacity_bound: bool = True
    faults: tuple[str, ...] = ()
    overlay: str | None = None

    def __post_init__(self) -> None:
        self._freeze("designs", "precisions", "schedulers", "routers",
                     "autoscalers", "replica_counts", "max_batches",
                     "objectives", "constraints", "faults")
        self.resolve_model()
        self.objective_list()
        self.constraint_list()
        self.space()
        _check_choice(self.strategy, SEARCH_REGISTRY, "strategy",
                      "search strategy")
        _check_choice(self.trace, TRACE_REGISTRY, "trace", "trace kind")
        _check_positive(self.rate, "rate")
        _check_positive(self.requests, "requests")
        if self.budget is not None:
            _check_positive(self.budget, "budget")
        try:
            scenario = get_scenario(self.scenario)
        except KeyError as error:
            raise invalid_field("scenario", str(error.args[0])) from None
        if not scenario.supports(self.resolve_model()):
            raise invalid_field("scenario",
                                f"scenario '{self.scenario}' does not "
                                f"support model '{self.llm}'")
        _slo(self.slo_ttft, self.slo_tpot)
        _parse_faults(self.faults)
        _parse_overlay(self.overlay)

    def resolve_model(self) -> LLMConfig:
        """The search's LLM (optimisation prices serving fleets)."""
        try:
            model = get_model(self.llm)
        except KeyError as error:
            raise invalid_field("llm", str(error.args[0])) from None
        if not isinstance(model, LLMConfig):
            raise invalid_field(
                "llm", f"'{self.llm}' is not an LLM; co-design optimisation "
                       "prices serving fleets")
        return model

    def objective_list(self):
        try:
            return [get_objective(name) for name in self.objectives]
        except KeyError as error:
            raise invalid_field("objectives",
                                str(error.args[0]).strip('"')) from None

    def constraint_list(self):
        try:
            return [parse_constraint(text) for text in self.constraints]
        except (KeyError, ValueError) as error:
            raise invalid_field("constraints",
                                str(error).strip('"')) from None

    def space(self) -> DesignSpace:
        """The validated :class:`~repro.optimize.space.DesignSpace`."""
        try:
            return DesignSpace(
                designs=self.designs, precisions=self.precisions,
                schedulers=self.schedulers, routers=self.routers,
                autoscalers=self.autoscalers,
                replica_counts=self.replica_counts,
                max_batches=self.max_batches)
        except (KeyError, TypeError, ValueError) as error:
            raise ApiRequestError(ApiError(
                code="invalid-field",
                message=str(error).strip('"'))) from None


# ------------------------------------------------------- autoconfig preview
@dataclass(frozen=True)
class AutoconfigPreviewRequest(_Request):
    """Deterministic deployment-sizing analytics — zero simulations.

    Answers "what would it take to serve this model on this design at
    this rate" from the capacity model alone: footprint, minimum device
    count, KV budget and the fleet's capacity lower bound.
    """

    kind: ClassVar[str] = "autoconfig-preview"

    llm: str = GPT3_30B.name
    design: str = "design-a"
    rate: float = 8.0
    batch: int = 8
    input_tokens: int = 1024
    output_tokens: int = 512
    precision: str = Precision.INT8.value
    max_batch: int = 32
    scheduler: str = "fcfs"
    devices: int | None = None
    memory_utilisation: float = 0.9

    def __post_init__(self) -> None:
        _check_choice(self.design, PREDEFINED_DESIGNS, "design", "design")
        _check_choice(self.precision, _PRECISIONS, "precision", "precision")
        _check_choice(self.scheduler, SCHEDULER_REGISTRY, "scheduler",
                      "scheduler")
        try:
            model = get_model(self.llm)
        except KeyError as error:
            raise invalid_field("llm", str(error.args[0])) from None
        if not isinstance(model, LLMConfig):
            raise invalid_field(
                "llm", f"'{self.llm}' is not an LLM; deployment sizing is "
                       "modelled for LLM workloads")
        _check_positive(self.rate, "rate")
        _check_positive(self.batch, "batch")
        _check_positive(self.input_tokens, "input_tokens")
        _check_positive(self.output_tokens, "output_tokens")
        _check_positive(self.max_batch, "max_batch")
        if self.devices is not None:
            _check_positive(self.devices, "devices")
        if not isinstance(self.memory_utilisation, (int, float)) or \
                not 0 < self.memory_utilisation <= 1:
            raise invalid_field("memory_utilisation",
                                "memory_utilisation must be in (0, 1]")


#: kind -> request class, the gateway's routing table.
REQUEST_TYPES: dict[str, type] = {
    cls.kind: cls for cls in (SimulateRequest, FleetRequest, SweepRequest,
                              OptimizeRequest, AutoconfigPreviewRequest)
}


def request_from_dict(payload: Mapping[str, Any]):
    """Decode any request payload by its ``kind`` field."""
    if not isinstance(payload, Mapping):
        raise ApiRequestError(ApiError(
            code="invalid-json",
            message=f"request body must be a JSON object, "
                    f"got {type(payload).__name__}"))
    kind = payload.get("kind")
    if kind not in REQUEST_TYPES:
        known = ", ".join(sorted(REQUEST_TYPES))
        raise ApiRequestError(ApiError(
            code="invalid-kind",
            message=f"unknown request kind {kind!r}; choose one of: {known}",
            field="kind"))
    return REQUEST_TYPES[kind].from_dict(payload)
