"""The facade: one validated call per engine, one response shape each.

This is the single contract the CLI, the HTTP gateway and Python callers
share.  Each function takes a frozen request (see
:mod:`repro.api.requests`), an optional shared
:class:`~repro.sweep.store.ResultStore` and an optional telemetry sink,
runs the engine, and returns the matching response envelope with exact
cost accounting (``new_simulations``, ``store_hits``...).  Determinism is
inherited from the engines: the same request produces a byte-identical
response dict on every surface, and a warm store serves it with zero new
simulations.

Engine-side failures on *valid* requests (a model that does not fit the
deployment, an unwritable path) surface as
:class:`~repro.api.errors.ApiRequestError` with code ``engine-error`` and
the engine's own message, so every caller reports the same words.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.errors import ApiError, ApiRequestError
from repro.api.requests import (
    AutoconfigPreviewRequest,
    FleetRequest,
    OptimizeRequest,
    SimulateRequest,
    SweepRequest,
    _parse_faults,
    _parse_overlay,
    _slo,
    request_from_dict,
)
from repro.api.responses import (
    AutoconfigPreviewResponse,
    FleetResponse,
    OptimizeResponse,
    SimulateResponse,
    SweepResponse,
)
from repro.common import Precision
from repro.sweep.fingerprint import fingerprint

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.obs.telemetry import Telemetry
    from repro.sweep.store import ResultStore

#: Fields that tune execution, not content — excluded from the request
#: fingerprint so a sharded submission correlates with a serial one.
_EXECUTION_HINTS = ("shards", "workers")


def request_fingerprint(request) -> str:
    """Content fingerprint of a request (execution hints excluded)."""
    payload = {key: value for key, value in request.to_dict().items()
               if key not in _EXECUTION_HINTS}
    return fingerprint("repro-api/v1", payload)


def _engine_error(error: Exception) -> ApiRequestError:
    return ApiRequestError(ApiError(code="engine-error",
                                    message=str(error).strip('"')))


def _store_counts(store: "ResultStore | None", before: tuple[int, int]):
    if store is None:
        return 0, 0
    return store.stats.hits - before[0], store.stats.misses - before[1]


def _snapshot(store: "ResultStore | None") -> tuple[int, int]:
    return (store.stats.hits, store.stats.misses) if store is not None else (0, 0)


# ------------------------------------------------------------------ simulate
def simulate(request: SimulateRequest, *, store: "ResultStore | None" = None,
             telemetry: "Telemetry | None" = None) -> SimulateResponse:
    """Run one serving spec (single deployment, or a fleet when shaped so).

    Single-deployment reports are stored *with* their per-request rows
    (so ``--csv`` exports stay available warm); fleet reports follow the
    cluster store's row-free convention.  Either way a warm repeat is
    byte-identical to the cold run.
    """
    from repro.serving.cluster import (
        STORE_KIND as CLUSTER_STORE_KIND,
        cluster_run_key,
        simulate_cluster,
    )
    from repro.serving.simulator import (
        SERVING_STORE_KIND,
        serving_run_key,
        simulate_serving,
    )

    model, config, settings = request.resolve()
    spec = request.spec()
    fleet_run = spec.replicas > 1 or bool(spec.faults)
    served = False
    if store is not None:
        # Membership, not stats deltas: exact even when concurrent gateway
        # jobs share this store object.
        if fleet_run:
            key = (CLUSTER_STORE_KIND,
                   cluster_run_key(model, config, spec, settings))
        else:
            key = (SERVING_STORE_KIND,
                   serving_run_key(model, config, spec, settings))
        served = key in store
    try:
        if fleet_run:
            report = simulate_cluster(model, config, spec, settings,
                                      store=store, telemetry=telemetry)
            payload = report.to_dict(include_requests=False)
        else:
            report = simulate_serving(model, config, spec, settings,
                                      store=store, shards=request.shards,
                                      telemetry=telemetry)
            payload = report.to_dict()
    except (ValueError, OSError) as error:
        raise _engine_error(error) from None
    return SimulateResponse(
        fingerprint=request_fingerprint(request), served_from_store=served,
        new_simulations=0 if served else 1,
        store_hits=1 if served else 0,
        store_misses=0 if served or store is None else 1,
        fleet=fleet_run, report=payload)


# --------------------------------------------------------------------- fleet
def fleet(request: FleetRequest, *, store: "ResultStore | None" = None,
          telemetry: "Telemetry | None" = None) -> FleetResponse:
    """Size a replica fleet for the request's SLO at its target rate."""
    from repro.analysis.capacity import plan_fleet
    from repro.serving.trace import request_classes_from_settings

    model, config, settings = request.resolve()
    before = _snapshot(store)
    try:
        plan = plan_fleet(
            model, config, arrival_rate=request.rate,
            slo=_slo(request.slo_ttft, request.slo_tpot),
            request_classes=request_classes_from_settings(settings),
            attainment_target=request.attainment,
            max_replicas=request.max_replicas,
            num_requests=request.requests, seed=request.seed,
            trace_kind=request.trace, scheduler=request.scheduler,
            router=request.router, max_batch=request.max_batch,
            precision=Precision(request.precision),
            faults=_parse_faults(request.faults),
            overlay=_parse_overlay(request.overlay),
            fidelity=request.fidelity, store=store, settings=settings,
            telemetry=telemetry)
    except (ValueError, OSError) as error:
        raise _engine_error(error) from None
    hits, misses = _store_counts(store, before)
    simulated = misses if store is not None else len(plan.evaluations)
    payload = {"model": plan.model_name, "tpu": plan.tpu_name,
               "arrival_rate": plan.arrival_rate,
               "attainment_target": plan.attainment_target,
               "met": plan.met, "replicas": plan.replicas,
               "evaluations": [e.to_dict() for e in plan.evaluations]}
    return FleetResponse(
        fingerprint=request_fingerprint(request),
        served_from_store=simulated == 0 and hits > 0,
        new_simulations=simulated, store_hits=hits, store_misses=misses,
        plan=payload)


# --------------------------------------------------------------------- sweep
def sweep(request: SweepRequest, *, store: "ResultStore | None" = None,
          telemetry: "Telemetry | None" = None) -> SweepResponse:
    """Evaluate the request's scenario grid through the memoised engine."""
    from repro.sweep.engine import SweepEngine

    grid = request.grid()
    engine = SweepEngine(store=store, telemetry=telemetry)
    try:
        rows = engine.sweep(grid, workers=request.workers)
    except (ValueError, OSError) as error:
        raise _engine_error(error) from None
    stats = engine.stats
    return SweepResponse(
        fingerprint=request_fingerprint(request),
        served_from_store=stats.simulations == 0 and stats.store_hits > 0,
        new_simulations=stats.simulations,
        store_hits=stats.store_hits, store_misses=stats.store_misses,
        rows=tuple(row.to_dict() for row in rows),
        stats={"simulations": stats.simulations,
               "point_hits": stats.point_hits,
               "point_misses": stats.point_misses,
               "graph_hits": stats.graph_hits,
               "graph_misses": stats.graph_misses,
               "store_hits": stats.store_hits,
               "store_misses": stats.store_misses})


# ------------------------------------------------------------------ optimize
def optimize(request: OptimizeRequest, *, store: "ResultStore | None" = None,
             telemetry: "Telemetry | None" = None) -> OptimizeResponse:
    """Run the Pareto co-design search the request describes."""
    from repro.optimize import CodesignOptimizer

    model = request.resolve_model()
    before = _snapshot(store)
    try:
        optimizer = CodesignOptimizer(
            model, request.space(), objectives=request.objective_list(),
            constraints=request.constraint_list(), strategy=request.strategy,
            arrival_rate=request.rate, num_requests=request.requests,
            scenario=request.scenario, input_tokens=request.input_tokens,
            output_tokens=request.output_tokens, trace=request.trace,
            slo=_slo(request.slo_ttft, request.slo_tpot), seed=request.seed,
            budget=request.budget, store=store,
            use_capacity_bound=request.capacity_bound,
            faults=_parse_faults(request.faults),
            overlay=_parse_overlay(request.overlay), telemetry=telemetry)
        frontier = optimizer.run()
    except (KeyError, ValueError, OSError) as error:
        raise _engine_error(error) from None
    _, misses = _store_counts(store, before)
    simulated = frontier.short_runs + frontier.full_runs
    return OptimizeResponse(
        fingerprint=request_fingerprint(request),
        served_from_store=simulated == 0 and frontier.store_served > 0,
        new_simulations=simulated, store_hits=frontier.store_served,
        store_misses=misses, frontier=frontier.to_dict())


# -------------------------------------------------------- autoconfig preview
def autoconfig_preview(request: AutoconfigPreviewRequest, *,
                       store: "ResultStore | None" = None,
                       telemetry: "Telemetry | None" = None,
                       ) -> AutoconfigPreviewResponse:
    """Deterministic deployment sizing from the capacity model alone.

    Never simulates and never touches the store — the accounting header
    is all zeros by construction.
    """
    from repro.analysis.capacity import (
        fleet_lower_bound,
        llm_footprint,
        plan_capacity,
        serving_kv_budget,
    )
    from repro.core.designs import PREDEFINED_DESIGNS
    from repro.workloads.registry import get_model

    del store, telemetry  # uniform signature; analytics have no run to cache
    model = get_model(request.llm)
    config = PREDEFINED_DESIGNS[request.design]
    precision = Precision(request.precision)
    try:
        footprint = llm_footprint(
            model, batch=request.batch,
            context_tokens=request.input_tokens + request.output_tokens,
            precision=precision)
        plan = plan_capacity(footprint, config,
                             memory_utilisation=request.memory_utilisation)
        devices = request.devices if request.devices is not None else plan.min_devices
        kv_budget = serving_kv_budget(
            model, config, devices=devices, max_batch=request.max_batch,
            precision=precision,
            memory_utilisation=request.memory_utilisation)
        lower_bound = fleet_lower_bound(
            model, config, arrival_rate=request.rate,
            scheduler=request.scheduler, max_batch=request.max_batch,
            precision=precision, devices=request.devices,
            memory_utilisation=request.memory_utilisation)
    except ValueError as error:
        raise _engine_error(error) from None
    preview = {
        "model": model.name, "design": request.design,
        "precision": request.precision,
        "footprint": {"weight_bytes": footprint.weight_bytes,
                      "kv_cache_bytes": footprint.kv_cache_bytes,
                      "activation_bytes": footprint.activation_bytes,
                      "total_gib": footprint.total_gib},
        "capacity": {"fits_single_device": plan.fits_single_device,
                     "min_devices": plan.min_devices,
                     "suggested_parallelism": plan.suggested_parallelism},
        "deployment": {"devices": devices, "max_batch": request.max_batch,
                       "kv_budget_bytes": kv_budget,
                       "kv_budget_fits": kv_budget > 0},
        "fleet": {"arrival_rate": request.rate,
                  "lower_bound_replicas": lower_bound},
    }
    return AutoconfigPreviewResponse(
        fingerprint=request_fingerprint(request), served_from_store=False,
        new_simulations=0, store_hits=0, store_misses=0, preview=preview)


#: kind -> facade function, the dispatch table ``run`` and the gateway use.
HANDLERS = {
    "simulate": simulate,
    "fleet": fleet,
    "sweep": sweep,
    "optimize": optimize,
    "autoconfig-preview": autoconfig_preview,
}


def run(request, *, store: "ResultStore | None" = None,
        telemetry: "Telemetry | None" = None):
    """Dispatch any request object (or raw payload dict) to its engine."""
    if isinstance(request, dict):
        request = request_from_dict(request)
    handler = HANDLERS.get(getattr(request, "kind", None))
    if handler is None:
        raise ApiRequestError(ApiError(
            code="invalid-kind",
            message=f"cannot dispatch object of type "
                    f"{type(request).__name__}; expected an API request"))
    return handler(request, store=store, telemetry=telemetry)
