"""The unified simulation API: one facade behind every surface.

Every way of running this repository's engines — the ``repro-sim`` CLI,
the HTTP gateway (:mod:`repro.gateway`) and direct Python calls — goes
through this package.  A run is a frozen request dataclass
(:class:`SimulateRequest`, :class:`FleetRequest`, :class:`SweepRequest`,
:class:`OptimizeRequest`, :class:`AutoconfigPreviewRequest`) that
validates at construction, round-trips JSON exactly and carries a
``schema_version``; the matching facade call returns a frozen response
envelope with the result payload plus exact cost accounting
(``new_simulations``, ``store_hits``...).  Failures are structured
:class:`ApiError` values carried by :class:`ApiRequestError`, rendered
identically on every surface.

Typical usage::

    from repro.api import SimulateRequest, simulate
    from repro.sweep.store import ResultStore

    store = ResultStore("runs.jsonl")
    response = simulate(SimulateRequest(rate=12.0, requests=100),
                        store=store)
    print(response.report["ttft"]["p99_s"], response.new_simulations)

The same request posted as JSON to a gateway's ``POST /v1/simulate``
produces the byte-identical response body, and a second submission —
from any client sharing the store — is served with zero new simulations.
"""

from repro.api.errors import (
    ERROR_CODES,
    ApiError,
    ApiRequestError,
    invalid_field,
)
from repro.api.facade import (
    HANDLERS,
    autoconfig_preview,
    fleet,
    optimize,
    request_fingerprint,
    run,
    simulate,
    sweep,
)
from repro.api.requests import (
    REQUEST_TYPES,
    SCHEMA_VERSION,
    AutoconfigPreviewRequest,
    FleetRequest,
    OptimizeRequest,
    SimulateRequest,
    SweepRequest,
    request_from_dict,
)
from repro.api.responses import (
    RESPONSE_TYPES,
    AutoconfigPreviewResponse,
    FleetResponse,
    OptimizeResponse,
    SimulateResponse,
    SweepResponse,
    response_from_dict,
)

__all__ = [
    "ERROR_CODES",
    "ApiError",
    "ApiRequestError",
    "invalid_field",
    "HANDLERS",
    "autoconfig_preview",
    "fleet",
    "optimize",
    "request_fingerprint",
    "run",
    "simulate",
    "sweep",
    "REQUEST_TYPES",
    "SCHEMA_VERSION",
    "AutoconfigPreviewRequest",
    "FleetRequest",
    "OptimizeRequest",
    "SimulateRequest",
    "SweepRequest",
    "request_from_dict",
    "RESPONSE_TYPES",
    "AutoconfigPreviewResponse",
    "FleetResponse",
    "OptimizeResponse",
    "SimulateResponse",
    "SweepResponse",
    "response_from_dict",
]
