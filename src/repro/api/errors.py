"""The one structured error shape every API surface speaks.

Validation failures, unknown routes, unusable payloads — whether they
surface in the Python facade, on the CLI or over HTTP, they are all the
same frozen :class:`ApiError`: a machine-readable ``code``, a
human-readable ``message`` (reusing the engines' own wording, so
``parse_constraint``-style explanations survive the trip), and the
``field`` path that caused it when one exists.  The CLI prints the
rendered form; the gateway returns the dict form as JSON with an
appropriate 4xx status; library users catch :class:`ApiRequestError` and
read ``.error``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

#: The closed set of error codes the facade and gateway emit.  Codes are
#: contract, not prose: clients branch on them, so adding one is an API
#: change (document it in CONTRIBUTING.md).
ERROR_CODES = (
    "invalid-json",            # request body is not a JSON object
    "invalid-kind",            # payload kind does not name a request type
    "unsupported-schema-version",
    "unknown-field",           # strict decoding: payload key not in schema
    "missing-field",           # required field absent from the payload
    "invalid-field",           # field present but fails validation
    "unknown-route",           # no handler for the HTTP path
    "method-not-allowed",      # route exists, verb does not
    "unknown-job",             # job id not in the queue
    "job-not-finished",        # result fetched before the job is done
    "job-cancelled",           # result fetched for a cancelled job
    "job-failed",              # result fetched for a failed job
    "engine-error",            # a valid request the engines cannot serve
)


@dataclass(frozen=True)
class ApiError:
    """One structured API failure: code, message, and the field at fault."""

    code: str
    message: str
    #: Dotted path of the offending request field (``"spec.rate"``,
    #: ``"faults[1]"``); ``None`` when the error is not about one field.
    field: str | None = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown ApiError code '{self.code}' "
                             f"(expected one of {', '.join(ERROR_CODES)})")
        if not self.message:
            raise ValueError("ApiError needs a message")

    def render(self) -> str:
        """The CLI's one-line rendering of the error."""
        suffix = f" (field: {self.field})" if self.field else ""
        return f"{self.code}: {self.message}{suffix}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form returned as JSON by the gateway."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ApiError":
        """Rebuild an error from its ``to_dict`` payload."""
        return cls(code=str(payload["code"]), message=str(payload["message"]),
                   field=payload.get("field"))


class ApiRequestError(Exception):
    """Raised by the facade when a request cannot be validated or served.

    Carries the structured :class:`ApiError`; ``str()`` is its rendered
    form, so an uncaught one still reads like the classic CLI messages.
    """

    def __init__(self, error: ApiError) -> None:
        super().__init__(error.render())
        self.error = error


def invalid_field(field: str, message: str) -> ApiRequestError:
    """Shorthand for the most common failure: a field that fails validation."""
    return ApiRequestError(ApiError(code="invalid-field", message=message,
                                    field=field))
