"""A SCALE-Sim-compatible front end over the analytical systolic model.

SCALE-Sim [26] consumes a hardware configuration (array dimensions, SRAM
sizes, dataflow) and a layer topology file (one GEMM/conv layer per row) and
reports per-layer cycles, utilisation and SRAM traffic.  The paper uses it to
evaluate the baseline systolic MXU.  This module re-creates that front end on
top of :mod:`repro.systolic.dataflows` so that the baseline evaluation flow of
the paper can be reproduced verbatim (including topology-file style input),
while the chip-level simulator uses the richer :class:`DigitalMXU` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import Precision, ceil_div
from repro.systolic.dataflows import Dataflow, systolic_gemm_cycles


@dataclass(frozen=True)
class ScaleSimConfig:
    """Hardware configuration in SCALE-Sim terms."""

    array_rows: int = 128
    array_cols: int = 128
    ifmap_sram_kb: int = 1024
    filter_sram_kb: int = 1024
    ofmap_sram_kb: int = 1024
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY
    precision: Precision = Precision.INT8

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("array dimensions must be positive")
        for name in ("ifmap_sram_kb", "filter_sram_kb", "ofmap_sram_kb"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class GemmLayerSpec:
    """One row of a SCALE-Sim GEMM topology file."""

    name: str
    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(f"layer '{self.name}' has non-positive dimensions")


@dataclass(frozen=True)
class ScaleSimLayerReport:
    """Per-layer results in the style of SCALE-Sim's COMPUTE_REPORT."""

    name: str
    total_cycles: int
    stall_cycles: int
    overall_utilization: float
    mapping_efficiency: float
    sram_ifmap_reads: int
    sram_filter_reads: int
    sram_ofmap_writes: int


@dataclass
class ScaleSimReport:
    """Aggregated results over a topology sweep."""

    config: ScaleSimConfig
    layers: list[ScaleSimLayerReport] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Sum of per-layer cycles."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def average_utilization(self) -> float:
        """Cycle-weighted average utilisation across the topology."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        weighted = sum(layer.overall_utilization * layer.total_cycles for layer in self.layers)
        return weighted / total


def _mapping_efficiency(m: int, k: int, n: int, rows: int, cols: int, dataflow: Dataflow) -> float:
    """Fraction of the array's MACs occupied by useful work across folds."""
    if dataflow is Dataflow.OUTPUT_STATIONARY:
        row_dim, col_dim = m, n
    else:
        row_dim, col_dim = k, n
    row_folds = ceil_div(row_dim, rows)
    col_folds = ceil_div(col_dim, cols)
    used = row_dim * col_dim
    allocated = row_folds * rows * col_folds * cols
    return used / allocated


def run_scale_sim(config: ScaleSimConfig, topology: list[GemmLayerSpec]) -> ScaleSimReport:
    """Run the analytical model over every layer of a GEMM topology."""
    report = ScaleSimReport(config=config)
    for layer in topology:
        breakdown = systolic_gemm_cycles(
            layer.m, layer.k, layer.n, config.array_rows, config.array_cols, config.dataflow)
        operand_bytes = config.precision.bytes
        ifmap_reads = layer.m * layer.k * operand_bytes * ceil_div(layer.n, config.array_cols)
        filter_reads = layer.k * layer.n * operand_bytes
        ofmap_writes = layer.m * layer.n * config.precision.accumulator_bytes
        stall_cycles = breakdown.weight_load_cycles + breakdown.fill_drain_cycles
        report.layers.append(ScaleSimLayerReport(
            name=layer.name,
            total_cycles=breakdown.total_cycles,
            stall_cycles=min(stall_cycles, breakdown.total_cycles),
            overall_utilization=breakdown.utilization,
            mapping_efficiency=_mapping_efficiency(
                layer.m, layer.k, layer.n, config.array_rows, config.array_cols, config.dataflow),
            sram_ifmap_reads=ifmap_reads,
            sram_filter_reads=filter_reads,
            sram_ofmap_writes=ofmap_writes,
        ))
    return report


def transformer_gemm_topology(batch: int, seq_len: int, d_model: int, d_ff: int,
                              name_prefix: str = "layer") -> list[GemmLayerSpec]:
    """Convenience generator: the GEMM topology of one Transformer layer.

    This mirrors the topology files the paper feeds to SCALE-Sim for the
    standalone MXU evaluation (QKV generation, output projection, both FFN
    matmuls), with the token dimension flattened over the batch.
    """
    tokens = batch * seq_len
    return [
        GemmLayerSpec(f"{name_prefix}_qkv", tokens, d_model, 3 * d_model),
        GemmLayerSpec(f"{name_prefix}_proj", tokens, d_model, d_model),
        GemmLayerSpec(f"{name_prefix}_ffn1", tokens, d_model, d_ff),
        GemmLayerSpec(f"{name_prefix}_ffn2", tokens, d_ff, d_model),
    ]
