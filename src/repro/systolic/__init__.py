"""Digital systolic-array MXU substrate (the TPUv4i baseline matrix unit).

The paper evaluates its baseline with SCALE-Sim [26] over a Gemmini-generated
128×128 systolic array.  This package re-implements the SCALE-Sim analytical
cycle model (:mod:`repro.systolic.dataflows`, :mod:`repro.systolic.scalesim`)
and wraps it, together with the energy/area calibration, into a
:class:`repro.systolic.systolic_array.DigitalMXU` component model that the
chip-level simulator instantiates.
"""

from repro.systolic.dataflows import Dataflow, systolic_gemm_cycles, SystolicCycleBreakdown
from repro.systolic.systolic_array import SystolicArrayConfig, DigitalMXU, MXUComputeResult
from repro.systolic.scalesim import ScaleSimConfig, ScaleSimReport, run_scale_sim

__all__ = [
    "Dataflow",
    "systolic_gemm_cycles",
    "SystolicCycleBreakdown",
    "SystolicArrayConfig",
    "DigitalMXU",
    "MXUComputeResult",
    "ScaleSimConfig",
    "ScaleSimReport",
    "run_scale_sim",
]
