"""Component model of the digital systolic MXU used in the baseline TPUv4i.

A :class:`DigitalMXU` bundles the analytical dataflow cycle model with the
energy and area calibration so that the chip-level simulator can ask a single
object three questions about a (possibly tiled) GEMM: how many cycles, how
much energy, and how much operand traffic it generates at the MXU boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import Precision
from repro.hw.area import AreaModel
from repro.hw.energy import EnergyBudget, EnergyModel
from repro.systolic.dataflows import Dataflow, SystolicCycleBreakdown, systolic_gemm_cycles
from repro.workloads.operators import MatMulOp


@dataclass(frozen=True)
class SystolicArrayConfig:
    """Static configuration of one digital systolic MXU.

    Attributes
    ----------
    rows, cols:
        Physical MAC-array dimensions (TPUv4i: 128×128).
    stationary_dataflow:
        Dataflow used for matmuls whose weight operand is a true layer weight
        (reusable, pre-loadable through the weight FIFO).
    dynamic_dataflow:
        Dataflow used for matmuls whose "weight" operand is produced at run
        time (attention ``Q×Kᵀ``, ``S×Vᵀ``) and therefore cannot be staged in
        the weight FIFO ahead of time.
    frequency_ghz:
        Clock frequency; kept here so a standalone MXU can report TOPS.
    """

    rows: int = 128
    cols: int = 128
    stationary_dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY_DB
    dynamic_dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY
    frequency_ghz: float = 1.05

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput of the array."""
        return self.rows * self.cols

    @property
    def peak_tops(self) -> float:
        """Peak INT8 TOPS (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.frequency_ghz * 1e9 / 1e12


@dataclass(frozen=True)
class MXUComputeResult:
    """Result of executing one GEMM tile on a matrix unit.

    The same result type is produced by :class:`DigitalMXU` and by
    :class:`repro.cim.mxu.CIMMXU`, so the mapping engine and the chip model
    are agnostic to which matrix-unit flavour is installed.
    """

    cycles: int
    macs: int
    utilization: float
    energy: EnergyBudget
    input_bytes: int
    weight_bytes: int
    output_bytes: int
    breakdown: SystolicCycleBreakdown | None = None

    @property
    def total_operand_bytes(self) -> int:
        """Bytes of operands crossing the MXU boundary for this tile."""
        return self.input_bytes + self.weight_bytes + self.output_bytes


@dataclass
class DigitalMXU:
    """A digital weight-stationary systolic matrix unit (baseline MXU)."""

    config: SystolicArrayConfig = field(default_factory=SystolicArrayConfig)
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    area_model: AreaModel = field(default_factory=AreaModel)

    @property
    def name(self) -> str:
        """Short descriptor used in reports."""
        return f"digital-{self.config.rows}x{self.config.cols}"

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput of this MXU."""
        return self.config.macs_per_cycle

    @staticmethod
    def supported_operator_types() -> tuple[type, ...]:
        """Capability declaration consumed by the execution-unit registry."""
        return (MatMulOp,)

    @property
    def area_mm2(self) -> float:
        """Silicon area of this MXU."""
        return self.area_model.digital_mxu_area(self.config.rows, self.config.cols)

    @property
    def leakage_power_w(self) -> float:
        """Static power of this MXU, proportional to its MAC count."""
        reference = self.energy_model.digital_mxu_leakage_power()
        reference_macs = self.energy_model.spec.systolic_macs_per_cycle
        return reference * self.macs_per_cycle / reference_macs

    def gemm(self, m: int, k: int, n: int, precision: Precision = Precision.INT8,
             stationary_weights: bool = True, instances: int = 1) -> MXUComputeResult:
        """Execute ``instances`` ``[M,K]×[K,N]`` GEMM tiles and return cycles + energy.

        Parameters
        ----------
        m, k, n:
            GEMM dimensions of each tile as seen by this MXU.
        precision:
            Operand precision (INT8 or BF16); both run at the same MACs/cycle
            on the TPUv4i MXU, BF16 costs more energy per MAC.
        stationary_weights:
            Whether the weight operand can be staged through the weight FIFO
            (layer weights) or must be streamed like an activation
            (attention score/value matrices).
        instances:
            Independent batch instances executed back to back; a MAC-grid
            systolic array cannot pack small instances spatially, so the cost
            is strictly sequential.
        """
        if instances <= 0:
            raise ValueError("instances must be positive")
        dataflow = (self.config.stationary_dataflow if stationary_weights
                    else self.config.dynamic_dataflow)
        breakdown = systolic_gemm_cycles(m, k, n, self.config.rows, self.config.cols, dataflow)
        total_cycles = breakdown.total_cycles * instances
        total_macs = breakdown.macs * instances

        energy = EnergyBudget()
        mac_energy = self.energy_model.digital_mac_energy(precision.bits) * total_macs
        energy.add_dynamic("mxu", mac_energy)
        weight_bytes = k * n * precision.bytes
        if not stationary_weights:
            weight_bytes *= instances
        energy.add_dynamic("mxu", self.energy_model.digital_weight_load_energy(weight_bytes))
        leakage_seconds = total_cycles / (self.config.frequency_ghz * 1e9)
        energy.add_leakage("mxu", self.leakage_power_w * leakage_seconds)

        input_bytes = instances * m * k * precision.bytes
        output_bytes = instances * m * n * precision.accumulator_bytes
        return MXUComputeResult(
            cycles=total_cycles,
            macs=total_macs,
            utilization=breakdown.utilization,
            energy=energy,
            input_bytes=input_bytes,
            weight_bytes=weight_bytes,
            output_bytes=output_bytes,
            breakdown=breakdown,
        )

    def idle_energy(self, cycles: float) -> EnergyBudget:
        """Leakage energy burned while the MXU sits idle for ``cycles``."""
        if cycles < 0:
            raise ValueError("idle cycles must be non-negative")
        budget = EnergyBudget()
        seconds = cycles / (self.config.frequency_ghz * 1e9)
        budget.add_leakage("mxu", self.leakage_power_w * seconds)
        return budget

    def energy_efficiency_tops_per_watt(self, precision: Precision = Precision.INT8) -> float:
        """Sustained TOPS/W at full utilisation (reproduces Table II)."""
        macs_per_second = self.macs_per_cycle * self.config.frequency_ghz * 1e9
        dynamic_power = self.energy_model.digital_mac_energy(precision.bits) * macs_per_second
        total_power = dynamic_power + self.leakage_power_w
        return (2.0 * macs_per_second / 1e12) / total_power

    def area_efficiency_tops_per_mm2(self) -> float:
        """Peak TOPS per mm² (reproduces Table II)."""
        return self.config.peak_tops / self.area_mm2
