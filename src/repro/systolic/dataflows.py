"""Analytical cycle models for systolic-array dataflows (SCALE-Sim style).

A GEMM ``[M, K] × [K, N]`` is executed on an ``R × C`` array of MAC units by
folding the ``K`` dimension over the ``R`` physical rows and the ``N``
dimension over the ``C`` physical columns (weight-stationary mapping), or by
folding ``M`` over rows and ``N`` over columns (output-stationary mapping).

Three dataflow variants are modelled:

``WEIGHT_STATIONARY``
    The classic SCALE-Sim weight-stationary model: each fold pays the full
    weight-fill latency (``R`` cycles), the input streaming time (``M``
    cycles) and the array traversal / drain skew (``R + C − 2`` cycles).
    This matches how the paper evaluates matmuls whose "weight" operand is a
    runtime activation (attention ``Q×Kᵀ`` / ``S×Vᵀ``), where the weight FIFO
    cannot hide the reload because the operand has no reuse across calls.

``WEIGHT_STATIONARY_DB``
    Weight-stationary with a double-buffered weight path (the TPU MXU weight
    FIFO): the next fold's weights are pushed while the current fold streams,
    so the steady-state fold cost is ``max(M, R)`` and the fill/drain skew is
    paid only once.  This is the favourable model used for layer-weight GEMMs.

``OUTPUT_STATIONARY``
    Each fold keeps an ``R × C`` block of outputs resident and streams ``K``
    pairs of operands; fold cost ``K + R + C − 2``.

All three reduce to the same asymptotic throughput of ``R·C`` MACs/cycle for
large, well-aligned GEMMs; they differ exactly where the paper's analysis
differs — short/skinny (GEMV-like) operands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common import ceil_div


class Dataflow(enum.Enum):
    """Supported systolic-array dataflows."""

    WEIGHT_STATIONARY = "ws"
    WEIGHT_STATIONARY_DB = "ws_db"
    OUTPUT_STATIONARY = "os"


@dataclass(frozen=True)
class SystolicCycleBreakdown:
    """Cycle-count breakdown of one GEMM executed on a systolic array.

    Attributes
    ----------
    total_cycles:
        End-to-end cycles for the GEMM on a single array.
    fill_drain_cycles:
        Cycles spent filling the pipeline and draining the skewed wavefront.
    weight_load_cycles:
        Cycles spent (visibly, i.e. not hidden by double buffering) loading
        weights into the array.
    streaming_cycles:
        Cycles during which input rows are streamed into the array.
    folds:
        Number of (row-fold, column-fold) passes over the array.
    macs:
        Useful multiply-accumulate operations performed.
    utilization:
        Achieved MACs/cycle divided by the array's peak MACs/cycle.
    """

    total_cycles: int
    fill_drain_cycles: int
    weight_load_cycles: int
    streaming_cycles: int
    folds: int
    macs: int
    utilization: float


def _validate_gemm(m: int, k: int, n: int, rows: int, cols: int) -> None:
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError(f"GEMM dimensions must be positive, got M={m}, K={k}, N={n}")
    if rows <= 0 or cols <= 0:
        raise ValueError(f"array dimensions must be positive, got {rows}×{cols}")


def weight_stationary_cycles(m: int, k: int, n: int, rows: int, cols: int,
                             double_buffered: bool) -> SystolicCycleBreakdown:
    """Cycle count for a weight-stationary mapping of an ``[M,K]×[K,N]`` GEMM."""
    _validate_gemm(m, k, n, rows, cols)
    row_folds = ceil_div(k, rows)
    col_folds = ceil_div(n, cols)
    folds = row_folds * col_folds
    macs = m * k * n

    skew = rows + cols - 2
    if double_buffered:
        # The first fold's weights are loaded up front; each subsequent
        # fold's load is hidden behind the previous fold's streaming whenever
        # M >= R, otherwise the weight port (one row per cycle) limits the
        # fold rate.  The last fold's streaming and the drain skew remain.
        steady_fold = max(m, rows)
        weight_visible = rows + max(0, (folds - 1) * (rows - m) if m < rows else 0)
        streaming = folds * m
        total = rows + (folds - 1) * steady_fold + m + skew
    else:
        per_fold = rows + m + skew
        weight_visible = folds * rows
        streaming = folds * m
        total = folds * per_fold

    peak = rows * cols
    utilization = macs / (total * peak) if total > 0 else 0.0
    return SystolicCycleBreakdown(
        total_cycles=int(total),
        fill_drain_cycles=int(skew if double_buffered else folds * skew),
        weight_load_cycles=int(weight_visible),
        streaming_cycles=int(streaming),
        folds=folds,
        macs=macs,
        utilization=utilization,
    )


def output_stationary_cycles(m: int, k: int, n: int, rows: int, cols: int) -> SystolicCycleBreakdown:
    """Cycle count for an output-stationary mapping of an ``[M,K]×[K,N]`` GEMM."""
    _validate_gemm(m, k, n, rows, cols)
    row_folds = ceil_div(m, rows)
    col_folds = ceil_div(n, cols)
    folds = row_folds * col_folds
    macs = m * k * n

    skew = rows + cols - 2
    per_fold = k + skew
    total = folds * per_fold
    peak = rows * cols
    utilization = macs / (total * peak) if total > 0 else 0.0
    return SystolicCycleBreakdown(
        total_cycles=int(total),
        fill_drain_cycles=int(folds * skew),
        weight_load_cycles=0,
        streaming_cycles=int(folds * k),
        folds=folds,
        macs=macs,
        utilization=utilization,
    )


def systolic_gemm_cycles(m: int, k: int, n: int, rows: int, cols: int,
                         dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY) -> SystolicCycleBreakdown:
    """Dispatch to the cycle model for the requested dataflow."""
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return weight_stationary_cycles(m, k, n, rows, cols, double_buffered=False)
    if dataflow is Dataflow.WEIGHT_STATIONARY_DB:
        return weight_stationary_cycles(m, k, n, rows, cols, double_buffered=True)
    if dataflow is Dataflow.OUTPUT_STATIONARY:
        return output_stationary_cycles(m, k, n, rows, cols)
    raise ValueError(f"unsupported dataflow: {dataflow}")
