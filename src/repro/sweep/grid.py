"""Sweep points and grids: the scenario space the engine evaluates.

A :class:`SweepPoint` is one fully specified evaluation: a TPU design, a
generative model, the inference settings (batch, precision, token counts or
image resolution), and optionally a multi-device deployment (device count and
parallelism strategy).  A :class:`SweepGrid` is the cartesian product the
paper's evaluation sections are built from — Table IV / Fig. 7 is
(9 CIM designs + baseline) × (GPT-3-30B, DiT-XL/2); Fig. 8 adds the device
axis — widened here to every registered model, both numeric precisions and
multiple batch sizes, as the roadmap's scenario-diversity goal demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence

from repro.common import Precision
from repro.core.config import TPUConfig
from repro.core.designs import PREDEFINED_DESIGNS
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig
from repro.workloads.registry import MODEL_REGISTRY, get_model


@dataclass(frozen=True)
class SweepPoint:
    """One (design × model × settings × deployment) evaluation."""

    design: str
    config: TPUConfig
    model: LLMConfig | DiTConfig
    settings: LLMInferenceSettings | DiTInferenceSettings
    devices: int = 1
    parallelism: str = "pipeline"

    def __post_init__(self) -> None:
        if not self.design:
            raise ValueError("sweep point needs a design label")
        if self.devices <= 0:
            raise ValueError("devices must be positive")
        if self.parallelism not in ("pipeline", "tensor"):
            raise ValueError(f"unknown parallelism '{self.parallelism}' "
                             "(expected 'pipeline' or 'tensor')")
        if isinstance(self.model, LLMConfig) != isinstance(self.settings, LLMInferenceSettings):
            raise ValueError(
                f"model '{self.model.name}' and settings type "
                f"{type(self.settings).__name__} do not match")

    @property
    def kind(self) -> str:
        """Workload family: ``"llm"`` or ``"dit"``."""
        return "llm" if isinstance(self.model, LLMConfig) else "dit"

    @property
    def workload(self) -> str:
        """Model name of the point."""
        return self.model.name

    @property
    def precision(self) -> Precision:
        """Numeric precision of the point."""
        return self.settings.precision

    @property
    def batch(self) -> int:
        """Batch size of the point."""
        return self.settings.batch

    @property
    def scenario(self) -> str:
        """Human-readable settings summary used in tables and exports."""
        if isinstance(self.settings, LLMInferenceSettings):
            return (f"in={self.settings.input_tokens} out={self.settings.output_tokens}")
        return (f"{self.settings.image_resolution}px steps={self.settings.sampling_steps}")


def make_point(design: str, config: TPUConfig, model: LLMConfig | DiTConfig,
               precision: Precision = Precision.INT8, batch: int = 8, *,
               input_tokens: int = 1024, output_tokens: int = 512,
               decode_kv_samples: int = 4, image_resolution: int = 512,
               sampling_steps: int = 50, devices: int = 1,
               parallelism: str = "pipeline") -> SweepPoint:
    """Build a sweep point with the settings type matching the model kind."""
    settings: LLMInferenceSettings | DiTInferenceSettings
    if isinstance(model, LLMConfig):
        settings = LLMInferenceSettings(batch=batch, input_tokens=input_tokens,
                                        output_tokens=output_tokens, precision=precision,
                                        decode_kv_samples=decode_kv_samples)
    else:
        settings = DiTInferenceSettings(batch=batch, image_resolution=image_resolution,
                                        sampling_steps=sampling_steps, precision=precision)
    return SweepPoint(design=design, config=config, model=model, settings=settings,
                      devices=devices, parallelism=parallelism)


@dataclass
class SweepGrid:
    """A cartesian scenario grid expanded into an ordered list of points.

    The expansion order is deterministic (designs, then models, then
    precisions, batches and device counts), which is what makes serial and
    parallel sweeps comparable row-for-row.
    """

    designs: Mapping[str, TPUConfig] = field(
        default_factory=lambda: dict(PREDEFINED_DESIGNS))
    models: Sequence[str] = field(default_factory=lambda: sorted(MODEL_REGISTRY))
    precisions: Sequence[Precision] = (Precision.INT8,)
    batches: Sequence[int] = (8,)
    device_counts: Sequence[int] = (1,)
    parallelism: str = "pipeline"
    # LLM scenario knobs.
    input_tokens: int = 1024
    output_tokens: int = 512
    decode_kv_samples: int = 4
    # DiT scenario knobs.
    image_resolution: int = 512
    sampling_steps: int = 50

    def __post_init__(self) -> None:
        if not self.designs:
            raise ValueError("sweep grid needs at least one design")
        if not self.models:
            raise ValueError("sweep grid needs at least one model")
        for attr in ("precisions", "batches", "device_counts"):
            if not getattr(self, attr):
                raise ValueError(f"sweep grid needs at least one entry in '{attr}'")

    def points(self) -> list[SweepPoint]:
        """Expand the grid into its ordered list of sweep points."""
        return list(self)

    def __iter__(self) -> Iterator[SweepPoint]:
        for design, config in self.designs.items():
            for model_name in self.models:
                model = get_model(model_name)
                for precision in self.precisions:
                    for batch in self.batches:
                        for devices in self.device_counts:
                            yield make_point(
                                design, config, model, precision, batch,
                                input_tokens=self.input_tokens,
                                output_tokens=self.output_tokens,
                                decode_kv_samples=self.decode_kv_samples,
                                image_resolution=self.image_resolution,
                                sampling_steps=self.sampling_steps,
                                devices=devices, parallelism=self.parallelism)

    def __len__(self) -> int:
        return (len(self.designs) * len(self.models) * len(self.precisions)
                * len(self.batches) * len(self.device_counts))

    def with_updates(self, **kwargs: object) -> "SweepGrid":
        """Return a copy of the grid with the given fields replaced."""
        return replace(self, **kwargs)


def default_grid(**overrides: object) -> SweepGrid:
    """The default scenario space: every registered model on every predefined
    design, at INT8 and BF16, across small and serving batch sizes.

    This widens the paper's Table IV grid (GPT-3-30B and DiT-XL/2 only, INT8,
    batch 8) to the full model registry — GPT-3-175B, Llama-2-7B/13B and
    DiT-XL/2 included — which is the scenario space the ``repro-sim sweep``
    subcommand explores.  BF16 is the 16-bit format the chip model supports
    (the CIM macro loads 8-bit mantissas either way).
    """
    grid = SweepGrid(precisions=(Precision.INT8, Precision.BF16), batches=(1, 8))
    return grid.with_updates(**overrides) if overrides else grid
