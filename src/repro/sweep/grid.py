"""Sweep points and grids: the scenario space the engine evaluates.

A :class:`SweepPoint` is one fully specified evaluation: a TPU design, a
generative model, a registered scenario, the inference settings (batch,
precision, token counts or image resolution), and optionally a multi-device
deployment (device count and parallelism strategy).  A :class:`SweepGrid` is
the cartesian product the paper's evaluation sections are built from —
Table IV / Fig. 7 is (9 CIM designs + baseline) × (GPT-3-30B, DiT-XL/2);
Fig. 8 adds the device axis — widened here to every registered model, both
numeric precisions, multiple batch sizes and every registered scenario, as
the roadmap's scenario-diversity goal demands.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field, replace

from repro.common import Precision
from repro.core.config import TPUConfig
from repro.core.designs import PREDEFINED_DESIGNS
from repro.serving.faults import FaultSpec
from repro.serving.spec import ServingSpec
from repro.serving.trace import OverlaySpec
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig
from repro.workloads.registry import (
    MODEL_REGISTRY,
    get_model,
    get_scenario,
    model_kind,
    scenario_for,
)
from repro.workloads.scenario import ScenarioKnobs


@dataclass(frozen=True)
class SweepPoint:
    """One (design × model × scenario × settings × deployment) evaluation.

    ``scenario`` names an entry of the scenario registry; an empty string
    (the default) resolves to the model's default scenario, so pre-scenario
    call sites keep working unchanged.  An attached ``serving`` spec turns
    the point into a discrete-event serving run (trace + scheduler + SLO)
    instead of an analytical request-group evaluation; the scenario then
    contributes the request mix and precision.
    """

    design: str
    config: TPUConfig
    model: object
    settings: object
    devices: int = 1
    parallelism: str = "pipeline"
    scenario: str = ""
    serving: ServingSpec | None = None

    def __post_init__(self) -> None:
        if not self.design:
            raise ValueError("sweep point needs a design label")
        if self.devices <= 0:
            raise ValueError("devices must be positive")
        if self.parallelism not in ("pipeline", "tensor"):
            raise ValueError(f"unknown parallelism '{self.parallelism}' "
                             "(expected 'pipeline' or 'tensor')")
        spec = (get_scenario(self.scenario) if self.scenario
                else scenario_for(self.model))
        if not self.scenario:
            object.__setattr__(self, "scenario", spec.name)
        spec.check(self.model, self.settings)
        if self.serving is not None:
            if not isinstance(self.model, LLMConfig):
                raise ValueError("serving sweep points are modelled for LLM "
                                 f"workloads, not '{self.workload}'")
            if self.devices != 1:
                raise ValueError("serving sweep points plan their own deployment; "
                                 "set devices on the ServingSpec, not the point")

    @property
    def spec(self):
        """The resolved scenario spec of the point."""
        return get_scenario(self.scenario)

    @property
    def kind(self) -> str:
        """Workload family of the model (see
        :func:`repro.workloads.registry.model_kind`)."""
        return model_kind(self.model)

    @property
    def workload(self) -> str:
        """Model name of the point."""
        return self.model.name

    @property
    def precision(self) -> Precision:
        """Numeric precision of the point."""
        return self.settings.precision

    @property
    def batch(self) -> int:
        """Batch size of the point."""
        return self.settings.batch

    @property
    def settings_summary(self) -> str:
        """Human-readable settings summary used in tables and exports."""
        summary = self.spec.summarize(self.settings)
        if self.serving is not None:
            summary = f"{summary} {self.serving.summary()}"
        return summary


def make_point(design: str, config: TPUConfig, model: LLMConfig | DiTConfig,
               precision: Precision = Precision.INT8, batch: int = 8, *,
               input_tokens: int = 1024, output_tokens: int = 512,
               decode_kv_samples: int = 4, image_resolution: int = 512,
               sampling_steps: int = 50, devices: int = 1,
               parallelism: str = "pipeline", scenario: str = "",
               serving: ServingSpec | None = None) -> SweepPoint:
    """Build a sweep point whose settings come from the scenario's knob adapter."""
    spec = get_scenario(scenario) if scenario else scenario_for(model)
    knobs = ScenarioKnobs(batch=batch, precision=precision,
                          input_tokens=input_tokens, output_tokens=output_tokens,
                          decode_kv_samples=decode_kv_samples,
                          image_resolution=image_resolution,
                          sampling_steps=sampling_steps)
    return SweepPoint(design=design, config=config, model=model,
                      settings=spec.make_settings(knobs),
                      devices=devices, parallelism=parallelism, scenario=spec.name,
                      serving=serving)


@dataclass
class SweepGrid:
    """A cartesian scenario grid expanded into an ordered list of points.

    The expansion order is deterministic (designs, then models, scenarios,
    precisions, batches, device counts and serving axes), which is what
    makes serial and parallel sweeps comparable row-for-row.  ``scenarios``
    of ``None`` runs each model under its default scenario; an explicit
    tuple runs every listed scenario whose capability covers the model
    (incompatible pairs are skipped, so e.g. ``chat-serving`` quietly passes
    over DiT models).

    Setting ``schedulers`` *and* ``arrival_rates`` turns the grid into a
    **serving grid**: every point carries a
    :class:`~repro.serving.spec.ServingSpec` crossing the two axes, so one
    grid answers "which scheduler at which load on which design".  Serving
    is modelled for LLM workloads; non-LLM models are skipped, the device
    axis must stay at ``(1,)`` because serving runs plan their own
    deployment, and the batch axis collapses to its first entry (request
    concurrency comes from the scheduler, not the settings batch, so extra
    batch values would only duplicate identical simulations).

    A serving grid additionally crosses the **fleet axes**: ``routers`` ×
    ``replica_counts`` (each under the single ``serving_autoscaler``
    policy), so one grid also answers "which routing policy at which fleet
    size".  Both default to the degenerate single-replica fleet and are
    only meaningful on serving grids.

    The **chaos axes** cross in the same way: every entry of ``fault_sets``
    (a tuple of :class:`~repro.serving.faults.FaultSpec` sources, with
    ``()`` meaning fault-free) × every entry of ``overlays`` (an
    :class:`~repro.serving.trace.OverlaySpec` arrival drift, with ``None``
    meaning the unmodified trace).  Chaos axes ride on serving grids only,
    and they travel inside the :class:`ServingSpec`, so the sweep engine's
    content-addressed caching fingerprints them like any other axis.
    """

    designs: Mapping[str, TPUConfig] = field(
        default_factory=lambda: dict(PREDEFINED_DESIGNS))
    models: Sequence[str] = field(default_factory=lambda: sorted(MODEL_REGISTRY))
    scenarios: Sequence[str] | None = None
    precisions: Sequence[Precision] = (Precision.INT8,)
    batches: Sequence[int] = (8,)
    device_counts: Sequence[int] = (1,)
    parallelism: str = "pipeline"
    # LLM scenario knobs.
    input_tokens: int = 1024
    output_tokens: int = 512
    decode_kv_samples: int = 4
    # DiT scenario knobs.
    image_resolution: int = 512
    sampling_steps: int = 50
    # Serving axes (both empty = analytical grid, both set = serving grid).
    schedulers: Sequence[str] = ()
    arrival_rates: Sequence[float] = ()
    serving_trace: str = "poisson"
    serving_requests: int = 200
    # Fleet axes of a serving grid (empty = single-replica, no fleet).
    routers: Sequence[str] = ()
    replica_counts: Sequence[int] = ()
    serving_autoscaler: str = "fixed"
    # Chaos axes of a serving grid: fault sources × arrival overlays.
    fault_sets: Sequence[Sequence[FaultSpec]] = ((),)
    overlays: Sequence[OverlaySpec | None] = (None,)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.designs:
            raise ValueError("sweep grid needs at least one design")
        if not self.models:
            raise ValueError("sweep grid needs at least one model")
        if self.scenarios is not None and not self.scenarios:
            raise ValueError("scenarios must be None (defaults) or non-empty")
        for attr in ("precisions", "batches", "device_counts"):
            if not getattr(self, attr):
                raise ValueError(f"sweep grid needs at least one entry in '{attr}'")
        if bool(self.schedulers) != bool(self.arrival_rates):
            raise ValueError("serving grids need both schedulers and arrival_rates")
        if self.schedulers and tuple(self.device_counts) != (1,):
            raise ValueError("serving sweep points plan their own deployment; "
                             "keep device_counts at (1,)")
        if (self.routers or self.replica_counts) and not self.schedulers:
            raise ValueError("fleet axes (routers / replica_counts) need a "
                             "serving grid: set schedulers and arrival_rates")
        if any(count <= 0 for count in self.replica_counts):
            raise ValueError("replica_counts must be positive")
        if not self.fault_sets or not self.overlays:
            raise ValueError("fault_sets / overlays must be non-empty "
                             "(use ((),) / (None,) for the healthy axis)")
        chaos = (any(tuple(faults) for faults in self.fault_sets)
                 or any(overlay is not None for overlay in self.overlays))
        if chaos and not self.schedulers:
            raise ValueError("chaos axes (fault_sets / overlays) need a "
                             "serving grid: set schedulers and arrival_rates")

    @property
    def is_serving(self) -> bool:
        """Whether this grid carries the serving axes."""
        return bool(self.schedulers)

    def serving_specs(self) -> list[ServingSpec | None]:
        """The serving axes of the grid (``[None]`` for analytical grids).

        A replica count of 1 is physically identical under every router and
        autoscaler (the point runs the plain single-deployment simulator),
        so such specs are normalised to the default policies and
        deduplicated — ``routers=(a, b)`` with ``replica_counts=(1, 2)``
        yields one single-replica spec plus one two-replica spec per router,
        not duplicate rows.
        """
        if not self.is_serving:
            return [None]
        routers = tuple(self.routers) or ("round-robin",)
        replica_counts = tuple(self.replica_counts) or (1,)
        specs: list[ServingSpec] = []
        seen: set[ServingSpec] = set()
        for scheduler in self.schedulers:
            for rate in self.arrival_rates:
                for router in routers:
                    for count in replica_counts:
                        fleet = ({"replicas": count, "router": router,
                                  "autoscaler": self.serving_autoscaler}
                                 if count > 1 else {})
                        for faults in self.fault_sets:
                            for overlay in self.overlays:
                                spec = ServingSpec(
                                    scheduler=scheduler,
                                    trace=self.serving_trace,
                                    arrival_rate=rate,
                                    num_requests=self.serving_requests,
                                    seed=self.seed, faults=tuple(faults),
                                    overlay=overlay, **fleet)
                                if spec not in seen:
                                    seen.add(spec)
                                    specs.append(spec)
        return specs

    def scenarios_for(self, model: LLMConfig | DiTConfig) -> list[str]:
        """The scenario names this grid runs the model under."""
        if self.is_serving and not isinstance(model, LLMConfig):
            return []
        if self.scenarios is None:
            return [scenario_for(model).name]
        return [name for name in self.scenarios if get_scenario(name).supports(model)]

    def points(self) -> list[SweepPoint]:
        """Expand the grid into its ordered list of sweep points."""
        return list(self)

    def _batch_axis(self) -> Sequence[int]:
        """The effective batch axis (collapsed for serving grids)."""
        return tuple(self.batches)[:1] if self.is_serving else self.batches

    def __iter__(self) -> Iterator[SweepPoint]:
        serving_specs = self.serving_specs()
        for design, config in self.designs.items():
            for model_name in self.models:
                model = get_model(model_name)
                for scenario in self.scenarios_for(model):
                    for precision in self.precisions:
                        for batch in self._batch_axis():
                            for devices in self.device_counts:
                                for serving in serving_specs:
                                    yield make_point(
                                        design, config, model, precision, batch,
                                        input_tokens=self.input_tokens,
                                        output_tokens=self.output_tokens,
                                        decode_kv_samples=self.decode_kv_samples,
                                        image_resolution=self.image_resolution,
                                        sampling_steps=self.sampling_steps,
                                        devices=devices, parallelism=self.parallelism,
                                        scenario=scenario, serving=serving)

    def __len__(self) -> int:
        model_scenarios = sum(len(self.scenarios_for(get_model(name)))
                              for name in self.models)
        return (len(self.designs) * model_scenarios * len(self.precisions)
                * len(self._batch_axis()) * len(self.device_counts)
                * len(self.serving_specs()))

    def with_updates(self, **kwargs: object) -> "SweepGrid":
        """Return a copy of the grid with the given fields replaced."""
        return replace(self, **kwargs)


def default_grid(**overrides: object) -> SweepGrid:
    """The default scenario space: every registered model on every predefined
    design, at INT8 and BF16, across small and serving batch sizes.

    This widens the paper's Table IV grid (GPT-3-30B and DiT-XL/2 only, INT8,
    batch 8) to the full model registry — GPT-3-175B, Llama-2-7B/13B,
    Mixtral-8x7B and DiT-XL/2 included — which is the scenario space the
    ``repro-sim sweep`` subcommand explores.  BF16 is the 16-bit format the
    chip model supports (the CIM macro loads 8-bit mantissas either way).
    """
    grid = SweepGrid(precisions=(Precision.INT8, Precision.BF16), batches=(1, 8))
    return grid.with_updates(**overrides) if overrides else grid
