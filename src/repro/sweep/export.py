"""Deterministic JSON/CSV export of structured result rows.

Both encoders are byte-deterministic for equal inputs (fixed field order,
``repr``-faithful float formatting), so "a parallel sweep equals a serial
sweep" can be asserted on the exported bytes, and exported artefacts diff
cleanly between runs.

The encoders are *row-type generic*: any iterable of frozen dataclasses
works (sweep rows, serving reports, per-request metrics...).  Rows encode
through their ``to_dict`` hook when they define one, falling back to
``dataclasses.asdict``; CSV column order is the row dataclass's field
order, exactly as for :class:`~repro.sweep.engine.SweepResult`.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import pathlib
from collections.abc import Iterable, Sequence
from typing import Any

from repro.sweep.engine import SweepResult

#: Column order of the sweep-row export (that dataclass's field order);
#: other row types derive their columns the same way.
FIELDNAMES: tuple[str, ...] = tuple(
    field.name for field in dataclasses.fields(SweepResult))


def _row_dict(row: Any) -> dict[str, object]:
    """A row's export dict: its ``to_dict`` hook, or the dataclass fields."""
    to_dict = getattr(row, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    raise TypeError(f"cannot export row of type {type(row).__name__}: "
                    "expected a dataclass or a to_dict() hook")


def fieldnames_of(row_type: type) -> tuple[str, ...]:
    """The CSV column order of a row dataclass (its field order)."""
    return tuple(field.name for field in dataclasses.fields(row_type))


def _fieldnames_for(rows: Sequence[Any]) -> tuple[str, ...]:
    """CSV column order: the first row's dataclass field order."""
    if not rows:
        return FIELDNAMES
    first = rows[0]
    if dataclasses.is_dataclass(first) and not isinstance(first, type):
        return fieldnames_of(type(first))
    return tuple(_row_dict(first))


def to_json(results: Iterable[Any], indent: int | None = 2) -> str:
    """Encode rows as a JSON array of objects (stable key order)."""
    payload = [_row_dict(row) for row in results]
    return json.dumps(payload, indent=indent)


def to_csv(results: Iterable[Any],
           fieldnames: Sequence[str] | None = None) -> str:
    """Encode rows as CSV with a header row.

    ``fieldnames`` pins the column set explicitly — pass it (e.g. via
    :func:`fieldnames_of`) when the row collection may be empty, where no
    row type is available to derive the header from.
    """
    rows = list(results)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=fieldnames if fieldnames is not None
        else _fieldnames_for(rows),
        lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(_row_dict(row))
    return buffer.getvalue()


def write_json(results: Sequence[Any], path: str | pathlib.Path) -> pathlib.Path:
    """Write the JSON encoding to ``path`` and return the path."""
    path = pathlib.Path(path)
    path.write_text(to_json(results) + "\n", encoding="utf-8")
    return path


def write_csv(results: Sequence[Any], path: str | pathlib.Path,
              fieldnames: Sequence[str] | None = None) -> pathlib.Path:
    """Write the CSV encoding to ``path`` and return the path."""
    path = pathlib.Path(path)
    path.write_text(to_csv(results, fieldnames=fieldnames), encoding="utf-8")
    return path
