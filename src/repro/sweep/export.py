"""Deterministic JSON/CSV export of sweep result rows.

Both encoders are byte-deterministic for equal inputs (fixed field order,
``repr``-faithful float formatting), so "a parallel sweep equals a serial
sweep" can be asserted on the exported bytes, and exported artefacts diff
cleanly between runs.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import pathlib
from typing import Iterable, Sequence

from repro.sweep.engine import SweepResult

#: Column order of both export formats (the dataclass field order).
FIELDNAMES: tuple[str, ...] = tuple(
    field.name for field in dataclasses.fields(SweepResult))


def to_json(results: Iterable[SweepResult], indent: int | None = 2) -> str:
    """Encode rows as a JSON array of objects (stable key order)."""
    payload = [row.to_dict() for row in results]
    return json.dumps(payload, indent=indent)


def to_csv(results: Iterable[SweepResult]) -> str:
    """Encode rows as CSV with a header row."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDNAMES, lineterminator="\n")
    writer.writeheader()
    for row in results:
        writer.writerow(row.to_dict())
    return buffer.getvalue()


def write_json(results: Sequence[SweepResult], path: str | pathlib.Path) -> pathlib.Path:
    """Write the JSON encoding to ``path`` and return the path."""
    path = pathlib.Path(path)
    path.write_text(to_json(results) + "\n", encoding="utf-8")
    return path


def write_csv(results: Sequence[SweepResult], path: str | pathlib.Path) -> pathlib.Path:
    """Write the CSV encoding to ``path`` and return the path."""
    path = pathlib.Path(path)
    path.write_text(to_csv(results), encoding="utf-8")
    return path
