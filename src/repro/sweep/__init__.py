"""Parallel, memoised scenario-sweep engine.

The sweep package generalises the paper's evaluation grids — Table IV /
Fig. 7's design-space exploration and Fig. 8's multi-TPU scaling — into one
subsystem: describe a grid of (TPU design × model × inference settings ×
precision × batch × device count) points, hand it to a
:class:`~repro.sweep.engine.SweepEngine`, and get structured, exportable
result rows back.  Repeated work is de-duplicated by content-addressed
caching and independent points can fan out over worker processes.

Typical usage::

    from repro.sweep import SweepEngine, default_grid, to_csv

    engine = SweepEngine()
    rows = engine.sweep(default_grid(), workers=4)
    print(to_csv(rows))
"""

from repro.sweep.cache import CacheStats, CachingInferenceSimulator, ResultCache
from repro.sweep.engine import SweepEngine, SweepResult, SweepStats, point_key
from repro.sweep.export import to_csv, to_json, write_csv, write_json
from repro.sweep.fingerprint import canonicalize, fingerprint
from repro.sweep.grid import SweepGrid, SweepPoint, default_grid, make_point
from repro.sweep.store import STORE_VERSION, ResultStore

__all__ = [
    "ResultStore",
    "STORE_VERSION",
    "CacheStats",
    "CachingInferenceSimulator",
    "ResultCache",
    "SweepEngine",
    "SweepResult",
    "SweepStats",
    "point_key",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
    "canonicalize",
    "fingerprint",
    "SweepGrid",
    "SweepPoint",
    "default_grid",
    "make_point",
]
