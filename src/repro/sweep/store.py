"""Persistent on-disk result store: fingerprint-keyed JSONL memoisation.

The in-process caches of :mod:`repro.sweep.cache` make repeated points free
*within* one engine; this module makes them ~free *across* processes and
runs.  A :class:`ResultStore` is an append-only JSONL file mapping
``(kind, fingerprint)`` to a JSON payload — one record per line::

    {"v": 1, "kind": "sweep-result", "key": "3fe1...", "value": {...}}

Design points, stated explicitly:

* **Content-addressed.**  Keys are the same SHA-256 fingerprints the
  in-memory caches use (:mod:`repro.sweep.fingerprint`), so an entry is
  valid for exactly the configuration that produced it — there is no
  staleness to manage, only growth.  ``kind`` namespaces the payload shape
  (sweep rows vs. cluster reports) so a key collision across shapes is
  structurally impossible and the file stays greppable.
* **Version-gated invalidation.**  Every record carries the store schema
  version (:data:`STORE_VERSION`).  Records written under a different
  version are skipped on load — bump the version whenever the *meaning* of
  stored payloads changes (cost-model semantics, fingerprint inputs, row
  schema), and old files degrade gracefully into cold caches instead of
  serving wrong numbers.  The rule is documented in CONTRIBUTING.md.
* **Append-only and crash-tolerant.**  Writes append whole lines; loading
  tolerates a torn final line (a crashed writer) and unknown/corrupt lines
  by skipping them.  Re-puts of the same key append a newer record; the
  *last* valid record wins on load, so the file never needs rewriting.
* **Safe under concurrent writers.**  One store object may be shared by
  many threads (the gateway's job workers all hit the multi-tenant cache):
  an internal lock serialises appends and index/stat updates, and each
  append is a single whole-line write, so interleaved puts can never tear
  or interleave partial records.  Separate *processes* appending to one
  file interleave whole lines too (POSIX ``O_APPEND`` semantics for
  single-write lines), which loading already tolerates by design.
* **JSON round-trip exactness.**  Floats serialise via ``repr`` semantics
  (Python's ``json``), which round-trips IEEE-754 doubles exactly — a
  store-served row is bit-for-bit the row that was computed.

Both :class:`~repro.sweep.engine.SweepEngine` (whole sweep-point rows) and
:func:`repro.serving.cluster.simulate_cluster` (fleet reports) honour a
store, which is what makes repeated/resumed co-design searches
(``repro-sim optimize --store``) perform zero new simulations.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import threading
from collections.abc import Iterator, Mapping
from typing import TYPE_CHECKING, Any

from repro.sweep.cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Telemetry

logger = logging.getLogger(__name__)

#: Schema version of stored payloads.  Bump when stored values change
#: meaning (not when new kinds are added); older records are then ignored.
STORE_VERSION = 1


def decode_dataclass(cls: type, payload: Mapping[str, Any]) -> Any:
    """Construct a (flat) dataclass from a stored payload.

    The one decode policy every store kind shares: unknown keys are
    ignored (a store written by a newer minor schema still loads where
    possible), missing required fields raise ``TypeError`` — which callers
    treat as a store miss, not an error.
    """
    names = {field.name for field in dataclasses.fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in names})


class ResultStore:
    """A persistent ``(kind, key) -> JSON payload`` store backed by JSONL.

    The whole file is indexed into memory on open (entries are small result
    rows, not simulation inputs), so lookups after construction are plain
    dictionary gets.  ``stats`` counts hits and misses exactly like the
    in-memory :class:`~repro.sweep.cache.ResultCache`, so tests and
    benchmarks can assert "the warm search performed zero new simulations".
    """

    def __init__(self, path: str | os.PathLike[str] | pathlib.Path, *,
                 version: int = STORE_VERSION,
                 telemetry: "Telemetry | None" = None) -> None:
        self.path = pathlib.Path(path)
        self.version = version
        self.stats = CacheStats()
        #: Optional telemetry sink mirroring ``stats`` as live counters
        #: (``store.hit`` / ``store.miss`` / ``store.put``); assignable
        #: after construction too — the CLI attaches it where the store
        #: object is built far from the traced run.
        self.telemetry = telemetry
        #: Serialises appends, index updates and stat counts so one store
        #: object can back many threads (the gateway's worker pool).
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str], Any] = {}
        #: Records present in the file under a different schema version.
        self.skipped_versions = 0
        #: Malformed/torn lines tolerated while loading.
        self.skipped_corrupt = 0
        self._load()
        if self.skipped_corrupt or self.skipped_versions:
            logger.warning(
                "store %s: skipped %d corrupt and %d differently-versioned "
                "record(s) on load", self.path, self.skipped_corrupt,
                self.skipped_versions)

    # ----------------------------------------------------------------- loading
    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                version = record["v"]
                kind = record["kind"]
                key = record["key"]
                value = record["value"]
            except (json.JSONDecodeError, KeyError, TypeError):
                self.skipped_corrupt += 1
                continue
            if version != self.version:
                self.skipped_versions += 1
                continue
            self._entries[(str(kind), str(key))] = value

    # ----------------------------------------------------------------- lookups
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, kind_key: tuple[str, str]) -> bool:
        return tuple(kind_key) in self._entries

    def keys(self) -> Iterator[tuple[str, str]]:
        """The stored ``(kind, key)`` pairs."""
        return iter(self._entries)

    def get(self, kind: str, key: str) -> Any | None:
        """The stored payload, or ``None`` on a miss (hit/miss counted)."""
        with self._lock:
            value = self._entries.get((kind, key))
            if value is None:
                self.stats.misses += 1
                if self.telemetry is not None:
                    self.telemetry.count("store.miss")
                return None
            self.stats.hits += 1
            if self.telemetry is not None:
                self.telemetry.count("store.hit")
            return value

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store a JSON-serialisable payload and append it to the file.

        Thread-safe: the append, the in-memory index update and the
        telemetry count happen under the store lock, and the record is
        written as one whole line — N threads hammering one store produce
        exactly N parseable lines.  Concurrent writers in *other processes*
        interleave whole lines too; the last record of a key wins on the
        next load.
        """
        encoded = json.dumps({"v": self.version, "kind": kind, "key": key,
                              "value": value}, separators=(",", ":"))
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(encoded + "\n")
            self._entries[(kind, key)] = value
            if self.telemetry is not None:
                self.telemetry.count("store.put")
