"""Deterministic content fingerprints for sweep memoisation.

The sweep engine memoises simulation results by *content*, not by object
identity: two sweep points that describe the same chip running the same
operator graph must map to the same cache entry, in the same process, in a
worker process, or in a later run.  That rules out Python's built-in
``hash()`` (salted per process for strings) and ``id()``-based schemes.

Instead every cacheable object — a :class:`~repro.core.config.TPUConfig`, an
:class:`~repro.workloads.graph.OperatorGraph`, a settings dataclass — is
reduced to a canonical JSON-serialisable structure (dataclasses become
``[class name, [field, value] ...]`` lists, enums become their class and
value) and the SHA-256 digest of its compact JSON encoding is the key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serialisable structure.

    Supported inputs are the building blocks of the simulator's value types:
    primitives, enums, (frozen) dataclasses, and lists/tuples/dicts thereof.
    Dict keys are sorted so insertion order never leaks into the fingerprint.

    Raises
    ------
    TypeError
        If ``obj`` (or something nested inside it) is not canonicalisable.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips floats exactly and is stable across platforms.
        return ["float", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.value]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [[f.name, canonicalize(getattr(obj, f.name))]
                  for f in dataclasses.fields(obj)]
        return ["dataclass", type(obj).__name__, fields]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonicalize(item) for item in obj]]
    if isinstance(obj, dict):
        items = sorted(((str(key), canonicalize(value)) for key, value in obj.items()),
                       key=lambda pair: pair[0])
        return ["map", [[key, value] for key, value in items]]
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


def fingerprint(*objs: Any) -> str:
    """SHA-256 hex digest of the canonical form of the given objects.

    Multiple arguments are fingerprinted as a tuple, so ``fingerprint(a, b)``
    differs from ``fingerprint((a, b), ())`` only in spelling, and
    ``fingerprint(config, graph)`` is the one true key of a simulation.
    """
    canonical = canonicalize(list(objs))
    encoded = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
