"""Content-addressed result caches and the caching inference simulator.

Two cache levels back the sweep engine:

* a **graph cache** mapping ``fingerprint(TPUConfig, OperatorGraph)`` to the
  simulated :class:`~repro.core.results.GraphResult` — the unit of actual
  simulation work.  Every graph evaluation in a sweep flows through it, so
  e.g. the TPUv4i baseline prefill layer is simulated once no matter how many
  sweep points, device counts or report tables reference it;
* a **point cache** mapping a whole sweep point's fingerprint to its finished
  :class:`~repro.sweep.engine.SweepResult` row, so re-running a sweep (or a
  sweep whose grid repeats a point) does no simulation at all.

Both are instances of :class:`ResultCache`, which counts hits and misses so
tests and benchmarks can assert "the cached re-sweep simulated nothing".
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.core.config import TPUConfig
from repro.core.results import GraphResult
from repro.core.simulator import InferenceSimulator
from repro.sweep.fingerprint import fingerprint
from repro.workloads.graph import OperatorGraph


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counters."""
        return CacheStats(hits=self.hits, misses=self.misses)


class ResultCache:
    """A content-addressed store with hit/miss accounting.

    Keys are fingerprint strings (see :mod:`repro.sweep.fingerprint`); values
    are whatever the caller computes.  ``misses`` therefore counts exactly the
    number of times the compute function actually ran.
    """

    def __init__(self) -> None:
        self._entries: dict[str, Any] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any:
        """Return the cached value for ``key`` (KeyError if absent)."""
        return self._entries[key]

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        value = compute()
        self._entries[key] = value
        return value

    def put(self, key: str, value: Any) -> None:
        """Store a value without touching the hit/miss counters.

        Used to merge entries computed elsewhere (e.g. in a worker process);
        those simulations are accounted for by the worker, not re-counted here.
        """
        self._entries[key] = value

    def merge(self, entries: Iterable[tuple[str, Any]]) -> None:
        """Merge externally computed ``(key, value)`` entries into the cache."""
        for key, value in entries:
            self._entries[key] = value

    def entries(self) -> dict[str, Any]:
        """A shallow copy of the stored entries (for shipping to a merger)."""
        return dict(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.stats = CacheStats()


class CachingInferenceSimulator(InferenceSimulator):
    """An :class:`InferenceSimulator` that memoises graph evaluations.

    Every ``simulate_*`` helper of the base class funnels graph execution
    through :meth:`run_graph`, so overriding it here is sufficient to memoise
    end-to-end LLM inference, DiT sampling and the multi-device models alike.
    The cache may be shared between simulators of *different* chips: the key
    covers the full :class:`TPUConfig`, so entries never collide.
    """

    def __init__(self, tpu_config: TPUConfig, cache: ResultCache | None = None) -> None:
        super().__init__(tpu_config)
        self.cache = cache if cache is not None else ResultCache()
        self._config_key = fingerprint(tpu_config)

    def graph_key(self, graph: OperatorGraph) -> str:
        """The content key of running ``graph`` on this simulator's chip."""
        return fingerprint(self._config_key, graph)

    def run_graph(self, graph: OperatorGraph) -> GraphResult:
        """Evaluate a graph, serving repeats from the shared cache."""
        return self.cache.get_or_compute(self.graph_key(graph),
                                         lambda: self.model.run_graph(graph))
