"""The sweep engine: memoised, optionally parallel scenario-grid evaluation.

:class:`SweepEngine` evaluates arbitrary collections of
:class:`~repro.sweep.grid.SweepPoint` objects and returns one structured
:class:`SweepResult` row per point, in input order.  Three properties make it
the substrate for every sweep-shaped study in the repository (Table IV /
Fig. 7 exploration, Fig. 8 multi-TPU scaling, the widened ``repro-sim sweep``
scenario space):

* **content-addressed caching** — graph simulations are memoised on a
  deterministic hash of the chip configuration plus the operator graph, and
  whole points on a hash of the full point description, so repeated points
  (e.g. the shared TPUv4i baseline) simulate once and a re-sweep simulates
  nothing;
* **parallel fan-out** — ``workers > 1`` distributes uncached points over a
  ``multiprocessing`` pool, grouped by chip configuration so graph sharing
  survives the process boundary; results are re-assembled in input order and
  are identical (bit-for-bit) to a serial sweep;
* **structured results** — rows are plain frozen dataclasses exportable to
  JSON/CSV via :mod:`repro.sweep.export`.
"""

from __future__ import annotations

import logging
import multiprocessing
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

from repro.core.config import TPUConfig
from repro.obs.telemetry import Telemetry
from repro.parallel.multi_device import MultiTPUSystem
from repro.sweep.cache import CachingInferenceSimulator, ResultCache
from repro.sweep.fingerprint import fingerprint
from repro.sweep.grid import SweepGrid, SweepPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store uses cache)
    from repro.sweep.store import ResultStore

#: Store namespace of persisted sweep-point rows (see repro.sweep.store).
STORE_KIND = "sweep-result"

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepResult:
    """Structured outcome of one sweep point."""

    design: str
    workload: str
    #: Workload family tag from the model registry — one of the families in
    #: :data:`repro.workloads.registry.MODEL_KINDS` ("llm", "moe", "dit").
    kind: str
    precision: str                 # "int8" or "bf16"
    batch: int
    devices: int
    parallelism: str
    scenario: str                  # registered scenario name (e.g. "llm-serving")
    settings_summary: str          # human-readable settings (e.g. "in=1024 out=512")
    peak_tops: float               # per-chip peak INT8 throughput
    #: Seconds of one request group on the chip.  For ``devices > 1`` this is
    #: the *bottleneck pipeline stage's* occupancy plus its ICI hop (the
    #: steady-state throughput reciprocal, as in Fig. 8) — not the end-to-end
    #: latency of a single group through all stages, so it shrinks with the
    #: device count.  Compare across the device axis via ``throughput``.
    latency_seconds: float
    throughput: float              # items per second at steady state
    items: float                   # items produced per request group
    item_unit: str                 # "token" or "image"
    mxu_energy_joules: float       # summed over all devices
    total_energy_joules: float     # summed over all devices
    communication_seconds: float   # ICI time per request group (0 on one chip)
    cache_key: str                 # content fingerprint of the point

    @property
    def energy_per_item(self) -> float:
        """MXU energy per produced item (J/token or J/image)."""
        return self.mxu_energy_joules / self.items if self.items else 0.0

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by the JSON/CSV exporters."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepResult":
        """Rebuild a row from its ``to_dict`` payload (store round-trip).

        Unknown keys are ignored so a store written by a newer minor schema
        still loads where possible; missing required fields raise
        ``TypeError``, which the engine treats as a store miss.
        """
        from repro.sweep.store import decode_dataclass

        return decode_dataclass(cls, payload)


@dataclass
class SweepStats:
    """Aggregate cache statistics of a sweep engine."""

    point_hits: int = 0
    point_misses: int = 0
    graph_hits: int = 0
    graph_misses: int = 0
    #: Point rows served from / written to the persistent store (when one
    #: is attached): a store hit does zero simulation work.
    store_hits: int = 0
    store_misses: int = 0

    @property
    def simulations(self) -> int:
        """Graph simulations actually performed on behalf of the engine."""
        return self.graph_misses


def point_key(point: SweepPoint) -> str:
    """Deterministic content fingerprint of a sweep point.

    The version string is bumped whenever the point or spec schema gains an
    axis (v5: fault/overlay chaos axes on the serving spec; v6: the
    ``fidelity`` axis and the fluid estimator), so rows stored by an older
    binary miss — a pre-chaos store must never satisfy a faulted request,
    or chaos sweeps would silently serve healthy numbers.
    """
    return fingerprint("sweep-point/v6", point.design, point.config, point.model,
                       point.scenario, point.settings, point.devices, point.parallelism,
                       point.serving)


def _compute_result(point: SweepPoint, simulator: CachingInferenceSimulator,
                    key: str, store: "ResultStore | None" = None) -> SweepResult:
    """Simulate one point with the given (caching) simulator.

    The point's registered scenario drives the whole evaluation, so any
    workload family — LLM serving, DiT sampling, MoE, chat mixes, anything
    registered later — flows through this one path.  Points carrying a
    :class:`~repro.serving.spec.ServingSpec` run the discrete-event serving
    simulator instead, sharing the same memoised graph cache, and map the
    serving report onto the common row shape (latency = mean end-to-end
    request latency, throughput = sustained generated tokens per second).
    """
    spec = point.spec
    if point.serving is not None:
        # Imported lazily: repro.serving layers on top of repro.sweep, so a
        # top-level import here would be circular.  Fleet-shaped specs run
        # the cluster simulator — faulted specs too, whatever their replica
        # count, because fault injection lives at the routing layer; both
        # report types share the row mapping (latency = mean e2e,
        # throughput = sustained tokens/s).
        if point.serving.replicas > 1 or point.serving.faults:
            from repro.serving.cluster import simulate_cluster

            report = simulate_cluster(point.model, point.config, point.serving,
                                      point.settings, simulator=simulator,
                                      store=store)
            devices = report.total_devices
        else:
            from repro.serving.simulator import simulate_serving

            report = simulate_serving(point.model, point.config, point.serving,
                                      point.settings, simulator=simulator)
            devices = report.devices
        return SweepResult(
            design=point.design, workload=point.workload, kind=point.kind,
            precision=point.precision.value, batch=point.batch,
            devices=devices, parallelism=point.parallelism,
            scenario=point.scenario, settings_summary=point.settings_summary,
            peak_tops=point.config.peak_tops,
            latency_seconds=report.e2e.mean_s,
            throughput=report.tokens_per_second,
            items=float(report.total_tokens), item_unit="token",
            mxu_energy_joules=report.mxu_energy_joules,
            total_energy_joules=report.total_energy_joules,
            communication_seconds=0.0, cache_key=key)
    if point.devices == 1:
        inference = simulator.run_scenario(spec.build(point.model, point.settings))
        latency = inference.total_seconds
        throughput = inference.throughput
        items = inference.items
        item_unit = inference.item_unit
        mxu_energy = inference.mxu_energy
        total_energy = inference.total_energy
        communication = 0.0
    else:
        system = MultiTPUSystem(point.config, point.devices,
                                parallelism=point.parallelism, simulator=simulator)
        deployed = system.simulate_scenario(spec, point.model, point.settings)
        latency = deployed.stage_occupancy_seconds + deployed.communication_seconds
        throughput = deployed.throughput
        items = deployed.items_per_group
        item_unit = deployed.item_unit
        mxu_energy = deployed.mxu_energy_joules
        total_energy = deployed.total_energy_joules
        communication = deployed.communication_seconds

    return SweepResult(
        design=point.design, workload=point.workload, kind=point.kind,
        precision=point.precision.value, batch=point.batch,
        devices=point.devices, parallelism=point.parallelism,
        scenario=point.scenario, settings_summary=point.settings_summary,
        peak_tops=point.config.peak_tops,
        latency_seconds=latency, throughput=throughput,
        items=items, item_unit=item_unit,
        mxu_energy_joules=mxu_energy, total_energy_joules=total_energy,
        communication_seconds=communication, cache_key=key)


#: Per-worker-process snapshot of the parent's graph cache, installed once
#: by :func:`_seed_worker_cache` when the pool spins the process up (not
#: re-pickled per task, which would cost O(groups × cache size)).
_WORKER_SEED_ENTRIES: dict[str, object] = {}


def _seed_worker_cache(entries: Mapping[str, object]) -> None:
    """Pool initializer: install the parent's graph-cache snapshot."""
    _WORKER_SEED_ENTRIES.clear()
    _WORKER_SEED_ENTRIES.update(entries)


def _worker_evaluate_group(tasks: Sequence[tuple[str, SweepPoint]],
                           seed_entries: Mapping[str, object] | None = None,
                           ) -> tuple[list[tuple[str, SweepResult]],
                                      list[tuple[str, object]], int, int]:
    """Pool worker: simulate a group of points sharing one local graph cache.

    The engine groups points by chip configuration before dispatch, so the
    graphs that points share (per-layer graphs across a device axis, repeated
    settings on one design) are simulated once per worker task rather than
    once per point.  The parent engine's existing graph-cache entries seed
    the worker's cache (via the pool initializer, or the explicit
    ``seed_entries`` override for direct calls): without them a warm parent
    cache is invisible across the process boundary, so workers would
    re-simulate graphs the parent already holds *and* count them as misses
    — the classic "cache stats lost under multiprocessing fan-out" bug,
    which made parallel runs under-report the hit rate (and over-simulate)
    relative to an identical serial sweep.

    Returns the result rows, the *new* graph-cache entries produced (so the
    parent engine can absorb them without re-shipping what it sent) and the
    worker's graph hit/miss deltas (so the parent's statistics reflect work
    done remotely and parallel stats equal serial stats exactly).
    """
    cache = ResultCache()
    seed_entries = (dict(seed_entries) if seed_entries is not None
                    else dict(_WORKER_SEED_ENTRIES))
    cache.merge(seed_entries.items())
    simulators: dict[str, CachingInferenceSimulator] = {}
    rows: list[tuple[str, SweepResult]] = []
    for key, point in tasks:
        config_key = fingerprint(point.config)
        simulator = simulators.get(config_key)
        if simulator is None:
            simulator = CachingInferenceSimulator(point.config, cache)
            simulators[config_key] = simulator
        rows.append((key, _compute_result(point, simulator, key)))
    produced = [(graph_key, result) for graph_key, result in cache.entries().items()
                if graph_key not in seed_entries]
    return rows, produced, cache.stats.hits, cache.stats.misses


class SweepEngine:
    """Evaluates sweep grids with content-addressed caching and fan-out.

    An optional persistent :class:`~repro.sweep.store.ResultStore` extends
    the in-memory point cache across processes and runs: rows computed here
    are written through to the store, rows another run already computed are
    decoded from it without simulating anything.  Fleet-shaped points
    additionally pass the store down to the cluster simulator, so warm
    searches skip the event loop too.
    """

    def __init__(self, workers: int | None = None, *,
                 store: "ResultStore | None" = None,
                 telemetry: Telemetry | None = None) -> None:
        #: Default worker count for :meth:`sweep` (``None``/``0``/``1`` = serial).
        self.workers = workers
        #: Persistent cross-run result store (``None`` = in-memory only).
        self.store = store
        #: Telemetry sink (wall-clock domain): per-point compute spans plus
        #: live cache/store hit-miss counters.  Observation only — rows are
        #: identical with telemetry on or off.
        self.telemetry = (telemetry
                          if telemetry is not None and telemetry.enabled
                          else None)
        self.graph_cache = ResultCache()
        self.point_cache = ResultCache()
        self._simulators: dict[str, CachingInferenceSimulator] = {}
        self._remote_graph_hits = 0
        self._remote_graph_misses = 0
        self._store_hits = 0
        self._store_misses = 0

    # -------------------------------------------------------------- evaluate
    def evaluate(self, point: SweepPoint) -> SweepResult:
        """Evaluate one sweep point (served from the caches on repeats)."""
        key = point_key(point)
        return self.point_cache.get_or_compute(
            key, lambda: self._restore_or_compute(point, key))

    def sweep(self, points: SweepGrid | Iterable[SweepPoint],
              workers: int | None = None) -> list[SweepResult]:
        """Evaluate every point; rows come back in input order.

        With ``workers > 1`` the uncached points are distributed over a
        process pool (one task per distinct chip configuration); the result
        rows are nevertheless identical to a serial sweep, point for point.
        """
        resolved = list(points)
        keys = [point_key(point) for point in resolved]
        workers = workers if workers is not None else self.workers
        prefetched: dict[str, SweepResult] = {}
        if workers is not None and workers > 1:
            prefetched = self._parallel_prefetch(resolved, keys, workers)

        rows: list[SweepResult] = []
        for point, key in zip(resolved, keys):
            if key in prefetched:
                rows.append(self.point_cache.get_or_compute(
                    key, lambda key=key: prefetched[key]))
            else:
                rows.append(self.point_cache.get_or_compute(
                    key, lambda point=point, key=key: self._restore_or_compute(
                        point, key)))
        return rows

    # --------------------------------------------------------------- helpers
    def _restore_or_compute(self, point: SweepPoint, key: str) -> SweepResult:
        """Serve a point from the persistent store, or simulate and persist."""
        restored = self._from_store(key)
        if restored is not None:
            return restored
        tel = self.telemetry
        if tel is not None:
            tel.count("sweep.computed")
            with tel.wall_span("sweep", f"point:{point.design}/{point.workload}",
                               {"scenario": point.scenario,
                                "devices": point.devices,
                                "key": key[:12]}):
                row = _compute_result(point, self._simulator_for(point.config),
                                      key, store=self.store)
        else:
            row = _compute_result(point, self._simulator_for(point.config), key,
                                  store=self.store)
        if self.store is not None:
            self.store.put(STORE_KIND, key, row.to_dict())
        return row

    def _from_store(self, key: str) -> SweepResult | None:
        """Decode a stored row (``None`` without a store or on a miss)."""
        if self.store is None:
            return None
        payload = self.store.get(STORE_KIND, key)
        if payload is not None:
            try:
                row = SweepResult.from_dict(payload)
            except TypeError:  # schema drift inside one store version
                row = None
            if row is not None:
                self._store_hits += 1
                if self.telemetry is not None:
                    self.telemetry.count("sweep.store_hits")
                return row
        self._store_misses += 1
        if self.telemetry is not None:
            self.telemetry.count("sweep.store_misses")
        return None

    def _parallel_prefetch(self, points: Sequence[SweepPoint], keys: Sequence[str],
                           workers: int) -> dict[str, SweepResult]:
        """Simulate the unique uncached points in a process pool.

        Points are grouped by chip configuration and each group is one pool
        task: every group ships with a snapshot of the parent's graph cache
        (workers cannot see it otherwise) so graphs the parent — or an
        earlier sweep — already simulated are cache hits in the worker too,
        and the merged statistics equal a serial sweep's exactly.  Points
        the persistent store already holds are decoded here and never
        dispatched.  The fan-out is across distinct designs — the axis the
        exploration grids are widest in.
        """
        pending: dict[str, SweepPoint] = {}
        prefetched: dict[str, SweepResult] = {}
        for key, point in zip(keys, points):
            if key in self.point_cache or key in pending or key in prefetched:
                continue
            restored = self._from_store(key)
            if restored is not None:
                prefetched[key] = restored
            else:
                pending[key] = point
        if not pending:
            return prefetched
        groups: dict[str, list[tuple[str, SweepPoint]]] = {}
        for key, point in pending.items():
            groups.setdefault(fingerprint(point.config), []).append((key, point))
        seed_entries = self.graph_cache.entries()
        logger.debug("parallel prefetch: %d point(s) in %d group(s) over "
                     "up to %d worker(s)", len(pending), len(groups), workers)
        tel = self.telemetry
        span = (tel.wall_span("sweep", "parallel-fanout",
                              {"points": len(pending), "groups": len(groups)})
                if tel is not None else None)
        with multiprocessing.Pool(processes=min(workers, len(groups)),
                                  initializer=_seed_worker_cache,
                                  initargs=(seed_entries,)) as pool:
            if span is not None:
                with span:
                    outcomes = pool.map(_worker_evaluate_group,
                                        list(groups.values()))
            else:
                outcomes = pool.map(_worker_evaluate_group,
                                    list(groups.values()))
            if tel is not None:
                tel.count("sweep.computed", len(pending))
        for rows, graph_entries, graph_hits, graph_misses in outcomes:
            self.graph_cache.merge(graph_entries)
            self._remote_graph_hits += graph_hits
            self._remote_graph_misses += graph_misses
            for key, row in rows:
                prefetched[key] = row
                if self.store is not None:
                    self.store.put(STORE_KIND, key, row.to_dict())
        return prefetched

    def _simulator_for(self, config: TPUConfig) -> CachingInferenceSimulator:
        """A caching simulator for the chip, shared across points."""
        key = fingerprint(config)
        simulator = self._simulators.get(key)
        if simulator is None:
            simulator = CachingInferenceSimulator(config, self.graph_cache)
            self._simulators[key] = simulator
        return simulator

    # ------------------------------------------------------------ statistics
    @property
    def stats(self) -> SweepStats:
        """Combined local + worker cache statistics of the engine."""
        return SweepStats(
            point_hits=self.point_cache.stats.hits,
            point_misses=self.point_cache.stats.misses,
            graph_hits=self.graph_cache.stats.hits + self._remote_graph_hits,
            graph_misses=self.graph_cache.stats.misses + self._remote_graph_misses,
            store_hits=self._store_hits,
            store_misses=self._store_misses)

    def clear_caches(self) -> None:
        """Drop every cached simulation and reset the statistics.

        The persistent store (if any) is left untouched: it is the
        cross-run memory this method must not erase.
        """
        self.graph_cache.clear()
        self.point_cache.clear()
        self._simulators.clear()
        self._remote_graph_hits = 0
        self._remote_graph_misses = 0
        self._store_hits = 0
        self._store_misses = 0
