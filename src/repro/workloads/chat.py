"""Chat / long-context LLM serving with a mix of request shapes.

Production chat serving is not one prompt length: short follow-ups, document
questions and long-context sessions arrive interleaved.  This scenario models
a request *mix* — a weighted set of :class:`RequestClass` (prompt length,
output length, traffic share) — and prices one batch-sized request group under
that mix: every class contributes its traffic share of prefill and decode
work, with the decode phase KV-sampled per class exactly like the paper's
serving scenario.  The result is the expected per-group cost (and tokens/s)
of the traffic distribution, not of a single canonical request.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.common import Precision
from repro.workloads.llm import (
    LLMConfig,
    llm_all_reduce_hops,
    tensor_shard_llm,
)
from repro.workloads.scenario import (
    LLMInferenceSettings,
    PipelineHop,
    Scenario,
    ScenarioKnobs,
    ScenarioSpec,
    ScenarioStage,
    TensorParallelSpec,
)


@dataclass(frozen=True)
class RequestClass:
    """One shape of request in the serving mix."""

    input_tokens: int
    output_tokens: int
    #: Relative traffic share of this class (normalised over the mix).
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("input_tokens and output_tokens must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


#: Default mix: mostly interactive chat, some document work, a long-context tail.
DEFAULT_REQUEST_MIX: tuple[RequestClass, ...] = (
    RequestClass(input_tokens=256, output_tokens=256, weight=0.45),
    RequestClass(input_tokens=1024, output_tokens=512, weight=0.35),
    RequestClass(input_tokens=8192, output_tokens=1024, weight=0.20),
)


def mix_fractions(request_classes: Sequence[RequestClass]) -> tuple[float, ...]:
    """Traffic share of each request class, normalised to sum to one.

    Shared by the analytical chat-serving scenario (expected per-group cost)
    and the serving trace generators (sampling weights), so both views of a
    mix agree on its distribution.
    """
    if not request_classes:
        raise ValueError("a request mix needs at least one class")
    total = sum(request.weight for request in request_classes)
    return tuple(request.weight / total for request in request_classes)


@dataclass(frozen=True)
class ChatServingSettings:
    """Evaluation settings for the chat-serving scenario."""

    batch: int = 8
    precision: Precision = Precision.INT8
    request_classes: tuple[RequestClass, ...] = DEFAULT_REQUEST_MIX
    #: KV-cache samples per request class's decode phase.
    decode_kv_samples: int = 2

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if not self.request_classes:
            raise ValueError("chat serving needs at least one request class")
        if self.decode_kv_samples <= 0:
            raise ValueError("decode_kv_samples must be positive")

    def fractions(self) -> tuple[float, ...]:
        """Traffic share of each request class, normalised to sum to one."""
        return mix_fractions(self.request_classes)

    def expected_output_tokens(self) -> float:
        """Mean generated tokens per request under the mix."""
        return sum(fraction * request.output_tokens
                   for fraction, request in zip(self.fractions(), self.request_classes))

    def summary(self) -> str:
        """Human-readable settings summary used in tables and exports."""
        classes = " ".join(f"{r.input_tokens}+{r.output_tokens}"
                           for r in self.request_classes)
        return f"mix[{classes}]"

    def per_class_settings(self) -> tuple[LLMInferenceSettings, ...]:
        """The plain serving settings of each class (for KV sampling)."""
        return tuple(LLMInferenceSettings(
            batch=self.batch, input_tokens=request.input_tokens,
            output_tokens=request.output_tokens, precision=self.precision,
            decode_kv_samples=self.decode_kv_samples)
            for request in self.request_classes)


def build_chat_serving_scenario(config: LLMConfig,
                                settings: ChatServingSettings) -> Scenario:
    """Expected per-group cost of serving the configured request mix.

    The layer graph comes from the model's ``build_layer`` hook, so a plain
    :class:`LLMConfig` serves dense Transformer layers while an
    :class:`~repro.workloads.moe.MoEConfig` serves expert layers —
    long-context chat on Mixtral prices the experts, not a dense stand-in.
    """
    build_layer = config.build_layer
    stages: list[ScenarioStage] = []
    hops: list[PipelineHop] = []
    element_bytes = settings.precision.bytes
    fractions = settings.fractions()
    for fraction, request, class_settings in zip(fractions, settings.request_classes,
                                                 settings.per_class_settings()):
        label = f"in={request.input_tokens}"
        stages.append(ScenarioStage(
            name=f"prefill[{label}]",
            graph=build_layer("prefill", settings.batch, request.input_tokens,
                              precision=settings.precision),
            repeats_per_unit=fraction))
        kv_lengths = class_settings.decode_kv_lengths()
        tokens_per_sample = request.output_tokens / len(kv_lengths)
        for kv_len in kv_lengths:
            stages.append(ScenarioStage(
                name=f"decode[{label},kv={kv_len}]",
                graph=build_layer("decode", settings.batch, request.input_tokens,
                                  kv_len=kv_len, precision=settings.precision),
                repeats_per_unit=fraction * tokens_per_sample))
        hops.append(PipelineHop(
            bytes=settings.batch * request.input_tokens * config.d_model * element_bytes,
            count=fraction))
        hops.append(PipelineHop(
            bytes=settings.batch * config.d_model * element_bytes,
            count=fraction * request.output_tokens))
    return Scenario(
        name="chat-serving",
        model_name=config.name,
        stages=tuple(stages),
        items=settings.batch * settings.expected_output_tokens(),
        item_unit="token",
        pipeline_units=config.num_layers,
        hops=tuple(hops))


def chat_settings_from_knobs(knobs: ScenarioKnobs) -> ChatServingSettings:
    """Derive a request mix from the flat grid knobs.

    The ``input_tokens`` / ``output_tokens`` knobs parameterise the mix's
    middle class; the interactive class is a quarter / half of it and the
    long-context tail is 8× / 2× of it, so one pair of CLI flags scales the
    whole distribution.
    """
    return ChatServingSettings(
        batch=knobs.batch, precision=knobs.precision,
        decode_kv_samples=knobs.decode_kv_samples,
        request_classes=(
            RequestClass(input_tokens=max(1, knobs.input_tokens // 4),
                         output_tokens=max(1, knobs.output_tokens // 2), weight=0.45),
            RequestClass(input_tokens=knobs.input_tokens,
                         output_tokens=knobs.output_tokens, weight=0.35),
            RequestClass(input_tokens=8 * knobs.input_tokens,
                         output_tokens=2 * knobs.output_tokens, weight=0.20),
        ))


def _chat_all_reduce_hops(llm: LLMConfig,
                          settings: ChatServingSettings) -> tuple[PipelineHop, ...]:
    """Tensor-parallel all-reduce volumes, weighted over the request mix."""
    hops: list[PipelineHop] = []
    for fraction, request in zip(settings.fractions(), settings.request_classes):
        per_class = llm_all_reduce_hops(llm, LLMInferenceSettings(
            batch=settings.batch, input_tokens=request.input_tokens,
            output_tokens=request.output_tokens, precision=settings.precision,
            decode_kv_samples=settings.decode_kv_samples))
        hops.extend(PipelineHop(bytes=hop.bytes, count=fraction * hop.count)
                    for hop in per_class)
    return tuple(hops)


#: Spec of the chat-serving scenario (registered in ``workloads.registry``).
CHAT_SERVING_SCENARIO = ScenarioSpec(
    name="chat-serving",
    description="weighted mix of short-chat, document and long-context requests",
    model_type=LLMConfig,
    settings_type=ChatServingSettings,
    build=build_chat_serving_scenario,
    make_settings=chat_settings_from_knobs,
    tensor_parallel=TensorParallelSpec(shard=tensor_shard_llm,
                                       all_reduce_hops=_chat_all_reduce_hops))
