"""Operator graph: the unit of work handed to the simulator.

A graph is an ordered sequence of operators with optional explicit
dependencies.  Generative-model layers are almost perfectly sequential at the
operator granularity the paper models (each operator consumes the previous
operator's output), so the default dependency structure is a chain; explicit
edges are supported so model builders can express the few genuinely parallel
branches (e.g. the DiT conditioning MLP, which is independent of the token
path until the shift-and-scale).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.workloads.operators import LayerCategory, MatMulOp, Operator


@dataclass
class OperatorGraph:
    """An ordered collection of operators with dependency edges."""

    name: str
    operators: list[Operator] = field(default_factory=list)
    #: Mapping from operator index to the indices it depends on.  An absent
    #: entry means "depends on the previous operator" (sequential chain).
    dependencies: dict[int, list[int]] = field(default_factory=dict)

    def add(self, operator: Operator, depends_on: list[int] | None = None) -> int:
        """Append an operator; returns its index in the graph."""
        index = len(self.operators)
        self.operators.append(operator)
        if depends_on is not None:
            for dep in depends_on:
                if not 0 <= dep < index:
                    raise ValueError(
                        f"operator '{operator.name}' depends on invalid index {dep}")
            self.dependencies[index] = list(depends_on)
        return index

    def extend(self, other: "OperatorGraph") -> None:
        """Append every operator of another graph, preserving its edges."""
        offset = len(self.operators)
        for index, operator in enumerate(other.operators):
            deps = other.dependencies.get(index)
            shifted = [d + offset for d in deps] if deps is not None else None
            self.add(operator, shifted)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self.operators)

    def predecessors(self, index: int) -> list[int]:
        """Indices the operator at ``index`` depends on."""
        if not 0 <= index < len(self.operators):
            raise IndexError(f"operator index {index} out of range")
        if index in self.dependencies:
            return list(self.dependencies[index])
        return [index - 1] if index > 0 else []

    # ------------------------------------------------------------ summaries
    @property
    def matmul_operators(self) -> list[MatMulOp]:
        """All matrix-unit operators in the graph."""
        return [op for op in self.operators if isinstance(op, MatMulOp)]

    @property
    def vector_operators(self) -> list[Operator]:
        """All vector-unit operators in the graph."""
        return [op for op in self.operators if not isinstance(op, MatMulOp)]

    @property
    def total_macs(self) -> int:
        """Total MACs across all matmul operators."""
        return sum(op.macs for op in self.matmul_operators)

    @property
    def total_weight_bytes(self) -> int:
        """Total weight bytes across all operators."""
        return sum(op.weight_bytes for op in self.operators)

    def categories(self) -> list[LayerCategory]:
        """Distinct layer categories present, in first-appearance order."""
        seen: list[LayerCategory] = []
        for operator in self.operators:
            if operator.category not in seen:
                seen.append(operator.category)
        return seen

    def by_category(self) -> dict[LayerCategory, list[Operator]]:
        """Group operators by their layer category."""
        grouped: dict[LayerCategory, list[Operator]] = {}
        for operator in self.operators:
            grouped.setdefault(operator.category, []).append(operator)
        return grouped

    def scaled(self, repeat: int) -> "OperatorGraph":
        """A graph representing ``repeat`` sequential executions of this graph.

        Used to expand a single Transformer layer into the full layer stack
        without duplicating operator objects ``repeat`` times: the simulator
        multiplies per-layer results instead, but some analyses (e.g. the
        Fig. 2d whole-model breakdown) want an explicit expanded graph.
        """
        if repeat <= 0:
            raise ValueError("repeat must be positive")
        expanded = OperatorGraph(name=f"{self.name}_x{repeat}")
        for _ in range(repeat):
            expanded.extend(self)
        return expanded
