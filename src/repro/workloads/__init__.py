"""Workload descriptions: operator graphs for LLM and DiT inference.

The simulator consumes *operator graphs*: ordered collections of matmul and
vector operators annotated with the layer category they belong to (QKV
generation, attention, projection, FFN, normalisation, …), exactly the
granularity at which the paper reports its latency and energy breakdowns
(Fig. 6).  Builders are provided for Transformer layers in LLM prefill and
decode modes (with KV cache), for DiT blocks with adaLN conditioning, and for
whole models (token embedding + layer stack + prediction head) used by the
Fig. 2d runtime-breakdown experiment.
"""

from repro.workloads.operators import (
    LayerCategory,
    Operator,
    MatMulOp,
    SoftmaxOp,
    LayerNormOp,
    GeLUOp,
    ElementwiseOp,
    OperandSource,
)
from repro.workloads.graph import OperatorGraph
from repro.workloads.transformer import TransformerLayerConfig, build_prefill_layer, build_decode_layer
from repro.workloads.llm import LLMConfig, GPT3_30B, GPT3_175B, LLAMA2_7B, LLAMA2_13B, build_llm_model_graph
from repro.workloads.dit import DiTConfig, DIT_XL_2, build_dit_block, build_dit_model_graph
from repro.workloads.moe import GatingOp, MIXTRAL_8X7B, MoEConfig, build_moe_layer
from repro.workloads.chat import ChatServingSettings, RequestClass
from repro.workloads.scenario import (
    PipelineHop,
    Scenario,
    ScenarioKnobs,
    ScenarioSpec,
    ScenarioStage,
    TensorParallelSpec,
)
from repro.workloads.registry import (
    MODEL_REGISTRY,
    SCENARIO_REGISTRY,
    get_model,
    get_scenario,
    register_model,
    register_scenario,
    scenario_for,
    scenarios_supporting,
)

__all__ = [
    "LayerCategory",
    "Operator",
    "MatMulOp",
    "SoftmaxOp",
    "LayerNormOp",
    "GeLUOp",
    "ElementwiseOp",
    "OperandSource",
    "OperatorGraph",
    "TransformerLayerConfig",
    "build_prefill_layer",
    "build_decode_layer",
    "LLMConfig",
    "GPT3_30B",
    "GPT3_175B",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "build_llm_model_graph",
    "DiTConfig",
    "DIT_XL_2",
    "build_dit_block",
    "build_dit_model_graph",
    "GatingOp",
    "MoEConfig",
    "MIXTRAL_8X7B",
    "build_moe_layer",
    "ChatServingSettings",
    "RequestClass",
    "PipelineHop",
    "Scenario",
    "ScenarioKnobs",
    "ScenarioSpec",
    "ScenarioStage",
    "TensorParallelSpec",
    "MODEL_REGISTRY",
    "SCENARIO_REGISTRY",
    "get_model",
    "get_scenario",
    "register_model",
    "register_scenario",
    "scenario_for",
    "scenarios_supporting",
]
