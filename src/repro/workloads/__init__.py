"""Workload descriptions: operator graphs for LLM and DiT inference.

The simulator consumes *operator graphs*: ordered collections of matmul and
vector operators annotated with the layer category they belong to (QKV
generation, attention, projection, FFN, normalisation, …), exactly the
granularity at which the paper reports its latency and energy breakdowns
(Fig. 6).  Builders are provided for Transformer layers in LLM prefill and
decode modes (with KV cache), for DiT blocks with adaLN conditioning, and for
whole models (token embedding + layer stack + prediction head) used by the
Fig. 2d runtime-breakdown experiment.
"""

from repro.workloads.operators import (
    LayerCategory,
    Operator,
    MatMulOp,
    SoftmaxOp,
    LayerNormOp,
    GeLUOp,
    ElementwiseOp,
    OperandSource,
)
from repro.workloads.graph import OperatorGraph
from repro.workloads.transformer import TransformerLayerConfig, build_prefill_layer, build_decode_layer
from repro.workloads.llm import LLMConfig, GPT3_30B, GPT3_175B, LLAMA2_7B, LLAMA2_13B, build_llm_model_graph
from repro.workloads.dit import DiTConfig, DIT_XL_2, build_dit_block, build_dit_model_graph
from repro.workloads.registry import MODEL_REGISTRY, get_model

__all__ = [
    "LayerCategory",
    "Operator",
    "MatMulOp",
    "SoftmaxOp",
    "LayerNormOp",
    "GeLUOp",
    "ElementwiseOp",
    "OperandSource",
    "OperatorGraph",
    "TransformerLayerConfig",
    "build_prefill_layer",
    "build_decode_layer",
    "LLMConfig",
    "GPT3_30B",
    "GPT3_175B",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "build_llm_model_graph",
    "DiTConfig",
    "DIT_XL_2",
    "build_dit_block",
    "build_dit_model_graph",
    "MODEL_REGISTRY",
    "get_model",
]
