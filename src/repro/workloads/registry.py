"""Registries of the models and scenarios known to the simulator.

Two open registries make the workload space extensible without touching the
simulation core:

* the **model registry** maps names to architecture configurations
  (:class:`~repro.workloads.llm.LLMConfig`,
  :class:`~repro.workloads.dit.DiTConfig`,
  :class:`~repro.workloads.moe.MoEConfig`, ...);
* the **scenario registry** maps names to
  :class:`~repro.workloads.scenario.ScenarioSpec` entries — declarative
  end-to-end inference shapes the generic
  :meth:`~repro.core.simulator.InferenceSimulator.run_scenario` pipeline
  executes.  Each model type declares a *default* scenario, which is what
  sweep grids and the CLI fall back to when none is named.
"""

from __future__ import annotations

from typing import Any

from repro.workloads.chat import CHAT_SERVING_SCENARIO
from repro.workloads.dit import DIT_SAMPLING_SCENARIO, DIT_XL_2, DiTConfig
from repro.workloads.llm import (
    GPT3_30B,
    GPT3_175B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLM_SERVING_SCENARIO,
    LLMConfig,
)
from repro.workloads.moe import MIXTRAL_8X7B, MOE_SERVING_SCENARIO, MoEConfig
from repro.workloads.scenario import ScenarioSpec

#: All model configurations addressable by name.
MODEL_REGISTRY: dict[str, LLMConfig | DiTConfig] = {
    GPT3_30B.name: GPT3_30B,
    GPT3_175B.name: GPT3_175B,
    LLAMA2_7B.name: LLAMA2_7B,
    LLAMA2_13B.name: LLAMA2_13B,
    DIT_XL_2.name: DIT_XL_2,
    MIXTRAL_8X7B.name: MIXTRAL_8X7B,
}


def get_model(name: str) -> LLMConfig | DiTConfig:
    """Look up a model configuration by name.

    Raises
    ------
    KeyError
        If the model is unknown; the error lists the registered names.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model '{name}'; registered models: {known}") from None


def register_model(config: LLMConfig | DiTConfig, overwrite: bool = False) -> None:
    """Add a model configuration to the registry.

    Raises
    ------
    ValueError
        If a model of the same name exists and ``overwrite`` is not set.
    """
    if config.name in MODEL_REGISTRY and not overwrite:
        raise ValueError(f"model '{config.name}' is already registered")
    MODEL_REGISTRY[config.name] = config


# ------------------------------------------------------------------ scenarios
#: All scenario specs addressable by name.
SCENARIO_REGISTRY: dict[str, ScenarioSpec] = {}

#: Model type -> name of its default scenario (most specific type wins).
_DEFAULT_SCENARIOS: dict[type, str] = {}


def register_scenario(spec: ScenarioSpec, default_for: tuple[type, ...] = (),
                      overwrite: bool = False) -> None:
    """Add a scenario spec; optionally make it the default for model types.

    Raises
    ------
    ValueError
        If a scenario of the same name (or a default for one of the given
        types) exists and ``overwrite`` is not set.
    """
    if spec.name in SCENARIO_REGISTRY and not overwrite:
        raise ValueError(f"scenario '{spec.name}' is already registered")
    for model_type in default_for:
        existing = _DEFAULT_SCENARIOS.get(model_type)
        if existing is not None and existing != spec.name and not overwrite:
            raise ValueError(
                f"model type '{model_type.__name__}' already defaults to "
                f"scenario '{existing}'")
    SCENARIO_REGISTRY[spec.name] = spec
    for model_type in default_for:
        _DEFAULT_SCENARIOS[model_type] = spec.name


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario spec by name.

    Raises
    ------
    KeyError
        If the scenario is unknown; the error lists the registered names.
    """
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_REGISTRY))
        raise KeyError(
            f"unknown scenario '{name}'; registered scenarios: {known}") from None


def scenario_for(model: Any) -> ScenarioSpec:
    """The default scenario spec of a model, by its most specific type.

    Walks the model's MRO so e.g. an :class:`~repro.workloads.moe.MoEConfig`
    resolves to ``moe-serving`` even though it is also an ``LLMConfig``.

    Raises
    ------
    KeyError
        If no registered default covers the model's type.
    """
    for base in type(model).__mro__:
        name = _DEFAULT_SCENARIOS.get(base)
        if name is not None:
            return SCENARIO_REGISTRY[name]
    known = ", ".join(sorted(t.__name__ for t in _DEFAULT_SCENARIOS))
    raise KeyError(
        f"no default scenario for model type '{type(model).__name__}' "
        f"(types with defaults: {known})")


def scenarios_supporting(model: Any) -> tuple[ScenarioSpec, ...]:
    """Every registered scenario whose capability covers the model."""
    return tuple(spec for spec in SCENARIO_REGISTRY.values() if spec.supports(model))


#: Model type -> workload-family tag, most specific type first.  Sweep rows
#: carry the tag in their ``kind`` column; tests assert the two stay in sync.
MODEL_KINDS: tuple[tuple[type, str], ...] = (
    (MoEConfig, "moe"),
    (LLMConfig, "llm"),
    (DiTConfig, "dit"),
)


def model_kind(model: Any) -> str:
    """Workload-family tag of a model configuration (``"llm"``, ``"moe"``,
    ``"dit"``), resolved by its most specific registered type.

    Raises
    ------
    TypeError
        If no registered family covers the model's type.
    """
    for model_type, kind in MODEL_KINDS:
        if isinstance(model, model_type):
            return kind
    known = ", ".join(kind for _, kind in MODEL_KINDS)
    raise TypeError(f"no workload family for model type "
                    f"'{type(model).__name__}' (families: {known})")


register_scenario(LLM_SERVING_SCENARIO, default_for=(LLMConfig,))
register_scenario(DIT_SAMPLING_SCENARIO, default_for=(DiTConfig,))
register_scenario(MOE_SERVING_SCENARIO, default_for=(MoEConfig,))
register_scenario(CHAT_SERVING_SCENARIO)
