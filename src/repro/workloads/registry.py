"""Registry of the generative models known to the simulator."""

from __future__ import annotations

from repro.workloads.dit import DIT_XL_2, DiTConfig
from repro.workloads.llm import GPT3_30B, GPT3_175B, LLAMA2_7B, LLAMA2_13B, LLMConfig

#: All model configurations addressable by name.
MODEL_REGISTRY: dict[str, LLMConfig | DiTConfig] = {
    GPT3_30B.name: GPT3_30B,
    GPT3_175B.name: GPT3_175B,
    LLAMA2_7B.name: LLAMA2_7B,
    LLAMA2_13B.name: LLAMA2_13B,
    DIT_XL_2.name: DIT_XL_2,
}


def get_model(name: str) -> LLMConfig | DiTConfig:
    """Look up a model configuration by name.

    Raises
    ------
    KeyError
        If the model is unknown; the error lists the registered names.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model '{name}'; registered models: {known}") from None


def register_model(config: LLMConfig | DiTConfig, overwrite: bool = False) -> None:
    """Add a model configuration to the registry.

    Raises
    ------
    ValueError
        If a model of the same name exists and ``overwrite`` is not set.
    """
    if config.name in MODEL_REGISTRY and not overwrite:
        raise ValueError(f"model '{config.name}' is already registered")
    MODEL_REGISTRY[config.name] = config
