"""Diffusion Transformer (DiT) configurations and block/model builders.

DiT-XL/2 (Peebles & Xie) is the diffusion model the paper evaluates: 28 DiT
blocks, 16 heads, hidden dimension 1152, patch size 2.  At an image
resolution of 512×512 the VAE latent is 64×64×4, so patchification yields
``(64/2)² = 1024`` tokens.  Each DiT block is a Transformer layer augmented
with adaLN conditioning: a conditioning MLP produces per-block shift/scale/
gate vectors that modulate the token path before and after attention and the
MLP (the "Conditioning" category in the paper's Fig. 6 breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision
from repro.workloads.graph import OperatorGraph
from repro.workloads.operators import (
    ElementwiseOp,
    GeLUOp,
    LayerCategory,
    LayerNormOp,
    MatMulOp,
    OperandSource,
    SoftmaxOp,
)
from repro.workloads.scenario import (
    DiTInferenceSettings,
    PipelineHop,
    Scenario,
    ScenarioKnobs,
    ScenarioSpec,
    ScenarioStage,
)
from repro.workloads.transformer import TransformerLayerConfig


@dataclass(frozen=True)
class DiTConfig:
    """Architecture description of a Diffusion Transformer."""

    name: str
    depth: int
    num_heads: int
    d_model: int
    patch_size: int = 2
    in_channels: int = 4
    mlp_ratio: int = 4
    #: VAE spatial downsampling factor between image and latent.
    vae_downsample: int = 8

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.num_heads <= 0 or self.d_model <= 0:
            raise ValueError(f"model '{self.name}' has non-positive dimensions")
        if self.patch_size <= 0 or self.in_channels <= 0 or self.mlp_ratio <= 0:
            raise ValueError("patch_size, in_channels and mlp_ratio must be positive")
        if self.vae_downsample <= 0:
            raise ValueError("vae_downsample must be positive")

    @property
    def d_ff(self) -> int:
        """FFN inner dimension."""
        return self.mlp_ratio * self.d_model

    @property
    def head_dim(self) -> int:
        """Per-head dimension (DiT-XL/2: 1152 / 16 = 72)."""
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        return self.d_model // self.num_heads

    def tokens_for_resolution(self, image_resolution: int) -> int:
        """Token count for a square image of the given resolution."""
        if image_resolution <= 0:
            raise ValueError("image_resolution must be positive")
        latent = image_resolution // self.vae_downsample
        if latent % self.patch_size != 0:
            raise ValueError(
                f"latent size {latent} is not divisible by patch size {self.patch_size}")
        side = latent // self.patch_size
        return side * side

    def layer_config(self) -> TransformerLayerConfig:
        """Shape of the Transformer layer embedded in each DiT block."""
        return TransformerLayerConfig(
            d_model=self.d_model, num_heads=self.num_heads, d_ff=self.d_ff)


#: DiT-XL/2, the diffusion model evaluated throughout the paper.
DIT_XL_2 = DiTConfig(name="dit-xl-2", depth=28, num_heads=16, d_model=1152)


def build_dit_block(config: DiTConfig, batch: int, image_resolution: int = 512,
                    precision: Precision = Precision.INT8,
                    name: str | None = None) -> OperatorGraph:
    """Operator graph of one DiT block (Transformer layer + adaLN conditioning)."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    tokens_per_sample = config.tokens_for_resolution(image_resolution)
    tokens = batch * tokens_per_sample
    d_model = config.d_model
    head_dim = config.head_dim
    instances = batch * config.num_heads
    name = name if name is not None else f"{config.name}_block"
    graph = OperatorGraph(name=name)

    # adaLN conditioning MLP: per-sample conditioning vector -> 6 modulation
    # vectors (shift/scale/gate for attention and MLP branches).
    graph.add(GeLUOp(name=f"{name}_cond_silu", category=LayerCategory.CONDITIONING,
                     precision=precision, elements=batch * d_model))
    graph.add(MatMulOp(name=f"{name}_cond_mlp", category=LayerCategory.CONDITIONING,
                       precision=precision, m=batch, k=d_model, n=6 * d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))

    # Attention branch.
    graph.add(LayerNormOp(name=f"{name}_ln1", category=LayerCategory.LAYERNORM,
                          precision=precision, rows=tokens, hidden_dim=d_model))
    graph.add(ElementwiseOp(name=f"{name}_modulate1", category=LayerCategory.CONDITIONING,
                            precision=precision, elements=tokens * d_model,
                            ops_per_element=2.0, operands=3))
    graph.add(MatMulOp(name=f"{name}_qkv", category=LayerCategory.QKV_GEN, precision=precision,
                       m=tokens, k=d_model, n=3 * d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(MatMulOp(name=f"{name}_qk_t", category=LayerCategory.ATTENTION, precision=precision,
                       m=tokens_per_sample, k=head_dim, n=tokens_per_sample, batch=instances,
                       stationary_weights=False, weight_source=OperandSource.CMEM,
                       activation_source=OperandSource.CMEM))
    graph.add(SoftmaxOp(name=f"{name}_softmax", category=LayerCategory.ATTENTION,
                        precision=precision, rows=instances * tokens_per_sample,
                        row_length=tokens_per_sample))
    graph.add(MatMulOp(name=f"{name}_sv", category=LayerCategory.ATTENTION, precision=precision,
                       m=tokens_per_sample, k=tokens_per_sample, n=head_dim, batch=instances,
                       stationary_weights=False, weight_source=OperandSource.CMEM,
                       activation_source=OperandSource.CMEM))
    graph.add(MatMulOp(name=f"{name}_proj", category=LayerCategory.PROJECTION, precision=precision,
                       m=tokens, k=d_model, n=d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(ElementwiseOp(name=f"{name}_gate_residual1", category=LayerCategory.CONDITIONING,
                            precision=precision, elements=tokens * d_model,
                            ops_per_element=2.0, operands=3))

    # MLP branch.
    graph.add(LayerNormOp(name=f"{name}_ln2", category=LayerCategory.LAYERNORM,
                          precision=precision, rows=tokens, hidden_dim=d_model))
    graph.add(ElementwiseOp(name=f"{name}_modulate2", category=LayerCategory.CONDITIONING,
                            precision=precision, elements=tokens * d_model,
                            ops_per_element=2.0, operands=3))
    graph.add(MatMulOp(name=f"{name}_ffn1", category=LayerCategory.FFN1, precision=precision,
                       m=tokens, k=d_model, n=config.d_ff,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(GeLUOp(name=f"{name}_gelu", category=LayerCategory.GELU, precision=precision,
                     elements=tokens * config.d_ff))
    graph.add(MatMulOp(name=f"{name}_ffn2", category=LayerCategory.FFN2, precision=precision,
                       m=tokens, k=config.d_ff, n=d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(ElementwiseOp(name=f"{name}_gate_residual2", category=LayerCategory.CONDITIONING,
                            precision=precision, elements=tokens * d_model,
                            ops_per_element=2.0, operands=3))
    return graph


def build_dit_model_graph(config: DiTConfig, batch: int, image_resolution: int = 512,
                          precision: Precision = Precision.INT8) -> OperatorGraph:
    """Whole-model DiT graph: patchify/embedding, all blocks, final head.

    Used by the Fig. 2d reproduction (pre-process / DiT blocks / post-process
    shares of total inference latency).
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    tokens_per_sample = config.tokens_for_resolution(image_resolution)
    tokens = batch * tokens_per_sample
    patch_elems = config.patch_size ** 2 * config.in_channels
    graph = OperatorGraph(name=f"{config.name}_model")

    # Pre-processing: patchify (a small dense projection per patch) plus the
    # timestep/label embedding MLPs.
    graph.add(MatMulOp(name=f"{config.name}_patchify", category=LayerCategory.EMBEDDING,
                       precision=precision, m=tokens, k=patch_elems, n=config.d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(MatMulOp(name=f"{config.name}_t_embed", category=LayerCategory.EMBEDDING,
                       precision=precision, m=batch, k=256, n=config.d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(MatMulOp(name=f"{config.name}_t_embed2", category=LayerCategory.EMBEDDING,
                       precision=precision, m=batch, k=config.d_model, n=config.d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))

    block_graph = build_dit_block(config, batch, image_resolution, precision)
    for _ in range(config.depth):
        graph.extend(block_graph)

    # Post-processing: final adaLN, linear to patch pixels, reshape.
    graph.add(LayerNormOp(name=f"{config.name}_final_ln", category=LayerCategory.PREDICTION_HEAD,
                          precision=precision, rows=tokens, hidden_dim=config.d_model))
    graph.add(MatMulOp(name=f"{config.name}_final_linear", category=LayerCategory.PREDICTION_HEAD,
                       precision=precision, m=tokens, k=config.d_model,
                       n=2 * patch_elems,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(ElementwiseOp(name=f"{config.name}_unpatchify", category=LayerCategory.PREDICTION_HEAD,
                            precision=precision, elements=tokens * 2 * patch_elems,
                            ops_per_element=1.0, operands=1))
    return graph


# ------------------------------------------------------------------ scenario
def build_dit_sampling_scenario(config: DiTConfig,
                                settings: DiTInferenceSettings) -> Scenario:
    """The paper's DiT scenario: the full sampling loop (blocks × steps)."""
    block = build_dit_block(config, settings.batch, settings.image_resolution,
                            settings.precision)
    tokens = config.tokens_for_resolution(settings.image_resolution)
    hop_bytes = settings.batch * tokens * config.d_model * settings.precision.bytes
    return Scenario(
        name="dit-sampling",
        model_name=config.name,
        stages=(ScenarioStage(name="dit_blocks", graph=block,
                              repeats_per_unit=float(settings.sampling_steps)),),
        items=float(settings.batch),
        item_unit="image",
        pipeline_units=config.depth,
        hops=(PipelineHop(bytes=hop_bytes, count=float(settings.sampling_steps)),))


def _dit_settings_from_knobs(knobs: ScenarioKnobs) -> DiTInferenceSettings:
    return DiTInferenceSettings(
        batch=knobs.batch, image_resolution=knobs.image_resolution,
        sampling_steps=knobs.sampling_steps, precision=knobs.precision)


#: Spec of the default DiT scenario (registered in ``workloads.registry``).
DIT_SAMPLING_SCENARIO = ScenarioSpec(
    name="dit-sampling",
    description="the full diffusion sampling loop (blocks x depth x steps)",
    model_type=DiTConfig,
    settings_type=DiTInferenceSettings,
    build=build_dit_sampling_scenario,
    make_settings=_dit_settings_from_knobs)
