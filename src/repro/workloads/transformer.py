"""Transformer-layer operator-graph builders (LLM prefill and decode).

The builders produce the operator sequence of one Transformer layer at the
granularity the paper evaluates: QKV generation, the attention matmuls and
Softmax, the output projection, the two FFN matmuls with GeLU, and the
LayerNorms / residual additions handled by the vector unit.

Two execution modes are provided:

* **prefill** — the whole prompt is processed at once; every matmul has a
  large ``M`` dimension (``batch × seq_len``) and the attention operates over
  the full ``seq_len × seq_len`` score matrix.
* **decode** — one token per sequence is processed; the dense matmuls become
  GEMV-shaped (``M = batch``) and attention reads the KV cache of length
  ``kv_len``, which is the memory-bound regime the paper analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision
from repro.workloads.graph import OperatorGraph
from repro.workloads.operators import (
    ElementwiseOp,
    GeLUOp,
    LayerCategory,
    LayerNormOp,
    MatMulOp,
    OperandSource,
    SoftmaxOp,
)


@dataclass(frozen=True)
class TransformerLayerConfig:
    """Shape parameters of one Transformer layer.

    Attributes
    ----------
    d_model:
        Hidden dimension.
    num_heads:
        Attention head count (``head_dim = d_model / num_heads`` unless
        overridden).
    d_ff:
        FFN inner dimension (``4 × d_model`` for GPT-style models).
    head_dim:
        Per-head dimension; defaults to ``d_model // num_heads``.
    gated_ffn:
        Whether the FFN uses a gated (SwiGLU-style) structure with separate
        gate and up projections, as in Llama-2.
    """

    d_model: int
    num_heads: int
    d_ff: int
    head_dim: int | None = None
    gated_ffn: bool = False

    def __post_init__(self) -> None:
        if self.d_model <= 0 or self.num_heads <= 0 or self.d_ff <= 0:
            raise ValueError("d_model, num_heads and d_ff must be positive")
        if self.head_dim is None:
            if self.d_model % self.num_heads != 0:
                raise ValueError(
                    f"d_model ({self.d_model}) must be divisible by num_heads ({self.num_heads}) "
                    "unless head_dim is given explicitly")
        elif self.head_dim <= 0:
            raise ValueError("head_dim must be positive")

    @property
    def resolved_head_dim(self) -> int:
        """Per-head dimension actually used."""
        return self.head_dim if self.head_dim is not None else self.d_model // self.num_heads

    @property
    def qkv_output_dim(self) -> int:
        """Output width of the fused QKV projection."""
        return 3 * self.num_heads * self.resolved_head_dim

    @property
    def weight_bytes_per_layer(self) -> int:
        """INT8 weight footprint of one layer (used for capacity checks)."""
        attn = self.d_model * self.qkv_output_dim + self.num_heads * self.resolved_head_dim * self.d_model
        if self.gated_ffn:
            ffn = self.d_model * 2 * self.d_ff + self.d_ff * self.d_model
        else:
            ffn = self.d_model * self.d_ff + self.d_ff * self.d_model
        return attn + ffn


def append_attention_ops(graph: OperatorGraph, config: TransformerLayerConfig, batch: int,
                         query_len: int, kv_len: int, precision: Precision,
                         prefix: str) -> None:
    """Append the attention score/softmax/value operators to the graph.

    Public so layer builders outside this module (e.g. the MoE layer, whose
    attention half is a standard Transformer) can reuse the exact operator
    shapes the paper's layer analysis uses.
    """
    head_dim = config.resolved_head_dim
    instances = batch * config.num_heads
    graph.add(MatMulOp(
        name=f"{prefix}_qk_t", category=LayerCategory.ATTENTION, precision=precision,
        m=query_len, k=head_dim, n=kv_len, batch=instances,
        stationary_weights=False, weight_source=OperandSource.CMEM,
        activation_source=OperandSource.CMEM))
    graph.add(SoftmaxOp(
        name=f"{prefix}_softmax", category=LayerCategory.ATTENTION, precision=precision,
        rows=instances * query_len, row_length=kv_len))
    graph.add(MatMulOp(
        name=f"{prefix}_sv", category=LayerCategory.ATTENTION, precision=precision,
        m=query_len, k=kv_len, n=head_dim, batch=instances,
        stationary_weights=False, weight_source=OperandSource.CMEM,
        activation_source=OperandSource.CMEM))


def append_attention_block(graph: OperatorGraph, config: TransformerLayerConfig,
                           batch: int, query_len: int, kv_len: int,
                           precision: Precision, prefix: str,
                           kv_cache_update: bool = False) -> None:
    """Append the full attention half of a Transformer layer.

    Covers input LayerNorm, QKV generation, (optionally) the KV-cache
    update of a decode step, the attention matmuls/Softmax, the output
    projection, the residual addition and the pre-FFN LayerNorm.  Shared by
    the dense prefill/decode builders and the MoE layer builder so the
    attention operator shapes stay identical across every layer family.
    """
    tokens = batch * query_len
    d_model = config.d_model
    graph.add(LayerNormOp(name=f"{prefix}_ln1", category=LayerCategory.LAYERNORM,
                          precision=precision, rows=tokens, hidden_dim=d_model))
    graph.add(MatMulOp(name=f"{prefix}_qkv", category=LayerCategory.QKV_GEN,
                       precision=precision, m=tokens, k=d_model, n=config.qkv_output_dim,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    if kv_cache_update:
        graph.add(ElementwiseOp(name=f"{prefix}_kv_cache_update", category=LayerCategory.OTHER,
                                precision=precision,
                                elements=2 * batch * config.num_heads * config.resolved_head_dim,
                                ops_per_element=1.0, operands=1))
    append_attention_ops(graph, config, batch, query_len, kv_len, precision, prefix)
    graph.add(MatMulOp(name=f"{prefix}_proj", category=LayerCategory.PROJECTION,
                       precision=precision,
                       m=tokens, k=config.num_heads * config.resolved_head_dim, n=d_model,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(ElementwiseOp(name=f"{prefix}_residual1", category=LayerCategory.OTHER,
                            precision=precision, elements=tokens * d_model))
    graph.add(LayerNormOp(name=f"{prefix}_ln2", category=LayerCategory.LAYERNORM,
                          precision=precision, rows=tokens, hidden_dim=d_model))


def _ffn_ops(graph: OperatorGraph, config: TransformerLayerConfig, tokens: int,
             precision: Precision, prefix: str) -> None:
    """Append the FFN operators (plain or gated) to the graph."""
    d_model, d_ff = config.d_model, config.d_ff
    if config.gated_ffn:
        ffn1_out = 2 * d_ff
    else:
        ffn1_out = d_ff
    graph.add(MatMulOp(
        name=f"{prefix}_ffn1", category=LayerCategory.FFN1, precision=precision,
        m=tokens, k=d_model, n=ffn1_out, stationary_weights=True,
        weight_source=OperandSource.HBM))
    graph.add(GeLUOp(
        name=f"{prefix}_gelu", category=LayerCategory.GELU, precision=precision,
        elements=tokens * d_ff))
    if config.gated_ffn:
        graph.add(ElementwiseOp(
            name=f"{prefix}_gate_mul", category=LayerCategory.GELU, precision=precision,
            elements=tokens * d_ff, ops_per_element=1.0, operands=2))
    graph.add(MatMulOp(
        name=f"{prefix}_ffn2", category=LayerCategory.FFN2, precision=precision,
        m=tokens, k=d_ff, n=d_model, stationary_weights=True,
        weight_source=OperandSource.HBM))


def build_prefill_layer(config: TransformerLayerConfig, batch: int, seq_len: int,
                        precision: Precision = Precision.INT8,
                        name: str = "prefill_layer") -> OperatorGraph:
    """Operator graph of one Transformer layer in the prefill stage."""
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and seq_len must be positive")
    tokens = batch * seq_len
    graph = OperatorGraph(name=name)
    append_attention_block(graph, config, batch, seq_len, seq_len, precision, name)
    _ffn_ops(graph, config, tokens, precision, name)
    graph.add(ElementwiseOp(name=f"{name}_residual2", category=LayerCategory.OTHER,
                            precision=precision, elements=tokens * config.d_model))
    return graph


def build_decode_layer(config: TransformerLayerConfig, batch: int, kv_len: int,
                       precision: Precision = Precision.INT8,
                       name: str = "decode_layer") -> OperatorGraph:
    """Operator graph of one Transformer layer processing one decode token.

    ``kv_len`` is the KV-cache length seen by the attention of this step
    (prompt length plus tokens generated so far).
    """
    if batch <= 0 or kv_len <= 0:
        raise ValueError("batch and kv_len must be positive")
    tokens = batch  # one new token per sequence
    graph = OperatorGraph(name=name)
    append_attention_block(graph, config, batch, 1, kv_len, precision, name,
                           kv_cache_update=True)
    _ffn_ops(graph, config, tokens, precision, name)
    graph.add(ElementwiseOp(name=f"{name}_residual2", category=LayerCategory.OTHER,
                            precision=precision, elements=tokens * config.d_model))
    return graph
