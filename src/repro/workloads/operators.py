"""Operator definitions for generative-model inference workloads.

Each operator carries exactly the information the architecture model needs:
its shape, its numeric precision, which layer category it belongs to (for the
Fig. 6-style breakdowns), whether its "weight" operand is a true, pre-loadable
layer weight or a runtime activation (attention score/value matrices), and
where its operands live before the operator starts (HBM for layer weights,
CMEM for activations and the KV cache of the layer currently being computed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common import Precision


class LayerCategory(enum.Enum):
    """Layer categories used by the paper's latency/energy breakdowns."""

    QKV_GEN = "QKV Gen"
    ATTENTION = "Attention"
    PROJECTION = "Proj."
    FFN1 = "FFN1"
    FFN2 = "FFN2"
    LAYERNORM = "LayerNorm"
    GELU = "GeLU"
    ROUTING = "Routing"
    CONDITIONING = "Conditioning"
    EMBEDDING = "Embedding"
    PREDICTION_HEAD = "Prediction Head"
    OTHER = "Other"


class OperandSource(enum.Enum):
    """Where an operator's large operand resides before execution."""

    HBM = "hbm"
    CMEM = "cmem"
    VMEM = "vmem"


@dataclass(frozen=True)
class Operator:
    """Base class for all workload operators."""

    name: str
    category: LayerCategory
    precision: Precision = Precision.INT8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator needs a non-empty name")

    @property
    def is_matmul(self) -> bool:
        """Whether this operator runs on the matrix units."""
        return isinstance(self, MatMulOp)

    @property
    def flops(self) -> int:
        """Floating-point / integer operations performed (2 per MAC)."""
        raise NotImplementedError

    @property
    def input_bytes(self) -> int:
        """Bytes of activations read by the operator."""
        raise NotImplementedError

    @property
    def output_bytes(self) -> int:
        """Bytes of results produced by the operator."""
        raise NotImplementedError

    @property
    def weight_bytes(self) -> int:
        """Bytes of weights (zero for vector operators)."""
        return 0


@dataclass(frozen=True)
class MatMulOp(Operator):
    """A (possibly batched) GEMM/GEMV ``[m, k] × [k, n]`` executed ``batch`` times.

    Attributes
    ----------
    m, k, n:
        Per-instance GEMM dimensions.
    batch:
        Number of independent instances (e.g. ``batch × heads`` attention
        matmuls).  Instances share no operands.
    stationary_weights:
        ``True`` for layer weights that can be staged through the weight FIFO
        of a digital MXU (QKV/projection/FFN matrices); ``False`` for runtime
        operands such as ``Kᵀ`` and ``V`` in attention.
    weight_source:
        Memory level where the ``[k, n]`` operand initially resides.
    activation_source:
        Memory level where the ``[m, k]`` operand initially resides.
    """

    m: int = 1
    k: int = 1
    n: int = 1
    batch: int = 1
    stationary_weights: bool = True
    weight_source: OperandSource = OperandSource.HBM
    activation_source: OperandSource = OperandSource.CMEM

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.m <= 0 or self.k <= 0 or self.n <= 0 or self.batch <= 0:
            raise ValueError(
                f"matmul '{self.name}' dimensions must be positive, got "
                f"m={self.m}, k={self.k}, n={self.n}, batch={self.batch}")

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations across all instances."""
        return self.batch * self.m * self.k * self.n

    @property
    def flops(self) -> int:
        """Total operations (2 per MAC)."""
        return 2 * self.macs

    @property
    def weight_bytes(self) -> int:
        """Bytes of the ``[k, n]`` operand(s)."""
        per_instance = self.k * self.n * self.precision.bytes
        if self.stationary_weights:
            # A true weight matrix is shared by every instance of the batch.
            return per_instance
        return self.batch * per_instance

    @property
    def input_bytes(self) -> int:
        """Bytes of the ``[m, k]`` operand(s)."""
        return self.batch * self.m * self.k * self.precision.bytes

    @property
    def output_bytes(self) -> int:
        """Bytes of the ``[m, n]`` result(s)."""
        return self.batch * self.m * self.n * self.precision.accumulator_bytes

    @property
    def is_gemv_like(self) -> bool:
        """Whether the operand shape is GEMV-like (tiny reduction-parallel M)."""
        return self.m <= 16

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte of operand traffic (roofline x-axis)."""
        traffic = self.weight_bytes + self.input_bytes + self.output_bytes
        return self.macs / traffic if traffic > 0 else 0.0


@dataclass(frozen=True)
class SoftmaxOp(Operator):
    """Row-wise Softmax over ``rows`` rows of ``row_length`` elements."""

    rows: int = 1
    row_length: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rows <= 0 or self.row_length <= 0:
            raise ValueError(f"softmax '{self.name}' dimensions must be positive")

    @property
    def elements(self) -> int:
        """Total normalised elements."""
        return self.rows * self.row_length

    @property
    def flops(self) -> int:
        """Scalar operations (detailed count lives in the VPU cost model)."""
        return self.elements

    @property
    def input_bytes(self) -> int:
        return self.elements * self.precision.bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.precision.bytes


@dataclass(frozen=True)
class LayerNormOp(Operator):
    """LayerNorm over ``rows`` rows of ``hidden_dim`` elements."""

    rows: int = 1
    hidden_dim: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rows <= 0 or self.hidden_dim <= 0:
            raise ValueError(f"layernorm '{self.name}' dimensions must be positive")

    @property
    def elements(self) -> int:
        """Total normalised elements."""
        return self.rows * self.hidden_dim

    @property
    def flops(self) -> int:
        return self.elements

    @property
    def input_bytes(self) -> int:
        return self.elements * self.precision.bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.precision.bytes


@dataclass(frozen=True)
class GeLUOp(Operator):
    """Elementwise GeLU (tanh approximation) over ``elements`` values."""

    elements: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.elements <= 0:
            raise ValueError(f"gelu '{self.name}' needs a positive element count")

    @property
    def flops(self) -> int:
        return self.elements

    @property
    def input_bytes(self) -> int:
        return self.elements * self.precision.bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.precision.bytes


@dataclass(frozen=True)
class ElementwiseOp(Operator):
    """Generic elementwise operator (residual add, DiT shift & scale, gating)."""

    elements: int = 1
    ops_per_element: float = 1.0
    operands: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.elements <= 0:
            raise ValueError(f"elementwise '{self.name}' needs a positive element count")
        if self.ops_per_element <= 0 or self.operands <= 0:
            raise ValueError(f"elementwise '{self.name}' needs positive op/operand counts")

    @property
    def flops(self) -> int:
        return int(round(self.elements * self.ops_per_element))

    @property
    def input_bytes(self) -> int:
        return self.elements * self.operands * self.precision.bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.precision.bytes
