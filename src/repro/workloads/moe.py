"""Mixture-of-Experts Transformer workloads (e.g. Mixtral-8x7B).

An MoE layer keeps the attention half of a dense Transformer layer but
replaces the FFN with ``num_experts`` expert FFNs behind a learned router:
each token's activations are scored against every expert (a small matmul),
the scores pass through a softmax + top-k selection — modelled by the
:class:`GatingOp` vector operator — and the token is processed by its
``top_k`` experts, whose outputs are combined by the gate weights.

This module is also the worked example of the two open registries: it
registers a brand-new operator type (:class:`GatingOp`) purely through the
vector cost registry — no edit to ``repro.core`` — and a brand-new scenario
(``moe-serving``) purely through the scenario registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision, ceil_div
from repro.vector.costs import VectorOpCost, register_vector_cost
from repro.vector.softmax import softmax_op_counts
from repro.workloads.graph import OperatorGraph
from repro.workloads.llm import LLMConfig, llm_settings_from_knobs
from repro.workloads.operators import (
    ElementwiseOp,
    GeLUOp,
    LayerCategory,
    MatMulOp,
    OperandSource,
    Operator,
)
from repro.workloads.scenario import (
    LLMInferenceSettings,
    Scenario,
    ScenarioSpec,
    activation_hops,
    llm_serving_stages,
)
from repro.workloads.transformer import append_attention_block


# ------------------------------------------------------------------ operator
@dataclass(frozen=True)
class GatingOp(Operator):
    """Expert gating: row-wise softmax over expert scores plus top-k select."""

    rows: int = 1
    num_experts: int = 1
    top_k: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rows <= 0 or self.num_experts <= 0:
            raise ValueError(f"gating '{self.name}' dimensions must be positive")
        if not 1 <= self.top_k <= self.num_experts:
            raise ValueError(
                f"gating '{self.name}' top_k must be in [1, num_experts]")

    @property
    def elements(self) -> int:
        """Expert scores normalised per invocation."""
        return self.rows * self.num_experts

    @property
    def flops(self) -> int:
        """Scalar operations (detailed count lives in the cost model)."""
        return self.elements

    @property
    def input_bytes(self) -> int:
        return self.elements * self.precision.bytes

    @property
    def output_bytes(self) -> int:
        # Per selected expert: one gate weight plus one int32 routing index.
        return self.rows * self.top_k * (self.precision.bytes + 4)


def _gating_cost(op: GatingOp) -> VectorOpCost:
    """Softmax over the expert axis plus ``top_k`` selection passes."""
    smx = softmax_op_counts(op.rows, op.num_experts, op.precision.bytes)
    selection_ops = op.rows * op.num_experts * op.top_k
    return VectorOpCost(total_ops=smx.total_ops + selection_ops,
                        input_bytes=op.input_bytes,
                        output_bytes=op.output_bytes)


register_vector_cost(GatingOp, _gating_cost)


# -------------------------------------------------------------------- config
@dataclass(frozen=True)
class MoEConfig(LLMConfig):
    """A decoder-only LLM whose FFN is a mixture of experts.

    ``d_ff`` is the *per-expert* FFN inner dimension (Mixtral-8x7B: 14336).
    """

    num_experts: int = 8
    top_k: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_experts <= 0:
            raise ValueError("num_experts must be positive")
        if not 1 <= self.top_k <= self.num_experts:
            raise ValueError("top_k must be in [1, num_experts]")

    @property
    def expert_weight_bytes_per_layer(self) -> int:
        """INT8 weight footprint of one layer's experts plus the router."""
        if self.gated_ffn:
            per_expert = self.d_model * 2 * self.d_ff + self.d_ff * self.d_model
        else:
            per_expert = self.d_model * self.d_ff + self.d_ff * self.d_model
        return self.num_experts * per_expert + self.d_model * self.num_experts

    @property
    def approximate_parameters(self) -> int:
        """Parameter count with every expert (not just the active ones)."""
        layer = self.layer_config()
        attn = (layer.d_model * layer.qkv_output_dim
                + layer.num_heads * layer.resolved_head_dim * layer.d_model)
        embeddings = 2 * self.vocab_size * self.d_model
        return self.num_layers * (attn + self.expert_weight_bytes_per_layer) + embeddings

    def build_layer(self, stage: str, batch: int, seq_len: int,
                    kv_len: int | None = None,
                    precision: Precision = Precision.INT8) -> "OperatorGraph":
        """MoE layer-graph hook: router + gating + expert FFNs."""
        return build_moe_layer(self, stage, batch, seq_len, kv_len, precision)


#: Mixtral 8x7B (Jiang et al., 2024): 8 experts, 2 active per token.
MIXTRAL_8X7B = MoEConfig(name="mixtral-8x7b", num_layers=32, num_heads=32,
                         d_model=4096, d_ff=14336, vocab_size=32000,
                         gated_ffn=True, num_experts=8, top_k=2)


# --------------------------------------------------------------------- graph
def build_moe_layer(config: MoEConfig, stage: str, batch: int, seq_len: int,
                    kv_len: int | None = None,
                    precision: Precision = Precision.INT8) -> OperatorGraph:
    """Build one MoE Transformer layer in the given inference stage.

    The attention half matches the dense layer builders exactly; the FFN half
    is router → gating → expert FFNs (a batched matmul over the experts, each
    processing its share of the ``top_k``-dispatched tokens) → weighted
    combine.
    """
    if stage not in ("prefill", "decode"):
        raise ValueError(f"unknown stage '{stage}' (expected 'prefill' or 'decode')")
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and seq_len must be positive")
    layer = config.layer_config()
    d_model = config.d_model
    name = f"{config.name}_{stage}"
    graph = OperatorGraph(name=name)

    if stage == "prefill":
        tokens = batch * seq_len
        query_len, effective_kv = seq_len, seq_len
    else:
        tokens = batch  # one new token per sequence
        query_len = 1
        effective_kv = kv_len if kv_len is not None else seq_len

    # Attention half — the exact operator shapes of the dense layer builders.
    append_attention_block(graph, layer, batch, query_len, effective_kv, precision,
                           name, kv_cache_update=(stage == "decode"))

    # MoE half: router scores, gating, expert FFNs, weighted combine.
    graph.add(MatMulOp(name=f"{name}_router", category=LayerCategory.ROUTING,
                       precision=precision, m=tokens, k=d_model, n=config.num_experts,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(GatingOp(name=f"{name}_gating", category=LayerCategory.ROUTING,
                       precision=precision, rows=tokens,
                       num_experts=config.num_experts, top_k=config.top_k))
    # Perfectly balanced routing: each expert processes its share of the
    # top_k-dispatched tokens; instances share no operands (distinct weights).
    tokens_per_expert = ceil_div(tokens * config.top_k, config.num_experts)
    dispatched = tokens * config.top_k
    ffn1_out = 2 * config.d_ff if config.gated_ffn else config.d_ff
    graph.add(MatMulOp(name=f"{name}_expert_ffn1", category=LayerCategory.FFN1,
                       precision=precision, m=tokens_per_expert, k=d_model, n=ffn1_out,
                       batch=config.num_experts,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(GeLUOp(name=f"{name}_expert_act", category=LayerCategory.GELU,
                     precision=precision, elements=dispatched * config.d_ff))
    if config.gated_ffn:
        graph.add(ElementwiseOp(name=f"{name}_expert_gate_mul", category=LayerCategory.GELU,
                                precision=precision, elements=dispatched * config.d_ff,
                                ops_per_element=1.0, operands=2))
    graph.add(MatMulOp(name=f"{name}_expert_ffn2", category=LayerCategory.FFN2,
                       precision=precision, m=tokens_per_expert, k=config.d_ff, n=d_model,
                       batch=config.num_experts,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    graph.add(ElementwiseOp(name=f"{name}_expert_combine", category=LayerCategory.ROUTING,
                            precision=precision, elements=tokens * d_model,
                            ops_per_element=2.0 * config.top_k,
                            operands=config.top_k + 1))
    graph.add(ElementwiseOp(name=f"{name}_residual2", category=LayerCategory.OTHER,
                            precision=precision, elements=tokens * d_model))
    return graph


# ------------------------------------------------------------------ scenario
def build_moe_serving_scenario(config: MoEConfig,
                               settings: LLMInferenceSettings) -> Scenario:
    """MoE serving: the LLM serving shape over the MoE layer graph."""
    return Scenario(
        name="moe-serving",
        model_name=config.name,
        stages=llm_serving_stages(config, settings, config.build_layer),
        items=float(settings.batch * settings.output_tokens),
        item_unit="token",
        pipeline_units=config.num_layers,
        hops=activation_hops(config.d_model, settings))


#: Spec of the MoE scenario (registered in ``workloads.registry``).  Expert
#: (tensor) sharding is not modelled, so the spec declares no tensor-parallel
#: capability and the multi-device model rejects the combination.
MOE_SERVING_SCENARIO = ScenarioSpec(
    name="moe-serving",
    description="prefill + KV-sampled decode over mixture-of-experts layers",
    model_type=MoEConfig,
    settings_type=LLMInferenceSettings,
    build=build_moe_serving_scenario,
    make_settings=llm_settings_from_knobs)
