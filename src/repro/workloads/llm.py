"""Large language model configurations and whole-model graph builders.

The paper evaluates a GPT-3-30B Transformer layer (Table III: 48 layers,
56 heads, hidden dimension 7168) and, for the motivating GPU breakdown
(Fig. 2d), Llama2-13B.  Additional configurations are included so the
simulator can be exercised across model scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision
from repro.workloads.graph import OperatorGraph
from repro.workloads.operators import (
    ElementwiseOp,
    LayerCategory,
    LayerNormOp,
    MatMulOp,
    OperandSource,
)
from repro.workloads.scenario import (
    LLMInferenceSettings,
    PipelineHop,
    Scenario,
    ScenarioKnobs,
    ScenarioSpec,
    TensorParallelSpec,
    activation_hops,
    llm_serving_stages,
)
from repro.workloads.transformer import TransformerLayerConfig, build_decode_layer, build_prefill_layer


@dataclass(frozen=True)
class LLMConfig:
    """Architecture description of a decoder-only LLM."""

    name: str
    num_layers: int
    num_heads: int
    d_model: int
    d_ff: int
    vocab_size: int = 50272
    gated_ffn: bool = False
    head_dim: int | None = None

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.num_heads <= 0 or self.d_model <= 0 or self.d_ff <= 0:
            raise ValueError(f"model '{self.name}' has non-positive dimensions")
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")

    def layer_config(self) -> TransformerLayerConfig:
        """Shape of one Transformer layer of this model."""
        return TransformerLayerConfig(
            d_model=self.d_model, num_heads=self.num_heads, d_ff=self.d_ff,
            head_dim=self.head_dim, gated_ffn=self.gated_ffn)

    @property
    def approximate_parameters(self) -> int:
        """Approximate parameter count (layer weights + embeddings)."""
        layer = self.layer_config().weight_bytes_per_layer  # one byte per INT8 weight
        embeddings = 2 * self.vocab_size * self.d_model
        return self.num_layers * layer + embeddings

    def kv_cache_bytes(self, batch: int, seq_len: int,
                       precision: Precision = Precision.INT8) -> int:
        """KV-cache footprint for the whole model at the given context length."""
        if batch <= 0 or seq_len <= 0:
            raise ValueError("batch and seq_len must be positive")
        head_dim = self.layer_config().resolved_head_dim
        per_layer = 2 * batch * seq_len * self.num_heads * head_dim * precision.bytes
        return self.num_layers * per_layer

    def build_layer(self, stage: str, batch: int, seq_len: int,
                    kv_len: int | None = None,
                    precision: Precision = Precision.INT8) -> OperatorGraph:
        """Layer-graph builder hook the LLM-shaped scenarios dispatch through.

        Subclasses with a different layer architecture (e.g.
        :class:`~repro.workloads.moe.MoEConfig`) override this, so generic
        scenarios such as chat-serving always price the model's real layers.
        """
        return build_llm_layer(self, stage, batch, seq_len, kv_len, precision)


#: GPT-3 30B as configured in Table III of the paper.
GPT3_30B = LLMConfig(name="gpt3-30b", num_layers=48, num_heads=56, d_model=7168, d_ff=4 * 7168)

#: GPT-3 175B (Brown et al., 2020).
GPT3_175B = LLMConfig(name="gpt3-175b", num_layers=96, num_heads=96, d_model=12288, d_ff=4 * 12288)

#: Llama-2 7B (gated FFN).
LLAMA2_7B = LLMConfig(name="llama2-7b", num_layers=32, num_heads=32, d_model=4096, d_ff=11008,
                      vocab_size=32000, gated_ffn=True)

#: Llama-2 13B, the model profiled in Fig. 2d of the paper.
LLAMA2_13B = LLMConfig(name="llama2-13b", num_layers=40, num_heads=40, d_model=5120, d_ff=13824,
                       vocab_size=32000, gated_ffn=True)


def build_llm_layer(config: LLMConfig, stage: str, batch: int, seq_len: int,
                    kv_len: int | None = None,
                    precision: Precision = Precision.INT8) -> OperatorGraph:
    """Build one Transformer layer of the model in the given inference stage.

    Parameters
    ----------
    stage:
        ``"prefill"`` or ``"decode"``.
    seq_len:
        Prompt length (prefill) or, for decode, the prompt length used to
        derive the default ``kv_len``.
    kv_len:
        KV-cache length for decode; defaults to ``seq_len``.
    """
    layer = config.layer_config()
    if stage == "prefill":
        return build_prefill_layer(layer, batch, seq_len, precision,
                                   name=f"{config.name}_prefill")
    if stage == "decode":
        effective_kv = kv_len if kv_len is not None else seq_len
        return build_decode_layer(layer, batch, effective_kv, precision,
                                  name=f"{config.name}_decode")
    raise ValueError(f"unknown stage '{stage}' (expected 'prefill' or 'decode')")


def build_llm_model_graph(config: LLMConfig, stage: str, batch: int, seq_len: int,
                          kv_len: int | None = None,
                          precision: Precision = Precision.INT8) -> OperatorGraph:
    """Whole-model graph: embedding, all Transformer layers, prediction head.

    Used by the Fig. 2d reproduction, which needs the relative weight of the
    pre/post-processing layers against the Transformer stack.
    """
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and seq_len must be positive")
    tokens = batch * seq_len if stage == "prefill" else batch
    graph = OperatorGraph(name=f"{config.name}_{stage}_model")

    # Token embedding: a table gather plus positional addition, handled by the
    # vector/scalar path — negligible compute, mostly memory traffic.
    graph.add(ElementwiseOp(
        name=f"{config.name}_token_embedding", category=LayerCategory.EMBEDDING,
        precision=precision, elements=tokens * config.d_model,
        ops_per_element=1.0, operands=1))

    layer_graph = build_llm_layer(config, stage, batch, seq_len, kv_len, precision)
    for _ in range(config.num_layers):
        graph.extend(layer_graph)

    graph.add(LayerNormOp(name=f"{config.name}_final_ln", category=LayerCategory.PREDICTION_HEAD,
                          precision=precision, rows=tokens, hidden_dim=config.d_model))
    graph.add(MatMulOp(name=f"{config.name}_lm_head", category=LayerCategory.PREDICTION_HEAD,
                       precision=precision, m=tokens, k=config.d_model, n=config.vocab_size,
                       stationary_weights=True, weight_source=OperandSource.HBM))
    return graph


# ------------------------------------------------------------------ scenario
def build_llm_serving_scenario(config: LLMConfig,
                               settings: LLMInferenceSettings) -> Scenario:
    """The paper's serving scenario: prefill plus the KV-sampled decode phase.

    Layer graphs come from the model's ``build_layer`` hook, so LLMConfig
    subclasses with a different layer architecture serve their real layers.
    """
    return Scenario(
        name="llm-serving",
        model_name=config.name,
        stages=llm_serving_stages(config, settings, config.build_layer),
        items=float(settings.batch * settings.output_tokens),
        item_unit="token",
        pipeline_units=config.num_layers,
        hops=activation_hops(config.d_model, settings))


def tensor_shard_llm(llm: LLMConfig, degree: int) -> LLMConfig:
    """A Megatron-style ``degree``-way shard of the model (heads and FFN split).

    Raises
    ------
    ValueError
        If heads or the FFN inner dimension do not divide evenly, or the
        model is not a plain dense LLM (expert sharding is not modelled, and
        downcasting an MoE model to a dense shard would silently drop its
        router/gating/expert operators).
    """
    if degree == 1:
        return llm
    if type(llm) is not LLMConfig:
        raise ValueError(
            f"cannot tensor-shard {llm.name}: sharding is only modelled for dense "
            f"LLMConfig models, not {type(llm).__name__}")
    if llm.num_heads % degree != 0 or llm.d_ff % degree != 0:
        raise ValueError(
            f"cannot shard {llm.name} (heads={llm.num_heads}, d_ff={llm.d_ff}) "
            f"over {degree} devices evenly")
    return LLMConfig(
        name=f"{llm.name}-tp{degree}", num_layers=llm.num_layers,
        num_heads=llm.num_heads // degree, d_model=llm.d_model,
        d_ff=llm.d_ff // degree, vocab_size=llm.vocab_size, gated_ffn=llm.gated_ffn,
        head_dim=llm.layer_config().resolved_head_dim)


def llm_all_reduce_hops(llm: LLMConfig,
                        settings: LLMInferenceSettings) -> tuple[PipelineHop, ...]:
    """Activation volumes all-reduced per request group under tensor parallelism.

    Two all-reduces of the layer activations per layer (after attention and
    after the FFN), for the whole prompt once and for every generated token.
    """
    element_bytes = settings.precision.bytes
    layers = float(llm.num_layers)
    return (
        PipelineHop(bytes=settings.batch * settings.input_tokens * llm.d_model * element_bytes,
                    count=2.0 * layers),
        PipelineHop(bytes=settings.batch * llm.d_model * element_bytes,
                    count=2.0 * layers * settings.output_tokens),
    )


def llm_settings_from_knobs(knobs: ScenarioKnobs) -> LLMInferenceSettings:
    return LLMInferenceSettings(
        batch=knobs.batch, input_tokens=knobs.input_tokens,
        output_tokens=knobs.output_tokens, precision=knobs.precision,
        decode_kv_samples=knobs.decode_kv_samples)


#: Spec of the default LLM scenario (registered in ``workloads.registry``).
LLM_SERVING_SCENARIO = ScenarioSpec(
    name="llm-serving",
    description="prefill of the whole prompt plus the KV-sampled decode phase",
    model_type=LLMConfig,
    settings_type=LLMInferenceSettings,
    build=build_llm_serving_scenario,
    make_settings=llm_settings_from_knobs,
    tensor_parallel=TensorParallelSpec(shard=tensor_shard_llm,
                                       all_reduce_hops=llm_all_reduce_hops))
