"""Declarative inference scenarios: stages, deployment hops and specs.

The simulator used to grow one bespoke ``simulate_*`` method per workload
shape.  This module replaces that with a declarative pipeline: a workload
emits a :class:`Scenario` — a list of :class:`ScenarioStage` objects (operator
graph + repeat factor, e.g. one per KV-cache sample of the decode phase) plus
the deployment metadata multi-device models need (pipeline-sliceable unit
count, activation hops) — and one generic executor
(:meth:`repro.core.simulator.InferenceSimulator.run_scenario`) runs any of
them.  A :class:`ScenarioSpec` packages the builder with its settings type and
capability declaration so registries, the sweep grid and the CLI can fan out
over scenarios without knowing their internals.

The evaluation settings dataclasses live here too (they are workload-level
concepts); :mod:`repro.core.simulator` re-exports them for compatibility.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.common import Precision
from repro.workloads.graph import OperatorGraph


# ------------------------------------------------------------------ settings
@dataclass(frozen=True)
class LLMInferenceSettings:
    """Evaluation settings for LLM inference (paper defaults)."""

    batch: int = 8
    input_tokens: int = 1024
    output_tokens: int = 512
    precision: Precision = Precision.INT8
    #: Number of KV-cache lengths at which the decode layer is evaluated; the
    #: decode phase cost is the average of these samples times the token count.
    decode_kv_samples: int = 4

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("batch, input_tokens and output_tokens must be positive")
        if self.decode_kv_samples <= 0:
            raise ValueError("decode_kv_samples must be positive")

    def decode_kv_lengths(self) -> list[int]:
        """Representative KV-cache lengths spanning the decode phase."""
        samples = min(self.decode_kv_samples, self.output_tokens)
        if samples == 1:
            return [self.input_tokens + self.output_tokens // 2]
        step = self.output_tokens / samples
        return [int(self.input_tokens + step * (i + 0.5)) for i in range(samples)]

    def summary(self) -> str:
        """Human-readable settings summary used in tables and exports."""
        return f"in={self.input_tokens} out={self.output_tokens}"


@dataclass(frozen=True)
class DiTInferenceSettings:
    """Evaluation settings for DiT inference (paper defaults)."""

    batch: int = 8
    image_resolution: int = 512
    sampling_steps: int = 50
    precision: Precision = Precision.INT8

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.image_resolution <= 0 or self.sampling_steps <= 0:
            raise ValueError("batch, image_resolution and sampling_steps must be positive")

    def summary(self) -> str:
        """Human-readable settings summary used in tables and exports."""
        return f"{self.image_resolution}px steps={self.sampling_steps}"


@dataclass(frozen=True)
class ScenarioKnobs:
    """The flat knob set sweep grids and the CLI expose.

    Every scenario's ``make_settings`` hook receives one of these and picks
    the knobs it understands, so a single grid definition can drive scenarios
    with entirely different settings types.
    """

    batch: int = 8
    precision: Precision = Precision.INT8
    input_tokens: int = 1024
    output_tokens: int = 512
    decode_kv_samples: int = 4
    image_resolution: int = 512
    sampling_steps: int = 50


# ------------------------------------------------------------------ scenario
@dataclass(frozen=True)
class ScenarioStage:
    """One stage of a scenario: an operator graph and how often it repeats.

    ``repeats_per_unit`` counts executions per pipeline-sliceable unit of the
    scenario (a Transformer layer, a DiT block): 1.0 for an LLM prefill
    stage, ``tokens_per_kv_sample`` for a decode stage, ``sampling_steps``
    for the DiT block stage.  The single-chip repeat factor is
    ``repeats_per_unit × scenario.pipeline_units``; a pipeline-parallel
    deployment over ``d`` devices scales it by ``ceil(units / d)`` instead,
    which is what makes the multi-device model generic.
    """

    name: str
    graph: OperatorGraph
    repeats_per_unit: float = 1.0

    def __post_init__(self) -> None:
        if self.repeats_per_unit <= 0:
            raise ValueError("repeats_per_unit must be positive")


@dataclass(frozen=True)
class PipelineHop:
    """Activation traffic crossing a pipeline-stage boundary."""

    bytes: float
    count: float = 1.0

    def __post_init__(self) -> None:
        if self.bytes < 0 or self.count < 0:
            raise ValueError("hop bytes and count must be non-negative")


@dataclass(frozen=True)
class Scenario:
    """A fully specified inference scenario, ready for generic execution."""

    name: str
    model_name: str
    stages: tuple[ScenarioStage, ...]
    #: Items produced per request group (generated tokens, images) and their
    #: unit, used to convert latency into throughput.
    items: float = 1.0
    item_unit: str = "token"
    #: Number of pipeline-sliceable units (layers/blocks) the stages span.
    pipeline_units: int = 1
    #: Per-group activation hops across each pipeline-stage boundary.
    hops: tuple[PipelineHop, ...] = ()

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"scenario '{self.name}' needs at least one stage")
        if self.items <= 0:
            raise ValueError("items must be positive")
        if self.pipeline_units <= 0:
            raise ValueError("pipeline_units must be positive")


# ---------------------------------------------------------------------- spec
@dataclass(frozen=True)
class TensorParallelSpec:
    """How a scenario's model shards under tensor parallelism.

    ``shard`` returns the per-device model of a ``degree``-way shard;
    ``all_reduce_hops`` returns the activation volumes all-reduced per request
    group (bytes × count), which the multi-device model prices on its ring.
    """

    shard: Callable[[Any, int], Any]
    all_reduce_hops: Callable[[Any, Any], "tuple[PipelineHop, ...]"]


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario family: capability, settings and builder."""

    name: str
    description: str
    #: Model configuration class this scenario accepts (capability).
    model_type: type
    #: Settings dataclass the builder expects.
    settings_type: type
    #: ``build(model, settings) -> Scenario``.
    build: Callable[[Any, Any], Scenario]
    #: ``make_settings(knobs) -> settings`` — adapt grid/CLI knobs.
    make_settings: Callable[[ScenarioKnobs], Any]
    #: Tensor-parallel sharding model, if the scenario supports one.
    tensor_parallel: TensorParallelSpec | None = None

    def supports(self, model: Any) -> bool:
        """Capability check: whether the scenario can run this model."""
        return isinstance(model, self.model_type)

    def check(self, model: Any, settings: Any) -> None:
        """Validate a (model, settings) pair against this spec.

        Raises
        ------
        ValueError
            If the model or settings type does not match the spec.
        """
        if not self.supports(model):
            raise ValueError(
                f"scenario '{self.name}' expects a {self.model_type.__name__} model, "
                f"got {type(model).__name__} '{getattr(model, 'name', model)}'")
        if not isinstance(settings, self.settings_type):
            raise ValueError(
                f"model '{getattr(model, 'name', model)}' and settings type "
                f"{type(settings).__name__} do not match scenario '{self.name}' "
                f"(expected {self.settings_type.__name__})")

    def summarize(self, settings: Any) -> str:
        """Human-readable settings summary for tables and exports."""
        summary = getattr(settings, "summary", None)
        return summary() if callable(summary) else str(settings)


# ------------------------------------------------------------ shared builders
def llm_serving_stages(model: Any, settings: LLMInferenceSettings,
                       build_layer: Callable[..., OperatorGraph],
                       ) -> tuple[ScenarioStage, ...]:
    """Prefill + KV-sampled decode stages shared by the LLM-shaped scenarios.

    ``build_layer(stage, batch, seq_len, kv_len, precision)`` produces one
    layer graph; the KV-sampling policy (``settings.decode_kv_lengths``)
    turns the decode phase into one stage per sampled cache length, each
    weighted by its share of the generated tokens.
    """
    stages = [ScenarioStage(
        name="prefill",
        graph=build_layer("prefill", settings.batch, settings.input_tokens, None,
                          settings.precision))]
    kv_lengths = settings.decode_kv_lengths()
    tokens_per_sample = settings.output_tokens / len(kv_lengths)
    for kv_len in kv_lengths:
        stages.append(ScenarioStage(
            name=f"decode[kv={kv_len}]" if len(kv_lengths) > 1 else "decode",
            graph=build_layer("decode", settings.batch, settings.input_tokens, kv_len,
                              settings.precision),
            repeats_per_unit=tokens_per_sample))
    return tuple(stages)


def activation_hops(d_model: int, settings: LLMInferenceSettings,
                    ) -> tuple[PipelineHop, ...]:
    """Pipeline-boundary hops of an LLM-shaped scenario.

    One hop of the whole prompt's activations, then one per generated token.
    """
    element_bytes = settings.precision.bytes
    return (
        PipelineHop(bytes=settings.batch * settings.input_tokens * d_model * element_bytes),
        PipelineHop(bytes=settings.batch * d_model * element_bytes,
                    count=float(settings.output_tokens)),
    )
