"""Survey of published CIM designs (Fig. 1 of the paper).

Fig. 1 plots the computing performance of CIM-based designs over time against
two established accelerators (NVIDIA A100 and Google TPUv4) and the >100 TOPS
target of the paper's CIM-based TPU.  The data points — all taken from the
publications the paper cites — are reproduced here so the Fig. 1 bench can
regenerate the series.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CIMDesignRecord:
    """One published design point of Fig. 1."""

    name: str
    venue: str
    year: int
    peak_tops: float
    area_mm2: float
    technology_nm: int
    supports_floating_point: bool
    is_cim: bool
    reference: str

    def __post_init__(self) -> None:
        if self.peak_tops <= 0 or self.area_mm2 <= 0 or self.technology_nm <= 0:
            raise ValueError(f"invalid record for {self.name}")
        if self.year < 2015 or self.year > 2030:
            raise ValueError(f"implausible year {self.year} for {self.name}")

    @property
    def tops_per_mm2(self) -> float:
        """Area efficiency of the design."""
        return self.peak_tops / self.area_mm2


#: The designs plotted in Fig. 1, ordered chronologically.
CIM_DESIGN_SURVEY: list[CIMDesignRecord] = [
    CIMDesignRecord(name="Twin-8T SRAM CIM macro", venue="ISSCC", year=2019,
                    peak_tops=0.0177, area_mm2=0.003, technology_nm=65,
                    supports_floating_point=False, is_cim=True, reference="[7]"),
    CIMDesignRecord(name="7nm FinFET CIM macro", venue="ISSCC", year=2020,
                    peak_tops=0.4551, area_mm2=0.0032, technology_nm=7,
                    supports_floating_point=False, is_cim=True, reference="[8]"),
    CIMDesignRecord(name="Reconfigurable digital CIM processor", venue="ISSCC", year=2022,
                    peak_tops=1.35, area_mm2=0.94, technology_nm=28,
                    supports_floating_point=True, is_cim=True, reference="[9]"),
    CIMDesignRecord(name="Intensive-CIM sparse-digital processor", venue="ISSCC", year=2023,
                    peak_tops=5.52, area_mm2=4.54, technology_nm=28,
                    supports_floating_point=True, is_cim=True, reference="[10]"),
    CIMDesignRecord(name="Metis AIPU core", venue="ISSCC", year=2024,
                    peak_tops=52.4, area_mm2=6.5, technology_nm=12,
                    supports_floating_point=False, is_cim=True, reference="[11]"),
    CIMDesignRecord(name="NVIDIA A100", venue="IEEE Micro", year=2021,
                    peak_tops=624.0, area_mm2=826.0, technology_nm=7,
                    supports_floating_point=True, is_cim=False, reference="[4]"),
    CIMDesignRecord(name="Google TPUv4", venue="ISCA", year=2023,
                    peak_tops=275.0, area_mm2=780.0, technology_nm=7,
                    supports_floating_point=True, is_cim=False, reference="[6]"),
]


def performance_evolution(cim_only: bool = True) -> list[tuple[int, float]]:
    """(year, peak TOPS) series of the survey, ordered by year."""
    records = [r for r in CIM_DESIGN_SURVEY if r.is_cim] if cim_only else list(CIM_DESIGN_SURVEY)
    return sorted(((r.year, r.peak_tops) for r in records), key=lambda pair: pair[0])


def performance_gap_to_accelerators() -> float:
    """Ratio between the best non-CIM accelerator and the best CIM design."""
    best_cim = max(r.peak_tops for r in CIM_DESIGN_SURVEY if r.is_cim)
    best_accel = max(r.peak_tops for r in CIM_DESIGN_SURVEY if not r.is_cim)
    return best_accel / best_cim
