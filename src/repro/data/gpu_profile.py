"""A100-like GPU device model for the Fig. 2d runtime-breakdown substitution.

The paper motivates its focus on Transformer layers by profiling Llama2-13B
and DiT-XL/2 on NVIDIA A100 GPUs and showing that the Transformer/DiT blocks
account for more than 98 % of inference latency.  We cannot run CUDA in this
environment, so — as recorded in DESIGN.md — the profile is reproduced with a
roofline device model of the A100 executed over the same whole-model operator
graphs.  The figure's conclusion only depends on the *relative* weight of the
embedding / prediction-head layers against the layer stack, which the
roofline model captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.roofline import RooflineModel
from repro.common import Precision
from repro.workloads.dit import DiTConfig, build_dit_model_graph
from repro.workloads.graph import OperatorGraph
from repro.workloads.llm import LLMConfig, build_llm_model_graph
from repro.workloads.operators import LayerCategory


@dataclass(frozen=True)
class GPUDeviceModel:
    """Roofline description of a GPU used for the motivating profile."""

    name: str
    peak_tops: float
    memory_bandwidth_gbps: float
    kernel_launch_overhead_s: float = 6e-6
    device_count: int = 1

    def __post_init__(self) -> None:
        if self.peak_tops <= 0 or self.memory_bandwidth_gbps <= 0:
            raise ValueError("peak throughput and bandwidth must be positive")
        if self.kernel_launch_overhead_s < 0 or self.device_count <= 0:
            raise ValueError("overhead must be non-negative and device_count positive")

    def roofline(self) -> RooflineModel:
        """Roofline of the aggregate device(s)."""
        return RooflineModel(
            peak_ops_per_s=self.peak_tops * 1e12 * self.device_count,
            memory_bandwidth_bytes_per_s=self.memory_bandwidth_gbps * 1e9 * self.device_count)


#: A100-PCIe-40GB: 312 TFLOPS (BF16 tensor core), 1 555 GB/s HBM2e.
A100_PCIE_40GB = GPUDeviceModel(name="a100-pcie-40gb", peak_tops=312.0,
                                memory_bandwidth_gbps=1555.0)

#: Category groups used by Fig. 2d.
_PRE_PROCESS = {LayerCategory.EMBEDDING}
_POST_PROCESS = {LayerCategory.PREDICTION_HEAD}


def _graph_breakdown(graph: OperatorGraph, device: GPUDeviceModel) -> dict[str, float]:
    roofline = device.roofline()
    totals = {"pre_process": 0.0, "core_layers": 0.0, "post_process": 0.0}
    for operator in graph:
        seconds = roofline.execution_seconds(operator, device.kernel_launch_overhead_s)
        if operator.category in _PRE_PROCESS:
            totals["pre_process"] += seconds
        elif operator.category in _POST_PROCESS:
            totals["post_process"] += seconds
        else:
            totals["core_layers"] += seconds
    return totals


def profile_model_breakdown(model: LLMConfig | DiTConfig, device: GPUDeviceModel = A100_PCIE_40GB,
                            batch: int = 1, seq_len: int = 512,
                            image_resolution: int = 512,
                            precision: Precision = Precision.BF16) -> dict[str, float]:
    """Reproduce one row of Fig. 2d: latency shares of pre / core / post layers.

    Returns a dictionary with absolute seconds per group plus the fractional
    shares (keys suffixed ``_fraction``).
    """
    if isinstance(model, LLMConfig):
        graph = build_llm_model_graph(model, "prefill", batch, seq_len, precision=precision)
    else:
        graph = build_dit_model_graph(model, batch, image_resolution, precision=precision)
    totals = _graph_breakdown(graph, device)
    overall = sum(totals.values())
    result = dict(totals)
    result["total"] = overall
    for key, value in totals.items():
        result[f"{key}_fraction"] = value / overall if overall > 0 else 0.0
    return result
