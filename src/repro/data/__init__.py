"""Reference data sets: the Fig. 1 CIM survey and the Fig. 2d GPU profile."""

from repro.data.cim_survey import CIMDesignRecord, CIM_DESIGN_SURVEY, performance_evolution
from repro.data.gpu_profile import GPUDeviceModel, A100_PCIE_40GB, profile_model_breakdown

__all__ = [
    "CIMDesignRecord",
    "CIM_DESIGN_SURVEY",
    "performance_evolution",
    "GPUDeviceModel",
    "A100_PCIE_40GB",
    "profile_model_breakdown",
]
