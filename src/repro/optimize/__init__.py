"""Multi-objective hardware/deployment co-design optimisation.

The paper's argument is a co-design argument: which CIM/digital-MXU
configuration wins depends on the workload and how it is deployed.  PRs 1-4
built the machinery to *price* any single point (cached sweeps, scenario
pipeline, serving simulator, cluster fleets); this package *searches* the
joint space — TPU design × precision × scheduler × router × autoscaler ×
replica count — for Pareto-optimal designs under declared objectives
(cost per million tokens, p99 TTFT/TPOT, energy per token, chip-hours)
and constraints (SLO attainment floors, HBM fit).

Typical usage::

    from repro.optimize import CodesignOptimizer, DesignSpace
    from repro.sweep import ResultStore
    from repro.workloads.llm import LLAMA2_7B

    space = DesignSpace(designs=("baseline", "design-a"),
                        replica_counts=(2, 4, 8))
    optimizer = CodesignOptimizer(
        LLAMA2_7B, space, strategy="successive-halving",
        arrival_rate=32.0, store=ResultStore("codesign.jsonl"))
    frontier = optimizer.run()          # re-running is pure store lookup

Every surface is an open registry (``OBJECTIVE_REGISTRY``,
``SEARCH_REGISTRY``) and the whole pipeline is deterministic: same space,
same seed, same frontier — bit for bit, warm or cold.
"""

from repro.optimize.evaluator import CandidateEvaluator, CandidateResult
from repro.optimize.objectives import (
    OBJECTIVE_REGISTRY,
    Constraint,
    Objective,
    bound_constraint,
    fit_constraint,
    get_objective,
    parse_constraint,
    register_objective,
    slo_constraint,
)
from repro.optimize.optimizer import CodesignOptimizer
from repro.optimize.pareto import (
    ParetoFrontier,
    ParetoPoint,
    build_frontier,
    dominates,
    non_dominated,
)
from repro.optimize.search import (
    SEARCH_REGISTRY,
    SearchContext,
    SearchStrategy,
    get_search,
    register_search,
)
from repro.optimize.space import Candidate, DesignSpace

__all__ = [
    "OBJECTIVE_REGISTRY",
    "SEARCH_REGISTRY",
    "Candidate",
    "CandidateEvaluator",
    "CandidateResult",
    "CodesignOptimizer",
    "Constraint",
    "DesignSpace",
    "Objective",
    "ParetoFrontier",
    "ParetoPoint",
    "SearchContext",
    "SearchStrategy",
    "bound_constraint",
    "build_frontier",
    "dominates",
    "fit_constraint",
    "get_objective",
    "get_search",
    "non_dominated",
    "parse_constraint",
    "register_objective",
    "register_search",
    "slo_constraint",
]
