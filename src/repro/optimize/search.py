"""Search strategies over the co-design space, in an open registry.

Every strategy maps a :class:`SearchContext` — the candidate list, the
evaluator that prices them and the objectives that order them — to the set
of **full-fidelity** results the frontier is built from.  Three ship
built-in:

* ``exhaustive`` — price every candidate on the full trace via the shared
  caches; the ground truth the cheaper strategies are judged against.
* ``random`` — a seeded uniform sample of ``budget`` candidates at full
  fidelity; the classic cheap baseline for large spaces.
* ``successive-halving`` — price *everything* with the closed-form fluid
  estimator first (chaos searches fall back to short exact traces of
  ``num_requests // short_fraction`` — flows cannot replay fault
  timelines), prune the candidates that are Pareto-dominated at that cheap
  fidelity under a tie-guarding margin (fluid error is a correlated model
  bias, so ranks are trustworthy even where absolute values drift), and
  re-score only the survivors on the full exact trace.
  Dominated fleets reveal themselves cheaply (an overloaded fleet is
  overloaded in the fluid limit too), so the strategy runs strictly fewer
  full-trace simulations than exhaustive search while recovering the same
  frontier on well-behaved spaces — the multi-fidelity idea behind
  successive halving / Hyperband, applied to Pareto dominance instead of a
  scalar loss.

Strategies are plain frozen dataclasses in ``SEARCH_REGISTRY``; registering
a new one (Bayesian, evolutionary, ...) makes it addressable from
``repro-sim optimize --strategy`` without touching the optimizer.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.optimize.evaluator import CandidateEvaluator, CandidateResult
from repro.optimize.objectives import Objective
from repro.optimize.pareto import non_dominated
from repro.optimize.space import Candidate

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Telemetry


@dataclass
class SearchContext:
    """Everything a strategy needs to run one search."""

    candidates: Sequence[Candidate]
    evaluator: CandidateEvaluator
    objectives: Sequence[Objective]
    #: Seed of any strategy-internal randomness (sampling); evaluation
    #: itself is deterministic regardless.
    seed: int = 0
    #: Full-fidelity evaluation budget (``None`` = unlimited).  Exhaustive
    #: search ignores it; random sampling treats it as the sample size;
    #: successive halving caps the survivors it re-scores.
    budget: int | None = None
    #: Short-trace divisor of multi-fidelity strategies.
    short_fraction: int = 4
    #: Floor on short-trace length (percentiles need a few requests).
    min_short_requests: int = 20
    #: Relative dominance margin of the cheap pruning pass: a candidate is
    #: only pruned when something beats it by this fraction on *every*
    #: objective, so short-vs-full metric drift cannot evict a true
    #: frontier point (see :func:`repro.optimize.pareto.dominates_with_margin`).
    prune_margin: float = 0.15
    #: Dominance margin of fluid-screened pruning.  Much *narrower* than
    #: the short-trace margin: the estimator's absolute error (golden
    #: bounds in tests/test_serving_fluid.py) is a correlated model bias —
    #: every candidate is priced by the same closed form — so relative
    #: ordering is far more reliable than absolute values, and the margin
    #: only needs to guard near-ties against rank inversion.
    fluid_margin: float = 0.01
    #: Optional telemetry sink.  Multi-fidelity strategies emit one
    #: ``promote``/``prune`` event per candidate on the ``optimize`` track
    #: (wall time), carrying the margin and cheap-pass fidelity that
    #: justified the decision — the provenance trail of every frontier.
    telemetry: "Telemetry | None" = None


@dataclass(frozen=True)
class SearchStrategy:
    """One registered search discipline."""

    name: str
    description: str
    run: Callable[[SearchContext], tuple[CandidateResult, ...]]


#: Registered search strategies, addressable by name.
SEARCH_REGISTRY: dict[str, SearchStrategy] = {}


def register_search(strategy: SearchStrategy, overwrite: bool = False) -> None:
    """Add a search strategy to the registry.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is not set.
    """
    if strategy.name in SEARCH_REGISTRY and not overwrite:
        raise ValueError(f"search strategy '{strategy.name}' is already registered")
    SEARCH_REGISTRY[strategy.name] = strategy


def get_search(name: str) -> SearchStrategy:
    """Look up a search strategy by name.

    Raises
    ------
    KeyError
        If the strategy is unknown; the error lists the registered names.
    """
    try:
        return SEARCH_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SEARCH_REGISTRY))
        raise KeyError(
            f"unknown search strategy '{name}'; registered strategies: {known}") from None


def _exhaustive(context: SearchContext) -> tuple[CandidateResult, ...]:
    """Price every candidate at full fidelity."""
    return tuple(context.evaluator.evaluate(candidate)
                 for candidate in context.candidates)


def _random_sample(context: SearchContext) -> tuple[CandidateResult, ...]:
    """Price a seeded uniform sample of ``budget`` candidates.

    With no budget the sample is the whole space (random search degenerates
    to exhaustive) — "unlimited" must mean what the CLI says it means, not
    a silent arbitrary cap.
    """
    candidates = list(context.candidates)
    if not candidates:  # everything capacity-pruned: nothing to sample
        return ()
    budget = context.budget if context.budget is not None else len(candidates)
    if context.budget is not None and context.budget <= 0:
        raise ValueError("random search needs a positive budget")
    if budget < len(candidates):
        rng = random.Random(context.seed)
        candidates = rng.sample(candidates, budget)
    return tuple(context.evaluator.evaluate(candidate)
                 for candidate in candidates)


def _successive_halving(context: SearchContext) -> tuple[CandidateResult, ...]:
    """Prune dominated candidates cheaply, re-score the survivors exactly.

    The screening pass prices every candidate with the closed-form fluid
    estimator (full trace length — fluid cost does not depend on it) and
    prunes with the wider ``fluid_margin``.  Chaos searches fall back to
    short exact traces: fault timelines and arrival-drift overlays act on
    the event loop, which a flow cannot replay.

    Infeasible candidates (HBM misfits) are discovered on the cheap pass
    and never re-scored — the deployment does not fit at any fidelity.
    """
    evaluator = context.evaluator
    use_fluid = not evaluator.faults and evaluator.overlay is None
    if use_fluid:
        cheap = [evaluator.evaluate(candidate, fluid=True)
                 for candidate in context.candidates]
        margin = context.fluid_margin
    else:
        short_n = max(context.min_short_requests,
                      evaluator.num_requests // context.short_fraction)
        if short_n >= evaluator.num_requests:
            # The real trace is already as cheap as the pruning pass.
            return _exhaustive(context)
        cheap = [evaluator.evaluate(candidate, num_requests=short_n)
                 for candidate in context.candidates]
        margin = context.prune_margin
    feasible = [result for result in cheap if result.feasible]
    infeasible = tuple(result for result in cheap if not result.feasible)
    survivors = non_dominated(feasible, context.objectives, margin=margin)
    if context.budget is not None and context.budget < len(survivors):
        ordered = sorted(
            survivors,
            key=lambda result: (context.objectives[0].score(result),
                                result.cache_key))
        survivors = ordered[:context.budget]
    tel = context.telemetry
    if tel is not None and tel.enabled:
        fidelity = "fluid" if use_fluid else "short"
        promoted = {result.cache_key for result in survivors}
        for result in feasible:
            verdict = "promote" if result.cache_key in promoted else "prune"
            tel.wall_event("optimize", verdict, {
                "candidate": result.candidate.summary(),
                "fidelity": fidelity, "margin": margin})
        for result in infeasible:
            tel.wall_event("optimize", "infeasible", {
                "candidate": result.candidate.summary(),
                "fidelity": fidelity, "reason": result.infeasibility})
    full = tuple(evaluator.evaluate(result.candidate) for result in survivors)
    return full + infeasible


register_search(SearchStrategy(
    name="exhaustive",
    description="price every candidate on the full trace (via SweepEngine-"
                "grade caching); the ground-truth frontier",
    run=_exhaustive))
register_search(SearchStrategy(
    name="random",
    description="seeded uniform sample of `budget` candidates at full fidelity",
    run=_random_sample))
register_search(SearchStrategy(
    name="successive-halving",
    description="prune Pareto-dominated candidates on cheap short traces, "
                "re-score only the survivors on the full trace",
    run=_successive_halving))
