"""Pareto dominance and the frozen frontier report.

Dominance is the standard multi-objective definition over minimisation
scores (maximised objectives are negated by
:meth:`~repro.optimize.objectives.Objective.score`): ``a`` dominates ``b``
when ``a`` is no worse on every objective and strictly better on at least
one.  Ties — identical score vectors — do not dominate each other, so
equally priced candidates co-exist on the frontier rather than arbitrarily
evicting one another.

:class:`ParetoFrontier` is the search's frozen result: the dominant points
(each with its raw objective values and how many evaluated candidates it
dominates), the per-objective extremes, and full provenance — candidates
considered, pruned, infeasible, short/full simulations run and store hits —
so "where did this frontier come from and what did it cost" is part of the
artefact, not tribal knowledge.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

from repro.optimize.evaluator import CandidateResult
from repro.optimize.objectives import Objective


def frontier_fieldnames() -> tuple[str, ...]:
    """CSV column order of exported frontier rows (result fields + reach)."""
    return tuple(field.name for field in dataclasses.fields(CandidateResult)
                 ) + ("dominated_count",)


def scores(result: CandidateResult,
           objectives: Sequence[Objective]) -> tuple[float, ...]:
    """The candidate's minimisation-score vector in objective order."""
    return tuple(objective.score(result) for objective in objectives)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether score vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def dominates_with_margin(a: Sequence[float], b: Sequence[float],
                          margin: float) -> bool:
    """Whether ``a`` dominates ``b`` by a relative ``margin`` on every axis.

    Used by multi-fidelity pruning: a candidate measured on a *short* trace
    is only discarded when something beats it comfortably — by at least
    ``margin`` of the value's own magnitude on every objective — so the
    short-vs-full metric drift cannot evict a true frontier point.
    ``margin=0`` reduces to plain :func:`dominates`.
    """
    if margin <= 0:
        return dominates(a, b)
    return all(x <= y - margin * abs(y) for x, y in zip(a, b))


def non_dominated(results: Sequence[CandidateResult],
                  objectives: Sequence[Objective],
                  margin: float = 0.0) -> list[CandidateResult]:
    """The results no other result dominates (input order preserved).

    A positive ``margin`` keeps additionally every result that is only
    *narrowly* dominated (see :func:`dominates_with_margin`) — the
    conservative filter the successive-halving pruning pass uses.
    """
    vectors = [scores(result, objectives) for result in results]
    return [result for result, vector in zip(results, vectors)
            if not any(dominates_with_margin(other, vector, margin)
                       for other in vectors if other is not vector)]


@dataclass(frozen=True)
class ParetoPoint:
    """One dominant design with its raw objective values and reach."""

    result: CandidateResult
    #: Raw objective values (not scores) in the frontier's objective order.
    values: tuple[float, ...]
    #: Evaluated feasible candidates this point dominates — the
    #: "how much of the space does this design beat" provenance figure.
    dominated_count: int

    def to_dict(self) -> dict[str, object]:
        """Flat export row: the result's fields plus the frontier columns."""
        payload = self.result.to_dict()
        payload["dominated_count"] = self.dominated_count
        return payload


@dataclass(frozen=True)
class ParetoFrontier:
    """Frozen outcome of one co-design search."""

    model_name: str
    strategy: str
    #: Objective names, in the order `values` tuples follow.
    objectives: tuple[str, ...]
    constraints: tuple[str, ...]
    points: tuple[ParetoPoint, ...]
    #: (objective name, cache_key of the point achieving its best value).
    extremes: tuple[tuple[str, str], ...]
    #: Provenance: the whole space, and what happened to it.  The buckets
    #: partition the space exactly: ``candidates == len(points) + dominated
    #: + constraint_filtered + infeasible + strategy_pruned``.
    candidates: int
    capacity_pruned: int
    infeasible: int
    constraint_filtered: int
    dominated: int
    #: Candidates the search strategy discarded without a full-fidelity
    #: score: pruned on the cheap short trace, cut by the survivor budget,
    #: or simply never sampled.
    strategy_pruned: int
    short_runs: int
    full_runs: int
    store_served: int

    def __len__(self) -> int:
        return len(self.points)

    def signature(self) -> tuple[tuple[str, tuple[float, ...]], ...]:
        """A comparable identity: (cache_key, raw values) per point, sorted.

        Two searches found *the same frontier* exactly when their
        signatures are equal — the form the golden equivalence tests and
        the warm-store bit-for-bit assertions compare.
        """
        return tuple(sorted((point.result.cache_key, point.values)
                            for point in self.points))

    def rows(self) -> list[ParetoPoint]:
        """The frontier as export rows (for the generic JSON/CSV encoders)."""
        return list(self.points)

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON export."""
        payload = dataclasses.asdict(self)
        payload["points"] = [point.to_dict() for point in self.points]
        payload["extremes"] = [list(entry) for entry in self.extremes]
        return payload


def frontier_from_dict(payload: dict) -> ParetoFrontier:
    """Rebuild a :class:`ParetoFrontier` from its ``to_dict`` payload.

    The flat point rows carry every :class:`CandidateResult` field plus
    ``dominated_count``; the raw ``values`` tuples are not exported, so
    they are recomputed from the decoded results via the named objectives
    — the same ``Objective.value`` calls that produced them, hence exact.

    Raises
    ------
    KeyError, TypeError
        If the payload does not carry the frontier's required fields —
        cache-style callers should treat these as a miss.
    """
    from repro.optimize.objectives import get_objective
    from repro.sweep.store import decode_dataclass

    data = dict(payload)
    objectives = tuple(data["objectives"])
    resolved = [get_objective(name) for name in objectives]
    points = []
    for row in data["points"]:
        row = dict(row)
        dominated_count = row.pop("dominated_count")
        result = decode_dataclass(CandidateResult, row)
        points.append(ParetoPoint(
            result=result,
            values=tuple(objective.value(result) for objective in resolved),
            dominated_count=dominated_count))
    return ParetoFrontier(
        model_name=data["model_name"], strategy=data["strategy"],
        objectives=objectives, constraints=tuple(data["constraints"]),
        points=tuple(points),
        extremes=tuple((entry[0], entry[1]) for entry in data["extremes"]),
        candidates=data["candidates"],
        capacity_pruned=data["capacity_pruned"],
        infeasible=data["infeasible"],
        constraint_filtered=data["constraint_filtered"],
        dominated=data["dominated"],
        strategy_pruned=data["strategy_pruned"],
        short_runs=data["short_runs"], full_runs=data["full_runs"],
        store_served=data["store_served"])


def build_frontier(results: Sequence[CandidateResult],
                   objectives: Sequence[Objective], *, model_name: str,
                   strategy: str, constraints: Sequence[str] = (),
                   candidates: int = 0, capacity_pruned: int = 0,
                   infeasible: int = 0, constraint_filtered: int = 0,
                   strategy_pruned: int = 0, short_runs: int = 0,
                   full_runs: int = 0, store_served: int = 0) -> ParetoFrontier:
    """Reduce full-fidelity feasible results to their Pareto frontier.

    Points are ordered by their first-objective score (ties by cache key),
    so frontier tables read best-first on the primary objective and the
    ordering is deterministic across runs and processes.
    """
    vectors = {result.cache_key: scores(result, objectives) for result in results}
    frontier = non_dominated(list(results), objectives)
    points = []
    for result in frontier:
        vector = vectors[result.cache_key]
        dominated_count = sum(
            1 for other in results
            if other is not result and dominates(vector, vectors[other.cache_key]))
        points.append(ParetoPoint(
            result=result,
            values=tuple(objective.value(result) for objective in objectives),
            dominated_count=dominated_count))
    points.sort(key=lambda point: (vectors[point.result.cache_key],
                                   point.result.cache_key))
    extremes = []
    if points:
        for objective in objectives:
            best = min(points,
                       key=lambda point, score=objective.score:
                       (score(point.result), point.result.cache_key))
            extremes.append((objective.name, best.result.cache_key))
    return ParetoFrontier(
        model_name=model_name, strategy=strategy,
        objectives=tuple(objective.name for objective in objectives),
        constraints=tuple(constraints), points=tuple(points),
        extremes=tuple(extremes), candidates=candidates,
        capacity_pruned=capacity_pruned, infeasible=infeasible,
        constraint_filtered=constraint_filtered,
        dominated=max(0, len(results) - len(points)),
        strategy_pruned=strategy_pruned, short_runs=short_runs,
        full_runs=full_runs, store_served=store_served)
