"""The joint hardware × deployment design space the optimizer searches.

A :class:`Candidate` is one fully specified co-design: a TPU design point,
a numeric precision, and the deployment that serves the workload on it —
batching policy, routing policy, autoscaling policy, replica count and the
continuous-batching slot limit.  A :class:`DesignSpace` is the cartesian
product of per-axis choices, expanded in a deterministic order so searches
are reproducible run to run.

The axes deliberately mirror the existing registries (designs, schedulers,
routers, autoscalers): anything registered becomes searchable without
touching the optimizer, the same openness contract as everywhere else in
the repository.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, replace

from repro.common import Precision
from repro.core.config import TPUConfig
from repro.core.designs import PREDEFINED_DESIGNS
from repro.serving.autoscaler import get_autoscaler
from repro.serving.faults import FaultSpec
from repro.serving.metrics import SLO
from repro.serving.router import get_router
from repro.serving.scheduler import get_scheduler
from repro.serving.spec import ServingSpec
from repro.serving.trace import OverlaySpec


@dataclass(frozen=True)
class Candidate:
    """One (hardware × precision × deployment) co-design point."""

    design: str
    precision: str = "int8"
    scheduler: str = "fcfs"
    router: str = "round-robin"
    autoscaler: str = "fixed"
    replicas: int = 1
    max_batch: int = 32

    def __post_init__(self) -> None:
        if not self.design:
            raise ValueError("candidate needs a design name")
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        Precision(self.precision)  # raises ValueError on unknown precisions

    def summary(self) -> str:
        """Human-readable candidate label used in tables and logs."""
        base = f"{self.design}/{self.precision} x{self.replicas}"
        if self.replicas > 1:
            base += f" {self.router}/{self.autoscaler}"
        return f"{base} {self.scheduler} mb{self.max_batch}"

    def serving_spec(self, *, arrival_rate: float, num_requests: int,
                     seed: int = 0, trace: str = "poisson",
                     slo: SLO = SLO(), faults: tuple[FaultSpec, ...] = (),
                     overlay: OverlaySpec | None = None) -> ServingSpec:
        """The fleet-shaped serving spec this candidate deploys.

        ``faults`` and ``overlay`` describe the evaluation *scenario*, not
        the candidate: a chaos-aware search injects the same fault sources
        and arrival drift into every candidate, so resilience objectives
        and constraints compare designs under identical adversity.
        """
        return ServingSpec(
            scheduler=self.scheduler, trace=trace, arrival_rate=arrival_rate,
            num_requests=num_requests, seed=seed, max_batch=self.max_batch,
            slo=slo, replicas=self.replicas, router=self.router,
            autoscaler=self.autoscaler, faults=tuple(faults), overlay=overlay)


@dataclass(frozen=True)
class DesignSpace:
    """A cartesian co-design grid expanded into an ordered candidate list.

    Single-replica candidates are physically identical under every router
    and autoscaler (there is nothing to route or scale), so they are
    normalised to the default policies and de-duplicated — exactly the rule
    :class:`~repro.sweep.grid.SweepGrid` applies to its fleet axes.

    Raises
    ------
    ValueError
        On an empty axis, an unknown precision or replica count <= 0.
    KeyError
        On an unknown design, scheduler, router or autoscaler name (the
        error lists the registered choices).
    """

    designs: tuple[str, ...]
    precisions: tuple[str, ...] = ("int8",)
    schedulers: tuple[str, ...] = ("fcfs",)
    routers: tuple[str, ...] = ("round-robin",)
    autoscalers: tuple[str, ...] = ("fixed",)
    replica_counts: tuple[int, ...] = (1, 2, 4)
    max_batches: tuple[int, ...] = (32,)

    def __post_init__(self) -> None:
        for axis in ("designs", "precisions", "schedulers", "routers",
                     "autoscalers", "replica_counts", "max_batches"):
            values = tuple(getattr(self, axis))
            if not values:
                raise ValueError(f"design space needs at least one entry in '{axis}'")
            object.__setattr__(self, axis, values)
        for name in self.designs:
            if name not in PREDEFINED_DESIGNS:
                known = ", ".join(sorted(PREDEFINED_DESIGNS))
                raise KeyError(f"unknown design '{name}'; "
                               f"predefined designs: {known}")
        for precision in self.precisions:
            Precision(precision)
        for name in self.schedulers:
            get_scheduler(name)
        for name in self.routers:
            get_router(name)
        for name in self.autoscalers:
            get_autoscaler(name)
        if any(count <= 0 for count in self.replica_counts):
            raise ValueError("replica_counts must be positive")
        if any(batch <= 0 for batch in self.max_batches):
            raise ValueError("max_batches must be positive")

    def config_for(self, design: str) -> TPUConfig:
        """The chip configuration of one design axis entry."""
        return PREDEFINED_DESIGNS[design]

    def __iter__(self) -> Iterator[Candidate]:
        seen: set[Candidate] = set()
        for design in self.designs:
            for precision in self.precisions:
                for scheduler in self.schedulers:
                    for max_batch in self.max_batches:
                        for replicas in self.replica_counts:
                            for router in self.routers:
                                for autoscaler in self.autoscalers:
                                    candidate = Candidate(
                                        design=design, precision=precision,
                                        scheduler=scheduler, router=router,
                                        autoscaler=autoscaler,
                                        replicas=replicas, max_batch=max_batch)
                                    if replicas == 1:
                                        candidate = replace(
                                            candidate, router="round-robin",
                                            autoscaler="fixed")
                                    if candidate not in seen:
                                        seen.add(candidate)
                                        yield candidate

    def candidates(self) -> tuple[Candidate, ...]:
        """Expand the space into its ordered, de-duplicated candidates."""
        return tuple(iter(self))

    def __len__(self) -> int:
        return len(self.candidates())
