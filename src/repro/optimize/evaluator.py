"""Pricing one co-design candidate: fleet simulation behind the caches.

:class:`CandidateEvaluator` turns a :class:`~repro.optimize.space.Candidate`
into a flat, CSV-exportable :class:`CandidateResult` by replaying the
workload's seeded trace through :func:`~repro.serving.cluster.simulate_cluster`
— every candidate, single-replica ones included, runs the cluster path so
all of them report the same fleet economics (chip-hours, cost per million
tokens) under one price sheet.

Three cache layers make searches cheap, and the evaluator counts exactly
what crossed each:

* one shared memoised graph simulator **per design** — every candidate on
  a chip shares step-cost graphs across precisions' distinct entries;
* the optional persistent :class:`~repro.sweep.store.ResultStore`, honoured
  inside ``simulate_cluster``: a warm store serves whole fleet reports, so
  ``simulations`` stays 0 on repeated/resumed searches;
* the capacity lower bound from
  :func:`repro.analysis.capacity.fleet_lower_bound` (memoised per design ×
  precision × scheduler × max_batch), which lets the optimizer mark
  hopelessly undersized fleets infeasible without simulating them.

Candidates whose deployment cannot hold the model at all (no KV budget
after weights) come back ``feasible=False`` with the engine's explanation
instead of raising — an infeasible corner of the space is a search fact,
not an error.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.capacity import fleet_lower_bound
from repro.common import Precision
from repro.core.config import TPUConfig
from repro.core.designs import PREDEFINED_DESIGNS
from repro.optimize.space import Candidate
from repro.serving.cluster import cluster_run_key, simulate_cluster
from repro.serving.faults import FaultSpec
from repro.serving.metrics import SLO
from repro.serving.trace import OverlaySpec, request_classes_from_settings
from repro.sweep.cache import CachingInferenceSimulator
from repro.workloads.llm import LLMConfig
from repro.workloads.registry import get_scenario
from repro.workloads.scenario import ScenarioKnobs

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Telemetry
    from repro.sweep.store import ResultStore


@dataclass(frozen=True)
class CandidateResult:
    """Flat outcome row of one priced candidate (CSV-exportable)."""

    design: str
    model: str
    precision: str
    scheduler: str
    router: str
    autoscaler: str
    replicas: int
    max_batch: int
    arrival_rate: float
    #: Trace length the metrics were measured on; ``fidelity`` is "full"
    #: for the search's real trace and "short" for pruning-pass traces.
    num_requests: int
    fidelity: str
    feasible: bool
    #: Why the candidate cannot be served ("" when feasible).
    infeasibility: str
    total_devices: int
    completed: int
    rejected: int
    slo_attainment: float
    p99_ttft_s: float
    p99_tpot_s: float
    tokens_per_second: float
    energy_per_token_joules: float
    chip_hours: float
    cost_per_million_tokens_dollars: float
    utilisation: float
    cache_key: str
    #: Resilience outcomes under the evaluator's (possibly empty) chaos
    #: scenario — trivial for fault-free searches, load-bearing for the
    #: resilience objectives/constraints (recovery-s, availability, ...).
    availability: float = 1.0
    recovery_s: float = 0.0
    slo_debt_s: float = 0.0
    goodput_under_failure_tokens_per_second: float = 0.0
    disrupted_requests: int = 0

    @property
    def candidate(self) -> Candidate:
        """The candidate this row priced (for re-scoring at full fidelity)."""
        return Candidate(design=self.design, precision=self.precision,
                         scheduler=self.scheduler, router=self.router,
                         autoscaler=self.autoscaler, replicas=self.replicas,
                         max_batch=self.max_batch)

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by the JSON/CSV exporters."""
        return dataclasses.asdict(self)


class CandidateEvaluator:
    """Prices candidates for the search strategies, counting every run."""

    def __init__(self, model: LLMConfig, *, arrival_rate: float,
                 num_requests: int = 200, scenario: str = "chat-serving",
                 input_tokens: int = 1024, output_tokens: int = 512,
                 trace: str = "poisson", slo: SLO = SLO(), seed: int = 0,
                 designs: Mapping[str, TPUConfig] | None = None,
                 store: "ResultStore | None" = None,
                 faults: tuple[FaultSpec, ...] = (),
                 overlay: OverlaySpec | None = None,
                 telemetry: "Telemetry | None" = None) -> None:
        if not isinstance(model, LLMConfig):
            raise ValueError("co-design optimisation prices serving fleets; "
                             f"'{getattr(model, 'name', model)}' is not an LLM")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        spec = get_scenario(scenario)
        if not spec.supports(model):
            raise ValueError(f"scenario '{scenario}' does not support "
                             f"model '{model.name}'")
        self.model = model
        self.arrival_rate = arrival_rate
        self.num_requests = num_requests
        self.scenario = spec
        self.input_tokens = input_tokens
        self.output_tokens = output_tokens
        self.trace = trace
        self.slo = slo
        self.seed = seed
        self.designs = dict(designs) if designs is not None else dict(PREDEFINED_DESIGNS)
        self.store = store
        #: Optional telemetry sink (wall-time domain): one span per
        #: candidate evaluation, labelled with fidelity and whether the
        #: persistent store answered it for free.
        self.telemetry = (telemetry if telemetry is not None
                          and telemetry.enabled else None)
        # The chaos scenario is part of the evaluation, not the candidate:
        # every candidate faces the same faults and drift.
        self.faults = tuple(faults)
        self.overlay = overlay
        self._settings: dict[str, object] = {}
        self._simulators: dict[str, CachingInferenceSimulator] = {}
        self._capacity_bounds: dict[tuple[str, str, str, int], int] = {}
        #: Fleet simulations actually executed at each fidelity, and runs
        #: served whole from the persistent store.
        self.full_runs = 0
        self.short_runs = 0
        self.store_served = 0

    @property
    def simulations(self) -> int:
        """Fleet simulations actually executed (all fidelities)."""
        return self.full_runs + self.short_runs

    # ---------------------------------------------------------------- helpers
    def config_for(self, design: str) -> TPUConfig:
        """The chip configuration of a design name.

        Raises
        ------
        KeyError
            If the design is unknown; the error lists the known names.
        """
        try:
            return self.designs[design]
        except KeyError:
            known = ", ".join(sorted(self.designs))
            raise KeyError(f"unknown design '{design}'; known designs: {known}") from None

    def settings_for(self, precision: str) -> object:
        """The scenario settings at one precision (memoised)."""
        settings = self._settings.get(precision)
        if settings is None:
            settings = self.scenario.make_settings(ScenarioKnobs(
                batch=1, precision=Precision(precision),
                input_tokens=self.input_tokens, output_tokens=self.output_tokens))
            self._settings[precision] = settings
        return settings

    def _simulator_for(self, design: str) -> CachingInferenceSimulator:
        simulator = self._simulators.get(design)
        if simulator is None:
            simulator = CachingInferenceSimulator(self.config_for(design))
            self._simulators[design] = simulator
        return simulator

    def capacity_lower_bound(self, candidate: Candidate) -> int:
        """Replica-count lower bound of the candidate's design/deployment.

        Memoised per (design, precision, scheduler, max_batch) — the axes
        the estimate depends on — and computed with the shared per-design
        graph simulator, so probing the bound costs at most a few step
        pricings per distinct deployment shape.
        """
        key = (candidate.design, candidate.precision, candidate.scheduler,
               candidate.max_batch)
        bound = self._capacity_bounds.get(key)
        if bound is None:
            settings = self.settings_for(candidate.precision)
            bound = fleet_lower_bound(
                self.model, self.config_for(candidate.design),
                arrival_rate=self.arrival_rate,
                request_classes=request_classes_from_settings(settings),
                scheduler=candidate.scheduler, max_batch=candidate.max_batch,
                precision=Precision(candidate.precision),
                simulator=self._simulator_for(candidate.design))
            self._capacity_bounds[key] = bound
        return bound

    # --------------------------------------------------------------- evaluate
    def evaluate(self, candidate: Candidate,
                 num_requests: int | None = None, *,
                 fluid: bool = False) -> CandidateResult:
        """Price one candidate on the search trace (or a cheaper pass).

        ``num_requests`` overrides the trace length for cheap pruning
        passes; ``fluid`` screens with the closed-form estimator instead
        (full trace length — fluid cost is independent of it).  The
        fidelity label and the content fingerprint both carry the choice,
        so screening and full-trace runs never share store entries.
        """
        n = num_requests if num_requests is not None else self.num_requests
        fidelity = ("fluid" if fluid
                    else "full" if n == self.num_requests else "short")
        tel = self.telemetry
        started = tel.wall_now() if tel is not None else 0.0
        config = self.config_for(candidate.design)
        settings = self.settings_for(candidate.precision)
        spec = candidate.serving_spec(arrival_rate=self.arrival_rate,
                                      num_requests=n, seed=self.seed,
                                      trace=self.trace, slo=self.slo,
                                      faults=self.faults,
                                      overlay=self.overlay)
        if fluid:
            spec = dataclasses.replace(spec, fidelity="fluid")
        key = cluster_run_key(self.model, config, spec, settings)
        misses_before = self.store.stats.misses if self.store is not None else None
        try:
            report = simulate_cluster(self.model, config, spec, settings,
                                      simulator=self._simulator_for(candidate.design),
                                      store=self.store)
        except ValueError as error:
            if tel is not None:
                tel.span("optimize", f"evaluate:{fidelity}", started,
                         tel.wall_now(), {"candidate": candidate.summary(),
                                          "feasible": False})
            return self.infeasible(candidate, str(error), fidelity=fidelity,
                                   num_requests=n, cache_key=key)
        store_hit = (misses_before is not None
                     and self.store.stats.misses == misses_before)
        if store_hit:
            self.store_served += 1
        elif fidelity == "full":
            self.full_runs += 1
        else:
            # Short traces and fluid estimates are both cheap screening
            # passes; they share the counter the zero-simulation gates read.
            self.short_runs += 1
        if tel is not None:
            # Wall-domain span with explicit stamps (not wall_span: the
            # args carry the outcome, known only after the run).
            tel.span("optimize", f"evaluate:{fidelity}", started,
                     tel.wall_now(), {"candidate": candidate.summary(),
                                      "store_hit": store_hit})
        return CandidateResult(
            design=candidate.design, model=self.model.name,
            precision=candidate.precision, scheduler=candidate.scheduler,
            router=candidate.router, autoscaler=candidate.autoscaler,
            replicas=candidate.replicas, max_batch=candidate.max_batch,
            arrival_rate=self.arrival_rate, num_requests=n, fidelity=fidelity,
            feasible=True, infeasibility="",
            total_devices=report.total_devices, completed=report.completed,
            rejected=report.rejected, slo_attainment=report.slo_attainment,
            p99_ttft_s=report.ttft.p99_s, p99_tpot_s=report.tpot.p99_s,
            tokens_per_second=report.tokens_per_second,
            energy_per_token_joules=report.energy_per_token_joules,
            chip_hours=report.chip_hours,
            cost_per_million_tokens_dollars=report.cost_per_million_tokens_dollars,
            utilisation=report.utilisation,
            availability=report.resilience.availability,
            recovery_s=report.resilience.recovery_s,
            slo_debt_s=report.resilience.slo_debt_s,
            goodput_under_failure_tokens_per_second=(
                report.resilience.goodput_under_failure_tokens_per_second),
            disrupted_requests=report.resilience.disrupted_requests,
            cache_key=key)

    def infeasible(self, candidate: Candidate, reason: str, *,
                   fidelity: str = "full", num_requests: int | None = None,
                   cache_key: str = "") -> CandidateResult:
        """An unpriceable candidate's row (HBM misfit, capacity shortfall)."""
        return CandidateResult(
            design=candidate.design, model=self.model.name,
            precision=candidate.precision, scheduler=candidate.scheduler,
            router=candidate.router, autoscaler=candidate.autoscaler,
            replicas=candidate.replicas, max_batch=candidate.max_batch,
            arrival_rate=self.arrival_rate,
            num_requests=num_requests if num_requests is not None else self.num_requests,
            fidelity=fidelity, feasible=False, infeasibility=reason,
            total_devices=0, completed=0, rejected=0, slo_attainment=0.0,
            p99_ttft_s=0.0, p99_tpot_s=0.0, tokens_per_second=0.0,
            energy_per_token_joules=0.0, chip_hours=0.0,
            cost_per_million_tokens_dollars=0.0, utilisation=0.0,
            # An unserveable fleet recovers never and delivers nothing:
            # resilience constraints must fail it, not wave it through.
            availability=0.0, recovery_s=float("inf"), slo_debt_s=0.0,
            goodput_under_failure_tokens_per_second=0.0,
            disrupted_requests=0, cache_key=cache_key)
