"""Declarative objectives and constraints of the co-design search.

An :class:`Objective` names one scalar a fleet run produces (an attribute
of :class:`~repro.optimize.evaluator.CandidateResult`) and the direction
that improves it; the optimizer minimises the induced *score* (maximised
objectives contribute their negation), so Pareto dominance is uniformly
"every score <= , some score <".  Objectives live in an open
``OBJECTIVE_REGISTRY`` — registering a new one makes it addressable from
``repro-sim optimize --objectives`` with no optimizer changes, the same
contract as every other registry in the repository.

A :class:`Constraint` is a feasibility predicate applied *after* full-trace
scoring: SLO attainment at least a target, a bound on any registered
objective, or plain HBM fit.  Constraints never reorder the frontier; they
only exclude candidates from it.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.optimize.evaluator import CandidateResult


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: a result attribute and its direction."""

    name: str
    #: Attribute of ``CandidateResult`` carrying the raw value.
    attr: str
    #: "min" or "max" — the direction that improves the objective.
    direction: str
    unit: str
    description: str

    def __post_init__(self) -> None:
        if self.direction not in ("min", "max"):
            raise ValueError(f"objective direction must be 'min' or 'max', "
                             f"got '{self.direction}'")

    def value(self, result: "CandidateResult") -> float:
        """The raw objective value of one evaluated candidate."""
        return float(getattr(result, self.attr))

    def score(self, result: "CandidateResult") -> float:
        """The minimisation score (negated for maximised objectives)."""
        raw = self.value(result)
        return raw if self.direction == "min" else -raw


#: Registered objectives, addressable by name from the CLI and strategies.
OBJECTIVE_REGISTRY: dict[str, Objective] = {}


def register_objective(objective: Objective, overwrite: bool = False) -> None:
    """Add an objective to the registry.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is not set.
    """
    if objective.name in OBJECTIVE_REGISTRY and not overwrite:
        raise ValueError(f"objective '{objective.name}' is already registered")
    OBJECTIVE_REGISTRY[objective.name] = objective


def get_objective(name: str) -> Objective:
    """Look up an objective by name.

    Raises
    ------
    KeyError
        If the objective is unknown; the error lists the registered names.
    """
    try:
        return OBJECTIVE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(OBJECTIVE_REGISTRY))
        raise KeyError(
            f"unknown objective '{name}'; registered objectives: {known}") from None


register_objective(Objective(
    name="cost-per-million-tokens", attr="cost_per_million_tokens_dollars",
    direction="min", unit="$/Mtok",
    description="fleet dollars (chip-hours + energy) per million generated tokens"))
register_objective(Objective(
    name="p99-ttft", attr="p99_ttft_s", direction="min", unit="s",
    description="99th-percentile time to first token"))
register_objective(Objective(
    name="p99-tpot", attr="p99_tpot_s", direction="min", unit="s",
    description="99th-percentile time per output token"))
register_objective(Objective(
    name="energy-per-token", attr="energy_per_token_joules",
    direction="min", unit="J/tok",
    description="MXU energy per generated token"))
register_objective(Objective(
    name="chip-hours", attr="chip_hours", direction="min", unit="h",
    description="provisioned accelerator-hours of the run"))
register_objective(Objective(
    name="tokens-per-second", attr="tokens_per_second", direction="max",
    unit="tok/s", description="sustained fleet decode throughput"))
register_objective(Objective(
    name="availability", attr="availability", direction="max", unit="",
    description="uptime fraction of provisioned replica-time under faults"))
register_objective(Objective(
    name="recovery-s", attr="recovery_s", direction="min", unit="s",
    description="worst crash-to-SLO-reattainment time (inf = never)"))
register_objective(Objective(
    name="slo-debt", attr="slo_debt_s", direction="min", unit="s",
    description="summed latency debt beyond the SLO targets"))
register_objective(Objective(
    name="goodput-under-failure",
    attr="goodput_under_failure_tokens_per_second", direction="max",
    unit="tok/s",
    description="undisrupted SLO-meeting tokens per second under faults"))


@dataclass(frozen=True)
class Constraint:
    """A feasibility predicate over one evaluated candidate."""

    name: str
    description: str
    #: "slo" for attainment targets, "bound" for objective bounds,
    #: "fit" for HBM feasibility — the optimizer prunes fleets below the
    #: capacity lower bound only when an "slo" constraint is declared.
    kind: str
    satisfied: Callable[["CandidateResult"], bool]


def slo_constraint(target: float) -> Constraint:
    """SLO attainment must reach ``target`` (a fraction in (0, 1])."""
    if not 0 < target <= 1:
        raise ValueError("SLO attainment target must be in (0, 1]")
    return Constraint(
        name=f"slo>={target:g}",
        description=f"SLO attainment >= {target:g}", kind="slo",
        satisfied=lambda result: result.slo_attainment >= target)


def fit_constraint() -> Constraint:
    """The deployment must hold the model (HBM fit)."""
    return Constraint(name="fit", description="model fits the deployment's HBM",
                      kind="fit", satisfied=lambda result: result.feasible)


def bound_constraint(objective_name: str, op: str, limit: float) -> Constraint:
    """A ``<=`` / ``>=`` bound on any registered objective's raw value."""
    objective = get_objective(objective_name)
    if op == "<=":
        satisfied = lambda result: objective.value(result) <= limit  # noqa: E731
    elif op == ">=":
        satisfied = lambda result: objective.value(result) >= limit  # noqa: E731
    else:
        raise ValueError(f"constraint operator must be '<=' or '>=', got '{op}'")
    return Constraint(
        name=f"{objective_name}{op}{limit:g}",
        description=f"{objective.description} {op} {limit:g} {objective.unit}",
        kind="bound", satisfied=satisfied)


_CONSTRAINT_PATTERN = re.compile(r"^\s*([a-z0-9_-]+)\s*(<=|>=)\s*([0-9.eE+-]+)\s*$")


def parse_constraint(text: str) -> Constraint:
    """Parse a CLI-style constraint string.

    Accepted forms: ``fit`` (HBM feasibility), ``slo>=0.95`` (attainment
    target) and ``<objective><=value`` / ``<objective>>=value`` for any
    registered objective, e.g. ``p99-ttft<=0.5``.  Underscores in the
    objective name are treated as dashes, so ``recovery_s<=30`` (the
    result-attribute spelling) means ``recovery-s<=30``.

    Raises
    ------
    ValueError
        On an unparseable string (the error lists the accepted forms).
    KeyError
        On a bound over an unknown objective.
    """
    if text.strip() == "fit":
        return fit_constraint()
    match = _CONSTRAINT_PATTERN.match(text)
    if match:
        name, op, raw_limit = match.groups()
        name = name.replace("_", "-")
        try:
            limit = float(raw_limit)
        except ValueError:
            match = None
        else:
            if name == "slo":
                if op != ">=":
                    raise ValueError("SLO constraints are attainment floors; "
                                     "write 'slo>=<target>'")
                return slo_constraint(limit)
            return bound_constraint(name, op, limit)
    raise ValueError(
        f"cannot parse constraint '{text}'; accepted forms: 'fit', "
        "'slo>=<target>', '<objective><=value', '<objective>>=value'")
