"""The co-design optimizer: search the joint space, report the frontier.

:class:`CodesignOptimizer` ties the package together — and the rest of the
repository to it:

1. expand the :class:`~repro.optimize.space.DesignSpace` into candidates;
2. when an SLO-attainment constraint is declared, prune fleets below the
   capacity lower bound (:func:`repro.analysis.capacity.fleet_lower_bound`,
   the same estimate ``plan_fleet`` searches from) without simulating them
   — an undersized fleet cannot meet an attainment floor it cannot even
   sustain throughput for;
3. hand the survivors to the registered search strategy, which prices them
   through :class:`~repro.optimize.evaluator.CandidateEvaluator` (shared
   per-design graph caches, optional persistent store);
4. filter full-fidelity results through the declared constraints and
   reduce them to a :class:`~repro.optimize.pareto.ParetoFrontier` with
   complete provenance.

With a warm :class:`~repro.sweep.store.ResultStore` the whole pipeline is
pure lookup: ``frontier.full_runs + frontier.short_runs == 0`` and the
frontier signature is bit-for-bit the cold run's — the property CI pins.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.optimize.evaluator import CandidateEvaluator, CandidateResult
from repro.optimize.objectives import Constraint, Objective, get_objective
from repro.optimize.pareto import ParetoFrontier, build_frontier
from repro.optimize.search import SearchContext, SearchStrategy, get_search
from repro.optimize.space import DesignSpace
from repro.serving.faults import FaultSpec
from repro.serving.metrics import SLO
from repro.serving.trace import OverlaySpec
from repro.workloads.llm import LLMConfig

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Telemetry
    from repro.sweep.store import ResultStore


class CodesignOptimizer:
    """Searches hardware × deployment space for Pareto-optimal designs."""

    def __init__(self, model: LLMConfig, space: DesignSpace, *,
                 objectives: Sequence[str | Objective] = (
                     "cost-per-million-tokens", "p99-ttft"),
                 constraints: Sequence[Constraint] = (),
                 strategy: str | SearchStrategy = "exhaustive",
                 arrival_rate: float = 8.0, num_requests: int = 200,
                 scenario: str = "chat-serving", input_tokens: int = 1024,
                 output_tokens: int = 512, trace: str = "poisson",
                 slo: SLO = SLO(), seed: int = 0, budget: int | None = None,
                 store: "ResultStore | None" = None,
                 use_capacity_bound: bool = True,
                 faults: tuple[FaultSpec, ...] = (),
                 overlay: OverlaySpec | None = None,
                 telemetry: "Telemetry | None" = None) -> None:
        if not objectives:
            raise ValueError("optimisation needs at least one objective")
        self.space = space
        self.objectives = tuple(
            objective if isinstance(objective, Objective) else get_objective(objective)
            for objective in objectives)
        self.constraints = tuple(constraints)
        self.strategy = (strategy if isinstance(strategy, SearchStrategy)
                         else get_search(strategy))
        self.seed = seed
        self.budget = budget
        self.use_capacity_bound = use_capacity_bound
        #: Optional telemetry sink (wall-time domain): capacity-pruning
        #: events here, promote/prune provenance inside the strategy.
        self.telemetry = (telemetry if telemetry is not None
                          and telemetry.enabled else None)
        self.evaluator = CandidateEvaluator(
            model, arrival_rate=arrival_rate, num_requests=num_requests,
            scenario=scenario, input_tokens=input_tokens,
            output_tokens=output_tokens, trace=trace, slo=slo, seed=seed,
            designs={name: space.config_for(name) for name in space.designs},
            store=store, faults=faults, overlay=overlay,
            telemetry=self.telemetry)

    # -------------------------------------------------------------------- run
    def run(self) -> ParetoFrontier:
        """Execute the search and return the frozen frontier."""
        candidates = self.space.candidates()
        evaluator = self.evaluator
        tel = self.telemetry
        pruned: list[CandidateResult] = []
        searchable = list(candidates)
        if self.use_capacity_bound and any(c.kind == "slo" for c in self.constraints):
            searchable = []
            for candidate in candidates:
                bound = evaluator.capacity_lower_bound(candidate)
                if candidate.replicas < bound:
                    pruned.append(evaluator.infeasible(
                        candidate,
                        f"below the capacity lower bound of {bound} replicas "
                        f"at {evaluator.arrival_rate:g} req/s"))
                    if tel is not None:
                        tel.wall_event("optimize", "capacity-prune", {
                            "candidate": candidate.summary(), "bound": bound})
                else:
                    searchable.append(candidate)
        if tel is not None:
            tel.count("optimize.capacity_pruned", len(pruned))
        context = SearchContext(
            candidates=tuple(searchable), evaluator=evaluator,
            objectives=self.objectives, seed=self.seed, budget=self.budget,
            telemetry=tel)
        if tel is not None:
            with tel.wall_span("optimize", f"search:{self.strategy.name}",
                               {"candidates": len(searchable)}):
                outcome = self.strategy.run(context)
        else:
            outcome = self.strategy.run(context)
        full = [result for result in outcome
                if result.feasible and result.fidelity == "full"]
        infeasible = [result for result in outcome if not result.feasible]
        admitted = [result for result in full
                    if all(constraint.satisfied(result)
                           for constraint in self.constraints)]
        return build_frontier(
            admitted, self.objectives,
            model_name=evaluator.model.name, strategy=self.strategy.name,
            constraints=tuple(constraint.name for constraint in self.constraints),
            candidates=len(candidates), capacity_pruned=len(pruned),
            infeasible=len(infeasible) + len(pruned),
            constraint_filtered=len(full) - len(admitted),
            # Each searchable candidate yields at most one outcome row, so
            # the difference is exactly the candidates the strategy dropped
            # without a full-fidelity score (short-trace pruning, survivor
            # budget, unsampled).
            strategy_pruned=len(searchable) - len(outcome),
            short_runs=evaluator.short_runs, full_runs=evaluator.full_runs,
            store_served=evaluator.store_served)
