"""Tile shapes and buffer-fitting utilities used by the mapping engine.

A GEMM is staged through the memory hierarchy in tiles: CMEM holds a
``[L_tileM, D_tileK] × [D_tileK, D_tileN]`` working set, and VMEM holds the
sub-tiles currently being fed to the MXUs (Fig. 5 of the paper).  The helpers
in this module compute tile footprints and pick the largest VMEM tile that
still allows double buffering, which is how the paper's scheduler hides
memory transfers behind computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision, ceil_div


@dataclass(frozen=True)
class TileShape:
    """Dimensions of one GEMM tile."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(f"tile dimensions must be positive, got {self}")

    @property
    def macs(self) -> int:
        """MAC operations in the tile."""
        return self.m * self.k * self.n


@dataclass(frozen=True)
class Tiling:
    """A full tiling of a GEMM: the tile shape plus the tile grid."""

    problem: TileShape
    tile: TileShape

    def __post_init__(self) -> None:
        if self.tile.m > self.problem.m or self.tile.k > self.problem.k or self.tile.n > self.problem.n:
            raise ValueError("tile must not exceed the problem in any dimension")

    @property
    def m_tiles(self) -> int:
        """Number of tiles along M."""
        return ceil_div(self.problem.m, self.tile.m)

    @property
    def k_tiles(self) -> int:
        """Number of tiles along K."""
        return ceil_div(self.problem.k, self.tile.k)

    @property
    def n_tiles(self) -> int:
        """Number of tiles along N."""
        return ceil_div(self.problem.n, self.tile.n)

    @property
    def num_tiles(self) -> int:
        """Total tiles covering the problem."""
        return self.m_tiles * self.k_tiles * self.n_tiles

    def covers_problem(self) -> bool:
        """Whether the tile grid covers every element of the problem."""
        return (self.m_tiles * self.tile.m >= self.problem.m
                and self.k_tiles * self.tile.k >= self.problem.k
                and self.n_tiles * self.tile.n >= self.problem.n)


def matmul_tile_bytes(tile: TileShape, precision: Precision,
                      include_output: bool = True) -> int:
    """Operand footprint of one GEMM tile (input + weight [+ output])."""
    input_bytes = tile.m * tile.k * precision.bytes
    weight_bytes = tile.k * tile.n * precision.bytes
    output_bytes = tile.m * tile.n * precision.accumulator_bytes if include_output else 0
    return input_bytes + weight_bytes + output_bytes


def choose_vmem_tiling(m: int, k: int, n: int, precision: Precision,
                       vmem_capacity_bytes: int, double_buffered: bool = True,
                       mxu_k_extent: int = 128, mxu_n_extent: int = 128) -> Tiling:
    """Pick a VMEM tiling for an ``[m, k] × [k, n]`` GEMM.

    The heuristic follows the paper's mapspace pruning: keep the reduction
    dimension (K) as large as the buffer allows (minimising partial-sum
    traffic), keep N at least one MXU extent wide, and shrink M last because
    M governs input-operand reuse of the stationary weights.

    The returned tile is guaranteed to fit ``vmem_capacity_bytes`` (halved if
    double buffering is requested) unless even a minimal one-extent tile does
    not fit, in which case a ``MemoryError`` is raised.
    """
    problem = TileShape(m, k, n)
    budget = vmem_capacity_bytes // (2 if double_buffered else 1)

    tile_m, tile_k, tile_n = m, k, n
    # Shrink in priority order (M, then N, then K) until the tile fits.
    while matmul_tile_bytes(TileShape(tile_m, tile_k, tile_n), precision) > budget:
        if tile_m > mxu_k_extent and tile_m >= tile_n:
            tile_m = max(mxu_k_extent, tile_m // 2)
        elif tile_n > mxu_n_extent:
            tile_n = max(mxu_n_extent, tile_n // 2)
        elif tile_k > mxu_k_extent:
            tile_k = max(mxu_k_extent, tile_k // 2)
        elif tile_m > 1:
            tile_m = max(1, tile_m // 2)
        else:
            raise MemoryError(
                f"cannot fit a minimal tile of GEMM [{m},{k}]x[{k},{n}] "
                f"({precision.value}) into {vmem_capacity_bytes} bytes of VMEM")
    return Tiling(problem=problem, tile=TileShape(tile_m, tile_k, tile_n))
