"""Mapspace enumeration and heuristic pruning.

For a (possibly batched) matmul the mapping engine considers how to spread
the work across the chip's MXUs.  Four partitioning dimensions exist —
independent batch instances, the M (token) dimension, the N (output-feature)
dimension and the K (reduction) dimension — and each interacts differently
with MXU utilisation, weight traffic and the need for a cross-MXU reduction.
The full mapspace (all partition dimensions × all tile shapes × scheduling
options) is large; following the paper we prune it with simple dominance
heuristics and keep a handful of candidates that the engine evaluates exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common import ceil_div
from repro.workloads.operators import MatMulOp


class PartitionDim(enum.Enum):
    """Dimension along which a matmul is split across MXUs."""

    BATCH = "batch"
    M = "m"
    N = "n"
    K = "k"


@dataclass(frozen=True)
class MappingCandidate:
    """One pruned point of the mapspace for a specific matmul and MXU count.

    Attributes
    ----------
    partition:
        Dimension split across the MXUs.
    mxu_count:
        Number of MXUs the work is spread over.
    instances_per_mxu:
        Independent batch instances each MXU processes sequentially.
    m, k, n:
        Per-MXU, per-instance GEMM shape after partitioning.
    needs_reduction:
        Whether partial results must be reduced across MXUs afterwards
        (only for K partitioning).
    """

    partition: PartitionDim
    mxu_count: int
    instances_per_mxu: int
    m: int
    k: int
    n: int
    needs_reduction: bool = False

    def __post_init__(self) -> None:
        if self.mxu_count <= 0 or self.instances_per_mxu <= 0:
            raise ValueError("mxu_count and instances_per_mxu must be positive")
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError("per-MXU GEMM dimensions must be positive")


def enumerate_candidates(op: MatMulOp, mxu_count: int,
                         min_split_extent: int = 8) -> list[MappingCandidate]:
    """Enumerate the pruned set of partitioning candidates for a matmul.

    Pruning rules (heuristics in the spirit of the paper's mapping engine):

    * Partition the batch dimension whenever the operator is batched — the
      instances are fully independent, so this never loses utilisation.
    * Partition M only when each shard keeps at least ``min_split_extent``
      rows; splitting a GEMV's single row is meaningless.
    * Partition N only when each shard keeps at least one reasonable column
      block; N splitting never requires a reduction so it is always kept as a
      candidate for non-batched operators.
    * Partition K only when K is by far the largest dimension (the only
      situation where paying the cross-MXU reduction can win).
    """
    if mxu_count <= 0:
        raise ValueError("mxu_count must be positive")
    candidates: list[MappingCandidate] = []

    if op.batch > 1:
        split = min(mxu_count, op.batch)
        candidates.append(MappingCandidate(
            partition=PartitionDim.BATCH, mxu_count=split,
            instances_per_mxu=ceil_div(op.batch, split),
            m=op.m, k=op.k, n=op.n))

    if op.m >= min_split_extent * mxu_count:
        candidates.append(MappingCandidate(
            partition=PartitionDim.M, mxu_count=mxu_count,
            instances_per_mxu=op.batch,
            m=ceil_div(op.m, mxu_count), k=op.k, n=op.n))

    if op.n >= mxu_count:
        candidates.append(MappingCandidate(
            partition=PartitionDim.N, mxu_count=mxu_count,
            instances_per_mxu=op.batch,
            m=op.m, k=op.k, n=ceil_div(op.n, mxu_count)))

    if op.k >= mxu_count and op.k >= 4 * max(op.m, 1):
        candidates.append(MappingCandidate(
            partition=PartitionDim.K, mxu_count=mxu_count,
            instances_per_mxu=op.batch,
            m=op.m, k=ceil_div(op.k, mxu_count), n=op.n,
            needs_reduction=True))

    if not candidates:
        # Degenerate small operator: run it on a single MXU.
        candidates.append(MappingCandidate(
            partition=PartitionDim.N, mxu_count=1,
            instances_per_mxu=op.batch, m=op.m, k=op.k, n=op.n))
    return candidates
