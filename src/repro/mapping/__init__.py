"""Mapping engine: tiling, partitioning and scheduling of operators onto the TPU.

Given an operator and the hardware configuration, the mapping engine explores
how to partition the work across the chip's MXUs (along the batch, M, K or N
dimension), how to tile the operands through the CMEM/VMEM hierarchy, and
whether double buffering and memory coalescing can hide the transfers — then
returns the latency- (or energy-) optimal mapping.  The mapspace is pruned
with the same class of heuristics used by Timeloop and LLMCompass, which the
paper cites as the basis of its mapping engine.
"""

from repro.mapping.tiling import TileShape, Tiling, matmul_tile_bytes, choose_vmem_tiling
from repro.mapping.mapspace import PartitionDim, MappingCandidate, enumerate_candidates
from repro.mapping.schedule import ScheduleOptions, pipelined_tile_latency
from repro.mapping.engine import MappingEngine, MatmulMapping, MappingObjective

__all__ = [
    "TileShape",
    "Tiling",
    "matmul_tile_bytes",
    "choose_vmem_tiling",
    "PartitionDim",
    "MappingCandidate",
    "enumerate_candidates",
    "ScheduleOptions",
    "pipelined_tile_latency",
    "MappingEngine",
    "MatmulMapping",
    "MappingObjective",
]
