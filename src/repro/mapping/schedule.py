"""Scheduling model: double buffering and memory coalescing.

The paper's mapping engine overlaps computation with memory access through
double buffering and memory coalescing "at each level of the memory
hierarchy".  At the analytical granularity of this simulator that reduces to
one question per operator (or per tile stream): is the steady-state latency
``max(compute, transfer)`` or ``compute + transfer``, and how much of the
first/last tile's transfer remains exposed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScheduleOptions:
    """Scheduling knobs exposed to the architecture exploration."""

    double_buffering: bool = True
    memory_coalescing: bool = True

    def describe(self) -> str:
        """Human-readable summary used in reports."""
        parts = []
        parts.append("double-buffered" if self.double_buffering else "serialised")
        parts.append("coalesced" if self.memory_coalescing else "strided")
        return ", ".join(parts)


def pipelined_tile_latency(num_tiles: int, compute_per_tile: float, load_per_tile: float,
                           store_per_tile: float = 0.0,
                           double_buffered: bool = True) -> float:
    """Latency of streaming ``num_tiles`` tiles through a compute unit.

    With double buffering the loads of tile ``i+1`` and the stores of tile
    ``i−1`` overlap the computation of tile ``i``; the first load and the last
    store remain exposed.  Without double buffering every phase serialises.
    """
    if num_tiles <= 0:
        raise ValueError("num_tiles must be positive")
    if compute_per_tile < 0 or load_per_tile < 0 or store_per_tile < 0:
        raise ValueError("per-tile cycle counts must be non-negative")

    if not double_buffered:
        return num_tiles * (compute_per_tile + load_per_tile + store_per_tile)

    steady = max(compute_per_tile, load_per_tile + store_per_tile)
    return load_per_tile + (num_tiles - 1) * steady + compute_per_tile + store_per_tile


def overlapped_operator_latency(compute_cycles: float, weight_transfer_cycles: float,
                                activation_transfer_cycles: float,
                                double_buffered: bool = True) -> float:
    """Operator-level latency combining compute with its two transfer streams.

    Weight traffic (HBM) and activation traffic (on-chip interconnect) use
    different physical resources, so they proceed in parallel with each other;
    whether they overlap *compute* is governed by double buffering.
    """
    for value in (compute_cycles, weight_transfer_cycles, activation_transfer_cycles):
        if value < 0:
            raise ValueError("cycle counts must be non-negative")
    transfers = max(weight_transfer_cycles, activation_transfer_cycles)
    if double_buffered:
        return max(compute_cycles, transfers)
    return compute_cycles + transfers
