"""The mapping engine: choose how each operator runs on the chip.

For every matmul operator the engine enumerates the pruned partitioning
candidates (:mod:`repro.mapping.mapspace`), evaluates each one exactly against
the installed matrix-unit model, the memory hierarchy and the scheduling
options, and returns the best mapping under the selected objective (latency by
default, energy or energy-delay product for explorations).  This mirrors the
paper's "mapping engine [that] explores the performance-optimal mapping to
better utilize hardware resources".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hw.energy import EnergyBudget
from repro.mapping.mapspace import MappingCandidate, enumerate_candidates
from repro.mapping.schedule import ScheduleOptions, overlapped_operator_latency
from repro.mapping.tiling import choose_vmem_tiling, Tiling
from repro.memory.hierarchy import MemoryHierarchy
from repro.vector.vpu import VectorUnit
from repro.workloads.operators import MatMulOp, OperandSource


class MappingObjective(enum.Enum):
    """Optimisation objective used to rank mapping candidates."""

    LATENCY = "latency"
    ENERGY = "energy"
    ENERGY_DELAY = "edp"


@dataclass(frozen=True)
class MatmulMapping:
    """The chosen mapping of one matmul operator and its evaluated cost."""

    op_name: str
    candidate: MappingCandidate
    tiling: Tiling
    compute_cycles: float
    weight_transfer_cycles: float
    activation_transfer_cycles: float
    reduction_cycles: float
    total_cycles: float
    mxu_busy_cycles: float
    energy: EnergyBudget
    utilization: float

    @property
    def bound(self) -> str:
        """Whether the operator is compute- or memory-bound under this mapping."""
        transfers = max(self.weight_transfer_cycles, self.activation_transfer_cycles)
        return "compute" if self.compute_cycles >= transfers else "memory"


@dataclass
class MappingEngine:
    """Maps matmul operators onto the available matrix units."""

    mxu_template: object  # DigitalMXU or CIMMXU (duck-typed: .gemm, .macs_per_cycle, ...)
    mxu_count: int
    hierarchy: MemoryHierarchy
    vpu: VectorUnit
    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    objective: MappingObjective = MappingObjective.LATENCY

    def __post_init__(self) -> None:
        if self.mxu_count <= 0:
            raise ValueError("mxu_count must be positive")

    # ------------------------------------------------------------------ API
    def map_matmul(self, op: MatMulOp) -> MatmulMapping:
        """Evaluate every pruned candidate and return the best mapping."""
        candidates = enumerate_candidates(op, self.mxu_count)
        evaluated = [self._evaluate(op, candidate) for candidate in candidates]
        return min(evaluated, key=self._score)

    def evaluate_all(self, op: MatMulOp) -> list[MatmulMapping]:
        """Evaluate every candidate (used by tests and mapping ablations)."""
        return [self._evaluate(op, candidate) for candidate in enumerate_candidates(op, self.mxu_count)]

    # ------------------------------------------------------------ internals
    def _score(self, mapping: MatmulMapping) -> float:
        if self.objective is MappingObjective.LATENCY:
            return mapping.total_cycles
        if self.objective is MappingObjective.ENERGY:
            return mapping.energy.total
        return mapping.energy.total * mapping.total_cycles

    def _evaluate(self, op: MatMulOp, candidate: MappingCandidate) -> MatmulMapping:
        per_mxu = self.mxu_template.gemm(
            candidate.m, candidate.k, candidate.n, op.precision,
            stationary_weights=op.stationary_weights,
            instances=candidate.instances_per_mxu)
        compute_cycles = float(per_mxu.cycles)

        # Dynamic + busy-leakage energy across every MXU doing its share.
        energy = per_mxu.energy.scaled(candidate.mxu_count)

        # Cross-MXU reduction for K partitioning: the partial sums of all but
        # one MXU travel over the OCI and are added on the VPU.
        reduction_cycles = 0.0
        if candidate.needs_reduction:
            partial_elements = op.batch * op.m * op.n
            partial_bytes = partial_elements * op.precision.accumulator_bytes
            reduction_traffic = (candidate.mxu_count - 1) * partial_bytes
            vpu_result = self.vpu.execute(
                total_ops=(candidate.mxu_count - 1) * partial_elements,
                input_bytes=reduction_traffic, output_bytes=partial_bytes)
            oci_cycles = self.hierarchy.oci.transfer_cycles(reduction_traffic)
            reduction_cycles = max(vpu_result.cycles, oci_cycles)
            energy.merge(vpu_result.energy)
            energy.merge(self.hierarchy.cmem_to_vmem(reduction_traffic).energy)

        # Memory traffic of the operator as a whole.
        weight_bytes = op.weight_bytes
        activation_bytes = op.input_bytes + op.output_bytes
        coalesced = self.schedule.memory_coalescing
        if op.weight_source is OperandSource.HBM:
            weight_result = self.hierarchy.hbm_to_vmem(weight_bytes, coalesced)
            weight_transfer_cycles = weight_result.cycles
        else:
            weight_result = self.hierarchy.cmem_to_vmem(weight_bytes)
            weight_transfer_cycles = weight_result.cycles
        activation_result = self.hierarchy.cmem_to_vmem(activation_bytes)
        activation_transfer_cycles = activation_result.cycles
        energy.merge(weight_result.energy)
        energy.merge(activation_result.energy)

        total_cycles = overlapped_operator_latency(
            compute_cycles, weight_transfer_cycles, activation_transfer_cycles,
            double_buffered=self.schedule.double_buffering) + reduction_cycles

        tiling = choose_vmem_tiling(
            candidate.m, candidate.k, candidate.n, op.precision,
            self.hierarchy.vmem.config.capacity_bytes,
            double_buffered=self.schedule.double_buffering)

        peak_macs_per_cycle = self.mxu_template.macs_per_cycle * candidate.mxu_count
        utilization = (op.macs / (total_cycles * peak_macs_per_cycle)
                       if total_cycles > 0 else 0.0)
        return MatmulMapping(
            op_name=op.name,
            candidate=candidate,
            tiling=tiling,
            compute_cycles=compute_cycles,
            weight_transfer_cycles=weight_transfer_cycles,
            activation_transfer_cycles=activation_transfer_cycles,
            reduction_cycles=reduction_cycles,
            total_cycles=total_cycles,
            mxu_busy_cycles=compute_cycles,
            energy=energy,
            utilization=min(1.0, utilization),
        )
