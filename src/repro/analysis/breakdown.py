"""Latency and energy breakdowns by layer category (Fig. 6-style reporting)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import GraphResult
from repro.workloads.operators import LayerCategory


@dataclass(frozen=True)
class BreakdownRow:
    """One category's share of a graph's latency or energy."""

    category: LayerCategory
    value: float
    fraction: float

    @property
    def label(self) -> str:
        """Display label of the category."""
        return self.category.value


def latency_breakdown(result: GraphResult) -> list[BreakdownRow]:
    """Per-category latency rows, sorted by descending share."""
    total = result.total_seconds
    rows = []
    for category, seconds in result.latency_by_category().items():
        fraction = seconds / total if total > 0 else 0.0
        rows.append(BreakdownRow(category=category, value=seconds, fraction=fraction))
    return sorted(rows, key=lambda row: row.value, reverse=True)


def mxu_energy_breakdown(result: GraphResult) -> list[BreakdownRow]:
    """Per-category MXU energy rows, sorted by descending share."""
    total = result.mxu_energy
    rows = []
    for category, joules in result.mxu_energy_by_category().items():
        fraction = joules / total if total > 0 else 0.0
        rows.append(BreakdownRow(category=category, value=joules, fraction=fraction))
    return sorted(rows, key=lambda row: row.value, reverse=True)


@dataclass(frozen=True)
class ComparisonRow:
    """Per-category comparison of two designs running the same graph."""

    category: LayerCategory
    baseline_seconds: float
    candidate_seconds: float
    baseline_mxu_energy: float
    candidate_mxu_energy: float

    @property
    def latency_change_percent(self) -> float:
        """Latency change of the candidate vs. the baseline (negative = faster)."""
        if self.baseline_seconds == 0:
            return 0.0
        return (self.candidate_seconds / self.baseline_seconds - 1.0) * 100.0

    @property
    def energy_reduction_factor(self) -> float:
        """MXU energy reduction factor (baseline / candidate)."""
        if self.candidate_mxu_energy == 0:
            return float("inf") if self.baseline_mxu_energy > 0 else 1.0
        return self.baseline_mxu_energy / self.candidate_mxu_energy


def compare_graph_results(baseline: GraphResult, candidate: GraphResult) -> list[ComparisonRow]:
    """Category-by-category comparison of two evaluations of the same graph."""
    categories: list[LayerCategory] = []
    for result in (baseline, candidate):
        for category in result.latency_by_category():
            if category not in categories:
                categories.append(category)

    base_latency = baseline.latency_by_category()
    cand_latency = candidate.latency_by_category()
    base_energy = baseline.mxu_energy_by_category()
    cand_energy = candidate.mxu_energy_by_category()

    rows = []
    for category in categories:
        rows.append(ComparisonRow(
            category=category,
            baseline_seconds=base_latency.get(category, 0.0),
            candidate_seconds=cand_latency.get(category, 0.0),
            baseline_mxu_energy=base_energy.get(category, 0.0),
            candidate_mxu_energy=cand_energy.get(category, 0.0),
        ))
    return rows


def overall_comparison(baseline: GraphResult, candidate: GraphResult) -> dict[str, float]:
    """Headline numbers of a Fig. 6 panel: latency change and energy factor."""
    latency_change = (candidate.total_seconds / baseline.total_seconds - 1.0) * 100.0
    energy_factor = (baseline.mxu_energy / candidate.mxu_energy
                     if candidate.mxu_energy > 0 else float("inf"))
    return {
        "baseline_latency_s": baseline.total_seconds,
        "candidate_latency_s": candidate.total_seconds,
        "latency_change_percent": latency_change,
        "baseline_mxu_energy_j": baseline.mxu_energy,
        "candidate_mxu_energy_j": candidate.mxu_energy,
        "mxu_energy_reduction_factor": energy_factor,
    }
