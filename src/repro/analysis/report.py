"""Plain-text table and number formatting for benchmark harness output."""

from __future__ import annotations

from collections.abc import Sequence


def format_percent(value: float, signed: bool = True) -> str:
    """Format a fractional change as a percentage string (e.g. ``+2.4 %``)."""
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value * 100:.1f}%"


def format_factor(value: float) -> str:
    """Format a ratio as a multiplication factor (e.g. ``9.4x``)."""
    return f"{value:.2f}x"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table.

    Every cell is converted with ``str``; column widths adapt to the longest
    entry.  Used by the benchmark harness to print the same rows/series the
    paper's tables and figures report.
    """
    if not headers:
        raise ValueError("a table needs at least one column")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns")

    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Format a latency with an appropriate unit (s, ms, µs)."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_joules(joules: float) -> str:
    """Format an energy with an appropriate unit (J, mJ, µJ)."""
    if joules < 0:
        raise ValueError("joules must be non-negative")
    if joules >= 1.0:
        return f"{joules:.3f} J"
    if joules >= 1e-3:
        return f"{joules * 1e3:.3f} mJ"
    return f"{joules * 1e6:.1f} uJ"
