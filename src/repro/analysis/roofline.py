"""Roofline model used to classify operators as compute- or memory-bound.

The paper leans on the standard LLM-inference roofline argument (prefill is
compute-bound, decode is memory-bound); this module provides the quantitative
version for any device described by a peak throughput and a memory bandwidth,
and is also the engine behind the A100-like GPU profile used for the Fig. 2d
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.operators import MatMulOp, Operator


@dataclass(frozen=True)
class RooflinePoint:
    """One operator placed on the roofline."""

    name: str
    arithmetic_intensity: float
    attainable_ops_per_s: float
    bound: str

    @property
    def is_compute_bound(self) -> bool:
        """Whether the operator sits on the flat (compute) part of the roof."""
        return self.bound == "compute"


@dataclass(frozen=True)
class RooflineModel:
    """A device roofline: peak throughput and memory bandwidth."""

    peak_ops_per_s: float
    memory_bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.peak_ops_per_s <= 0 or self.memory_bandwidth_bytes_per_s <= 0:
            raise ValueError("peak throughput and bandwidth must be positive")

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (ops/byte) at which the two roofs meet."""
        return self.peak_ops_per_s / self.memory_bandwidth_bytes_per_s

    def attainable(self, arithmetic_intensity: float) -> float:
        """Attainable ops/s at the given arithmetic intensity."""
        if arithmetic_intensity < 0:
            raise ValueError("arithmetic intensity must be non-negative")
        return min(self.peak_ops_per_s,
                   arithmetic_intensity * self.memory_bandwidth_bytes_per_s)

    def classify(self, operator: Operator) -> RooflinePoint:
        """Place an operator on the roofline."""
        total_bytes = operator.input_bytes + operator.output_bytes + operator.weight_bytes
        ops = operator.flops
        intensity = ops / total_bytes if total_bytes > 0 else 0.0
        bound = "compute" if intensity >= self.ridge_point else "memory"
        return RooflinePoint(name=operator.name, arithmetic_intensity=intensity,
                             attainable_ops_per_s=self.attainable(intensity), bound=bound)

    def execution_seconds(self, operator: Operator, overhead_seconds: float = 0.0) -> float:
        """Roofline-limited execution time of an operator on this device."""
        if overhead_seconds < 0:
            raise ValueError("overhead must be non-negative")
        total_bytes = operator.input_bytes + operator.output_bytes + operator.weight_bytes
        compute_seconds = operator.flops / self.peak_ops_per_s
        memory_seconds = total_bytes / self.memory_bandwidth_bytes_per_s
        if isinstance(operator, MatMulOp):
            return max(compute_seconds, memory_seconds) + overhead_seconds
        # Vector operators on a GPU/TPU are overwhelmingly memory-bound, but a
        # minimum compute time is still charged.
        return max(compute_seconds, memory_seconds) + overhead_seconds
