"""Analysis and reporting utilities: breakdowns, rooflines, table formatting."""

from repro.analysis.breakdown import (
    BreakdownRow,
    latency_breakdown,
    mxu_energy_breakdown,
    compare_graph_results,
    overall_comparison,
    ComparisonRow,
)
from repro.analysis.capacity import (
    ModelFootprint,
    CapacityPlan,
    FleetEvaluation,
    FleetPlan,
    llm_footprint,
    dit_footprint,
    fleet_lower_bound,
    plan_capacity,
    plan_fleet,
)
from repro.analysis.power import PowerSummary, graph_power_summary, inference_power_summary, mxu_power_ratio
from repro.analysis.roofline import RooflineModel, RooflinePoint
from repro.analysis.report import format_table, format_percent, format_factor

__all__ = [
    "BreakdownRow",
    "latency_breakdown",
    "mxu_energy_breakdown",
    "compare_graph_results",
    "overall_comparison",
    "ComparisonRow",
    "ModelFootprint",
    "CapacityPlan",
    "FleetEvaluation",
    "FleetPlan",
    "llm_footprint",
    "dit_footprint",
    "fleet_lower_bound",
    "plan_capacity",
    "plan_fleet",
    "PowerSummary",
    "graph_power_summary",
    "inference_power_summary",
    "mxu_power_ratio",
    "RooflineModel",
    "RooflinePoint",
    "format_table",
    "format_percent",
    "format_factor",
]
