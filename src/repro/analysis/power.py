"""Average-power summaries of simulated workloads.

The paper motivates CIM with the >350 W TDP of mainstream accelerators and
quotes some exploration results as *power* rather than energy (e.g. the
8×16×16 DiT configuration consumes "3.56× less power" than the baseline MXUs).
This module converts the simulator's energy results into average-power views:
per-component average power over a graph or inference, and the MXU power
ratio between two designs running the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import GraphResult, InferenceResult


@dataclass(frozen=True)
class PowerSummary:
    """Average power drawn by each modelled component over one workload."""

    workload: str
    tpu_name: str
    duration_seconds: float
    component_watts: dict[str, float]

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if any(watts < 0 for watts in self.component_watts.values()):
            raise ValueError("component power must be non-negative")

    @property
    def total_watts(self) -> float:
        """Average total power of the modelled components."""
        return sum(self.component_watts.values())

    @property
    def mxu_watts(self) -> float:
        """Average power of the matrix units (the paper's power axis)."""
        return self.component_watts.get("mxu", 0.0)

    def component(self, name: str) -> float:
        """Average power of one component (0 if it never drew energy)."""
        return self.component_watts.get(name, 0.0)


def graph_power_summary(result: GraphResult) -> PowerSummary:
    """Average power over one evaluated operator graph."""
    duration = result.total_seconds
    if duration <= 0:
        raise ValueError(f"graph '{result.name}' has zero duration")
    energy = result.total_energy
    watts = {component: energy.component_total(component) / duration
             for component in sorted(energy.components)}
    return PowerSummary(workload=result.name, tpu_name=result.tpu_name,
                        duration_seconds=duration, component_watts=watts)


def inference_power_summary(result: InferenceResult) -> PowerSummary:
    """Average power over a full inference (all stages, repeats included)."""
    duration = result.total_seconds
    if duration <= 0:
        raise ValueError(f"inference of '{result.model_name}' has zero duration")
    component_joules: dict[str, float] = {}
    for stage in result.stages:
        stage_energy = stage.graph.total_energy
        for component in stage_energy.components:
            component_joules[component] = (component_joules.get(component, 0.0)
                                           + stage_energy.component_total(component) * stage.repeat)
    watts = {component: joules / duration
             for component, joules in sorted(component_joules.items())}
    return PowerSummary(workload=result.model_name, tpu_name=result.tpu_name,
                        duration_seconds=duration, component_watts=watts)


def mxu_power_ratio(baseline: InferenceResult | GraphResult,
                    candidate: InferenceResult | GraphResult) -> float:
    """Average MXU power of the baseline divided by the candidate's.

    This is the quantity behind the paper's "3.56× less power" and "20× power
    reduction" statements: the energy ratio corrected for the difference in
    runtime between the two designs.
    """
    baseline_summary = (inference_power_summary(baseline)
                        if isinstance(baseline, InferenceResult)
                        else graph_power_summary(baseline))
    candidate_summary = (inference_power_summary(candidate)
                         if isinstance(candidate, InferenceResult)
                         else graph_power_summary(candidate))
    if candidate_summary.mxu_watts == 0:
        raise ZeroDivisionError("candidate drew no MXU power")
    return baseline_summary.mxu_watts / candidate_summary.mxu_watts
