"""Memory-capacity planning for generative-model deployment on TPUs.

The paper's single-layer evaluation sidesteps an important deployment
constraint that its multi-device section then addresses: a GPT-3-30B class
model does not fit into one TPUv4i's 8 GB of HBM once weights and the KV cache
are accounted for, which is one of the reasons the paper scales to multi-TPU
rings.  This module computes model footprints (weights, KV cache, peak
activations), checks them against a chip configuration, and derives the
minimum device count and a suggested parallelism strategy — the capacity side
of the paper's "tensor parallelism and pipeline parallelism" statement.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from types import SimpleNamespace

from repro.common import Precision, ceil_div
from repro.core.config import TPUConfig
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig
from repro.workloads.moe import MoEConfig


@dataclass(frozen=True)
class ModelFootprint:
    """Memory footprint of one model under a given inference setting."""

    model_name: str
    weight_bytes: int
    kv_cache_bytes: int
    activation_bytes: int

    def __post_init__(self) -> None:
        if self.weight_bytes < 0 or self.kv_cache_bytes < 0 or self.activation_bytes < 0:
            raise ValueError("footprint components must be non-negative")

    @property
    def total_bytes(self) -> int:
        """Total main-memory footprint."""
        return self.weight_bytes + self.kv_cache_bytes + self.activation_bytes

    @property
    def total_gib(self) -> float:
        """Total footprint in GiB."""
        return self.total_bytes / 2**30


def llm_weight_bytes(model: LLMConfig, precision: Precision = Precision.INT8) -> int:
    """Resident weight bytes of an LLM: every layer plus embeddings/LM head.

    For MoE models every expert's weights count even though only ``top_k``
    are active per token — the capacity pressure that makes MoE serving a
    multi-device problem.
    """
    layer = model.layer_config()
    if isinstance(model, MoEConfig):
        attn = (layer.d_model * layer.qkv_output_dim
                + layer.num_heads * layer.resolved_head_dim * layer.d_model)
        per_layer = attn + model.expert_weight_bytes_per_layer
    else:
        per_layer = layer.weight_bytes_per_layer
    return (model.num_layers * per_layer
            + 2 * model.vocab_size * model.d_model) * precision.bytes


def llm_footprint(model: LLMConfig, batch: int, context_tokens: int,
                  precision: Precision = Precision.INT8) -> ModelFootprint:
    """Footprint of an LLM serving ``batch`` sequences of ``context_tokens``.

    Weights cover every Transformer layer plus the embedding/LM-head matrices;
    the KV cache covers the full context; activations are the double-buffered
    working set of one layer (inputs, attention scores for one head group and
    FFN intermediates), which is what must co-reside with weights in HBM.
    """
    if batch <= 0 or context_tokens <= 0:
        raise ValueError("batch and context_tokens must be positive")
    weight_bytes = llm_weight_bytes(model, precision)
    kv_bytes = model.kv_cache_bytes(batch, context_tokens, precision)
    tokens = batch * context_tokens
    activation_bytes = 2 * tokens * (model.d_model + model.d_ff) * precision.bytes
    return ModelFootprint(model_name=model.name, weight_bytes=weight_bytes,
                          kv_cache_bytes=kv_bytes, activation_bytes=activation_bytes)


def dit_footprint(model: DiTConfig, batch: int, image_resolution: int = 512,
                  precision: Precision = Precision.INT8) -> ModelFootprint:
    """Footprint of DiT sampling at the given batch and resolution."""
    if batch <= 0 or image_resolution <= 0:
        raise ValueError("batch and image_resolution must be positive")
    layer = model.layer_config()
    cond_mlp = model.d_model * 6 * model.d_model
    weight_bytes = model.depth * (layer.weight_bytes_per_layer + cond_mlp) * precision.bytes
    tokens = batch * model.tokens_for_resolution(image_resolution)
    activation_bytes = 2 * tokens * (model.d_model + model.d_ff) * precision.bytes
    # Attention scores of one block (per head, token × token) also live on chip
    # transiently; DiT has no KV cache.
    score_bytes = batch * model.num_heads * model.tokens_for_resolution(image_resolution) ** 2
    return ModelFootprint(model_name=model.name, weight_bytes=weight_bytes,
                          kv_cache_bytes=0, activation_bytes=activation_bytes + score_bytes)


@dataclass(frozen=True)
class CapacityPlan:
    """Result of fitting a model footprint onto a TPU configuration."""

    footprint: ModelFootprint
    device_memory_bytes: int
    fits_single_device: bool
    min_devices: int
    suggested_parallelism: str

    @property
    def memory_per_device_bytes(self) -> float:
        """Footprint share per device at the minimum device count."""
        return self.footprint.total_bytes / self.min_devices


def plan_capacity(footprint: ModelFootprint, tpu: TPUConfig,
                  memory_utilisation: float = 0.9) -> CapacityPlan:
    """Derive the minimum device count and a parallelism suggestion.

    ``memory_utilisation`` reserves headroom for fragmentation, the runtime
    and double-buffered staging (10 % by default).  The suggestion follows the
    paper's practice: weights dominating the footprint favours pipeline
    parallelism (weights are partitioned by layer, with only activations on
    the ICI); a KV-cache-dominated footprint favours tensor parallelism so the
    cache is sharded with the heads.
    """
    if not 0 < memory_utilisation <= 1:
        raise ValueError("memory_utilisation must be in (0, 1]")
    usable = int(tpu.main_memory_bytes * memory_utilisation)
    min_devices = max(1, ceil_div(footprint.total_bytes, usable))
    fits = min_devices == 1
    if fits:
        suggestion = "single-device"
    elif footprint.kv_cache_bytes > footprint.weight_bytes:
        suggestion = "tensor"
    else:
        suggestion = "pipeline"
    return CapacityPlan(footprint=footprint, device_memory_bytes=tpu.main_memory_bytes,
                        fits_single_device=fits, min_devices=min_devices,
                        suggested_parallelism=suggestion)


@dataclass(frozen=True)
class FleetEvaluation:
    """Outcome of trying one replica count against the SLO target."""

    replicas: int
    slo_attainment: float
    p99_ttft_s: float
    p99_tpot_s: float
    goodput_requests_per_second: float
    goodput_tokens_per_second: float
    mean_active_replicas: float
    cost_per_million_tokens_dollars: float

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by the JSON/CSV exporters."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class FleetPlan:
    """Result of sizing a replica fleet for an SLO at a target request rate."""

    model_name: str
    tpu_name: str
    arrival_rate: float
    attainment_target: float
    #: Whether any tried fleet met the target, and the smallest replica
    #: count that did (``None`` when even ``max_replicas`` fell short).
    met: bool
    replicas: int | None
    evaluations: tuple[FleetEvaluation, ...]


def fleet_lower_bound(model: LLMConfig, tpu: TPUConfig, *, arrival_rate: float,
                      request_classes=None, scheduler: str = "fcfs",
                      max_batch: int = 32,
                      precision: Precision = Precision.INT8,
                      devices: int | None = None,
                      memory_utilisation: float = 0.9,
                      simulator=None) -> int:
    """Capacity lower bound on the replica count sustaining ``arrival_rate``.

    The same estimate the cluster's routing front-end acts on: one replica
    serialises prefill (one prompt at a time at the mix's mean prefill
    cost) while decode shares ``max_batch`` slots at the full-batch decode
    step cost — whichever binds caps the per-replica request rate, and the
    bound is ``ceil(arrival_rate / per-replica rate)``.  Fleets below it
    cannot even sustain the offered throughput, so :func:`plan_fleet`
    starts its search here and the co-design optimizer prunes such
    candidates before simulating them.

    Raises
    ------
    ValueError
        On a non-positive ``arrival_rate``.
    """
    # Imported lazily: repro.serving layers on top of repro.analysis, so a
    # top-level import here would be circular.
    from repro.serving.simulator import ServingSimulator
    from repro.workloads.chat import DEFAULT_REQUEST_MIX, mix_fractions

    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    classes = tuple(request_classes) if request_classes else DEFAULT_REQUEST_MIX
    probe = ServingSimulator(model, tpu, scheduler=scheduler, precision=precision,
                             max_batch=max_batch, devices=devices,
                             memory_utilisation=memory_utilisation,
                             simulator=simulator)
    step = probe.costs.decode_cost(max_batch, probe.costs.bucket_tokens)
    fractions = mix_fractions(classes)
    mean_output = sum(fraction * cls.output_tokens
                      for fraction, cls in zip(fractions, classes))
    mean_prefill_s = sum(
        fraction * probe.costs.prefill_cost(1, cls.input_tokens).seconds
        for fraction, cls in zip(fractions, classes))
    per_replica_rate = min(1.0 / mean_prefill_s,
                           max_batch / (mean_output * step.seconds))
    return max(1, int(math.ceil(arrival_rate / per_replica_rate)))


def plan_fleet(model: LLMConfig, tpu: TPUConfig, *, arrival_rate: float,
               slo=None, request_classes=None, attainment_target: float = 0.95,
               max_replicas: int = 16, num_requests: int = 400, seed: int = 0,
               trace_kind: str = "poisson", scheduler: str = "fcfs",
               router: str = "least-outstanding-requests",
               autoscaler: str = "fixed", max_batch: int = 32,
               precision: Precision = Precision.INT8,
               devices: int | None = None, memory_utilisation: float = 0.9,
               cost_model=None, faults=(), overlay=None,
               fidelity: str = "exact", store=None, settings=None,
               telemetry=None) -> FleetPlan:
    """Smallest replica count that meets an SLO at a target request rate.

    Replays one seeded trace (``trace_kind`` arrivals at ``arrival_rate``
    over the request mix) through fleets of identical replicas, growing the
    fleet until the SLO attainment reaches ``attainment_target``, and
    returns the first count that met it together with every evaluation
    tried — the fleet analogue of :func:`plan_capacity`.  Fleets that
    cannot even sustain the offered token throughput are skipped up front:
    the search starts at the capacity lower bound ``ceil(arrival_rate ×
    mean output tokens / estimated per-replica decode throughput)``, the
    same estimate the cluster's router acts on.  All fleets share one
    memoised graph simulator, so the incremental cost of each extra
    evaluation is the event loop, not re-simulation.

    ``fidelity="fluid"`` sizes the fleet with the closed-form estimator
    instead of event-loop replays — each candidate fleet costs
    milliseconds regardless of trace length, at the estimator's
    golden-bounded error (chaos plans must stay exact).

    A persistent ``store`` routes every evaluation through
    :func:`~repro.serving.cluster.simulate_cluster`, so each candidate
    fleet is keyed by :func:`~repro.serving.cluster.cluster_run_key` and a
    repeated plan replays nothing.  Store keys fingerprint the scenario
    ``settings``, so a store-backed plan requires them (the request
    classes and precision are then derived from the settings rather than
    passed separately); the plan itself is bit-for-bit the storeless one.

    Raises
    ------
    ValueError
        On a non-positive rate/fleet ceiling, a target outside (0, 1], a
        fluid plan with faults/overlay, a ``store`` without ``settings``,
        or settings that disagree with ``request_classes``/``precision``.
    """
    # Imported lazily: repro.serving layers on top of repro.analysis, so a
    # top-level import here would be circular.
    from repro.serving.cluster import (
        ClusterSimulator,
        FleetCostModel,
        simulate_cluster,
    )
    from repro.serving.metrics import SLO
    from repro.serving.simulator import ServingSimulator
    from repro.serving.spec import ServingSpec
    from repro.serving.trace import generate_trace, request_classes_from_settings
    from repro.sweep.cache import CachingInferenceSimulator
    from repro.workloads.chat import DEFAULT_REQUEST_MIX

    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if max_replicas <= 0:
        raise ValueError("max_replicas must be positive")
    if not 0 < attainment_target <= 1:
        raise ValueError("attainment_target must be in (0, 1]")
    if store is not None and settings is None:
        raise ValueError("a store-backed fleet plan needs the scenario "
                         "settings that define its request classes")
    slo = slo if slo is not None else SLO()
    classes = tuple(request_classes) if request_classes else DEFAULT_REQUEST_MIX
    if settings is not None:
        derived = tuple(request_classes_from_settings(settings))
        if request_classes is not None and tuple(request_classes) != derived:
            raise ValueError("request_classes disagree with the scenario "
                             "settings they would be stored under")
        classes = derived
        settings_precision = getattr(settings, "precision", precision)
        if settings_precision != precision:
            raise ValueError("precision disagrees with the scenario settings "
                             "it would be stored under")
    cost_model = cost_model if cost_model is not None else FleetCostModel()
    # A chaos-aware plan sizes the fleet against the degraded trace/fleet:
    # the overlay warps the arrivals, the faults replay in every evaluation.
    trace = generate_trace(trace_kind, classes, arrival_rate, num_requests,
                           seed, overlay=overlay)
    shared = CachingInferenceSimulator(tpu)

    # Per-replica sustainable request rate: prefill serialises on the engine
    # while decode shares max_batch slots — the binding one caps the rate.
    lower_bound = fleet_lower_bound(
        model, tpu, arrival_rate=arrival_rate, request_classes=classes,
        scheduler=scheduler, max_batch=max_batch, precision=precision,
        devices=devices, memory_utilisation=memory_utilisation,
        simulator=shared)

    def repriced(report):
        # simulate_cluster prices with the default sheet; re-price under
        # this plan's cost model so the evaluations stay comparable.  The
        # formula mirrors ClusterSimulator.run exactly, so re-pricing with
        # an equal model is the identity and plans stay bit-for-bit.
        if report.cost_model == cost_model:
            return report
        dollars = cost_model.run_dollars(report.chip_hours,
                                         report.total_energy_joules)
        return dataclasses.replace(
            report, cost_model=cost_model,
            cost_per_million_tokens_dollars=(
                dollars / (report.total_tokens / 1e6)
                if report.total_tokens else 0.0))

    evaluations: list[FleetEvaluation] = []
    met_at: int | None = None
    for count in range(min(lower_bound, max_replicas), max_replicas + 1):
        if store is not None:
            # Store-backed evaluations route through simulate_cluster so
            # each candidate fleet persists under its cluster_run_key and
            # warm plans replay nothing.
            spec = ServingSpec(
                scheduler=scheduler, trace=trace_kind,
                arrival_rate=arrival_rate, num_requests=num_requests,
                seed=seed, max_batch=max_batch, devices=devices,
                memory_utilisation=memory_utilisation, slo=slo,
                replicas=count, router=router, autoscaler=autoscaler,
                faults=tuple(faults), overlay=overlay, fidelity=fidelity)
            report = repriced(simulate_cluster(
                model, tpu, spec, settings, simulator=shared, store=store,
                telemetry=telemetry))
        elif fidelity == "fluid":
            spec = ServingSpec(
                scheduler=scheduler, trace=trace_kind,
                arrival_rate=arrival_rate, num_requests=num_requests,
                seed=seed, max_batch=max_batch, devices=devices,
                memory_utilisation=memory_utilisation, slo=slo,
                replicas=count, router=router, fidelity="fluid")
            fluid_settings = SimpleNamespace(request_classes=classes,
                                             precision=precision)
            report = repriced(simulate_cluster(model, tpu, spec,
                                               fluid_settings,
                                               simulator=shared))
        else:
            replicas = [ServingSimulator(
                model, tpu, scheduler=scheduler, precision=precision,
                max_batch=max_batch, devices=devices,
                memory_utilisation=memory_utilisation, simulator=shared)
                for _ in range(count)]
            report = ClusterSimulator(replicas, router=router,
                                      autoscaler=autoscaler,
                                      cost_model=cost_model,
                                      faults=faults).run(trace, slo=slo,
                                                         telemetry=telemetry)
        evaluations.append(FleetEvaluation(
            replicas=count, slo_attainment=report.slo_attainment,
            p99_ttft_s=report.ttft.p99_s, p99_tpot_s=report.tpot.p99_s,
            goodput_requests_per_second=report.goodput_requests_per_second,
            goodput_tokens_per_second=report.goodput_tokens_per_second,
            mean_active_replicas=report.mean_active_replicas,
            cost_per_million_tokens_dollars=report.cost_per_million_tokens_dollars))
        if report.slo_attainment >= attainment_target:
            met_at = count
            break
    return FleetPlan(model_name=model.name, tpu_name=tpu.name,
                     arrival_rate=arrival_rate,
                     attainment_target=attainment_target,
                     met=met_at is not None, replicas=met_at,
                     evaluations=tuple(evaluations))


def serving_kv_budget(model: LLMConfig, tpu: TPUConfig, *, devices: int = 1,
                      max_batch: int = 32,
                      precision: Precision = Precision.INT8,
                      memory_utilisation: float = 0.9) -> int:
    """HBM bytes a serving deployment can commit to the KV cache.

    ``devices`` pipeline-parallel chips hold the weights once (layers are
    partitioned, not replicated), so the budget is the deployment's usable
    memory minus the resident weights and the decode-step working set of a
    full batch (one token per running sequence).  Prefill activations are
    assumed chunked/paged, as production serving stacks do, so they do not
    reserve budget.  The result may be non-positive — the caller's signal
    that the model does not fit the deployment at all.
    """
    if devices <= 0 or max_batch <= 0:
        raise ValueError("devices and max_batch must be positive")
    if not 0 < memory_utilisation <= 1:
        raise ValueError("memory_utilisation must be in (0, 1]")
    usable = devices * int(tpu.main_memory_bytes * memory_utilisation)
    decode_working_set = 2 * max_batch * (model.d_model + model.d_ff) * precision.bytes
    return usable - llm_weight_bytes(model, precision) - decode_working_set
