"""Main-memory (HBM) model.

The TPUv4i attaches 8 GB of HBM delivering 614 GB/s.  The model converts byte
transfers to core clock cycles, applies an achievable-bandwidth efficiency
factor (row-buffer and refresh overheads), and reports the interface energy.
Memory coalescing — gathering strided accesses into long contiguous bursts —
is modelled as recovering most of that efficiency loss, matching the paper's
use of memory coalescing as a scheduling option.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MainMemoryConfig:
    """Static parameters of the HBM main memory."""

    capacity_bytes: int = 8 * 2**30
    bandwidth_gbps: float = 614.0
    frequency_ghz: float = 1.05
    #: Fraction of peak bandwidth achieved for long, coalesced bursts.
    coalesced_efficiency: float = 0.92
    #: Fraction of peak bandwidth achieved for short / strided accesses.
    strided_efficiency: float = 0.55
    #: Fixed request latency (cycles) hidden only by deep pipelining.
    access_latency_cycles: int = 120

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_gbps <= 0 or self.frequency_ghz <= 0:
            raise ValueError("capacity, bandwidth and frequency must be positive")
        for name in ("coalesced_efficiency", "strided_efficiency"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.access_latency_cycles < 0:
            raise ValueError("access latency must be non-negative")

    @property
    def bytes_per_cycle(self) -> float:
        """Peak bandwidth expressed in bytes per core clock cycle."""
        return self.bandwidth_gbps * 1e9 / (self.frequency_ghz * 1e9)


class MainMemory:
    """Bandwidth model of the HBM interface."""

    def __init__(self, config: MainMemoryConfig | None = None) -> None:
        self.config = config if config is not None else MainMemoryConfig()

    def transfer_cycles(self, num_bytes: float, coalesced: bool = True) -> float:
        """Cycles to move ``num_bytes`` across the HBM interface.

        ``coalesced`` selects between the long-burst and strided efficiency
        points; the fixed access latency is added once because the simulator
        issues transfers at tile granularity, which is large enough to hide
        per-beat latencies behind pipelining.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        efficiency = (self.config.coalesced_efficiency if coalesced
                      else self.config.strided_efficiency)
        effective_bandwidth = self.config.bytes_per_cycle * efficiency
        return num_bytes / effective_bandwidth + self.config.access_latency_cycles

    def effective_bandwidth_gbps(self, coalesced: bool = True) -> float:
        """Achievable bandwidth in GB/s for the selected access pattern."""
        efficiency = (self.config.coalesced_efficiency if coalesced
                      else self.config.strided_efficiency)
        return self.config.bandwidth_gbps * efficiency

    def fits(self, num_bytes: int) -> bool:
        """Whether a working set of ``num_bytes`` fits in main memory."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes <= self.config.capacity_bytes
