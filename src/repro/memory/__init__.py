"""Memory hierarchy substrate: on-chip SRAMs, HBM, OCI and ICI interconnect.

The CIM-based TPU keeps the two-level on-chip memory hierarchy of the TPUv4i:
a 128 MB common memory (CMEM) shared across the chip and a 16 MB vector memory
(VMEM) adjacent to the compute units, backed by 8 GB of HBM at 614 GB/s.  Data
moves between CMEM and VMEM over the on-chip interconnect (OCI) and between
chips over two 100 GB/s ICI links.  The mapping engine overlaps these
transfers with computation through double buffering.
"""

from repro.memory.sram import SRAMConfig, SRAMBuffer
from repro.memory.dram import MainMemoryConfig, MainMemory
from repro.memory.interconnect import OCIConfig, OnChipInterconnect, ICILink, RingTopology
from repro.memory.hierarchy import MemoryHierarchy, TransferRequest, TransferResult

__all__ = [
    "SRAMConfig",
    "SRAMBuffer",
    "MainMemoryConfig",
    "MainMemory",
    "OCIConfig",
    "OnChipInterconnect",
    "ICILink",
    "RingTopology",
    "MemoryHierarchy",
    "TransferRequest",
    "TransferResult",
]
